//! The versioned, bbox-indexed shared space, sharded over servers.

use crate::tenant::tenant_of_var;
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use sitra_mesh::{field::assemble, BBox3, ScalarField};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Metadata of one stored object.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectMeta {
    /// Variable name.
    pub var: String,
    /// Version (timestep).
    pub version: u64,
    /// Region covered.
    pub bbox: BBox3,
}

struct Stored {
    bbox: BBox3,
    data: Bytes,
}

/// One server shard: a map from `(var, version)` to the objects stored
/// under it.
#[derive(Default)]
struct Server {
    objects: RwLock<HashMap<(String, u64), Vec<Stored>>>,
}

/// Per-space counters.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpaceStats {
    /// Objects stored per server (RPC balance diagnostic).
    pub objects_per_server: Vec<u64>,
    /// Total bytes resident.
    pub resident_bytes: u64,
}

/// A [`DataSpaces::put_quota`] was refused: admitting the object would
/// push the tenant past its resident-byte quota.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuotaExceeded {
    /// The tenant that was refused.
    pub tenant: String,
    /// Its byte quota.
    pub quota: u64,
    /// Bytes resident when the put arrived.
    pub used: u64,
    /// Size of the refused object.
    pub requested: u64,
}

impl std::fmt::Display for QuotaExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "tenant `{}` byte quota exceeded: {} resident + {} requested > {} quota",
            self.tenant, self.used, self.requested, self.quota
        )
    }
}

/// One tenant's resident-byte account.
struct TenantBytes {
    quota: Option<u64>,
    used: i64,
    gauge: sitra_obs::Gauge,
}

/// Per-tenant resident-byte ledger, keyed by the tenant prefix of each
/// stored variable name. Kept in its own lock, taken only briefly and
/// never while a shard lock is held (and vice versa): reservation is
/// check-and-add *before* the store, so a racing put may be refused
/// conservatively but resident bytes can never exceed the quota.
#[derive(Default)]
struct TenantLedger {
    by_name: Mutex<HashMap<String, TenantBytes>>,
}

impl TenantLedger {
    fn with<R>(&self, tenant: &str, f: impl FnOnce(&mut TenantBytes) -> R) -> R {
        let mut g = self.by_name.lock();
        let e = g.entry(tenant.to_string()).or_insert_with(|| TenantBytes {
            quota: None,
            used: 0,
            gauge: sitra_obs::global()
                .gauge(&format!("space.tenant.resident_bytes{{tenant={tenant}}}")),
        });
        f(e)
    }

    fn add(&self, tenant: &str, delta: i64) {
        self.with(tenant, |e| {
            e.used += delta;
            e.gauge.set(e.used);
        });
    }

    /// Check-and-reserve `delta` net bytes (`requested` is the object
    /// size, reported on refusal); `Err` carries the refusal detail. A
    /// non-positive delta (a replace that shrinks) always succeeds.
    fn reserve(&self, tenant: &str, delta: i64, requested: u64) -> Result<(), QuotaExceeded> {
        self.with(tenant, |e| {
            if delta > 0 {
                if let Some(quota) = e.quota {
                    if e.used.max(0) + delta > quota as i64 {
                        return Err(QuotaExceeded {
                            tenant: tenant.to_string(),
                            quota,
                            used: e.used.max(0) as u64,
                            requested,
                        });
                    }
                }
            }
            e.used += delta;
            e.gauge.set(e.used);
            Ok(())
        })
    }
}

/// Live observability handles for one space, resolved once at
/// construction: per-shard put latency (`space.shard.put_ns{shard=i}`),
/// whole-query get latency (`space.get_ns`), and residency gauges.
struct SpaceObs {
    put_ns: Vec<sitra_obs::Histogram>,
    get_ns: sitra_obs::Histogram,
    resident_bytes: sitra_obs::Gauge,
    objects: sitra_obs::Gauge,
}

impl SpaceObs {
    fn resolve(shards: usize) -> Self {
        let reg = sitra_obs::global();
        SpaceObs {
            put_ns: (0..shards)
                .map(|i| reg.histogram(&format!("space.shard.put_ns{{shard={i}}}")))
                .collect(),
            get_ns: reg.histogram("space.get_ns"),
            resident_bytes: reg.gauge("space.resident_bytes"),
            objects: reg.gauge("space.objects"),
        }
    }
}

/// The shared space: `n` server shards addressed by hashing, exactly as
/// the paper describes ("the hashing used to balance the RPC messages
/// over multiple DataSpaces servers").
pub struct DataSpaces {
    servers: Vec<Server>,
    obs: SpaceObs,
    tenants: TenantLedger,
}

impl DataSpaces {
    /// Bring up a space with `servers` shards.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "need at least one server");
        Self {
            servers: (0..servers).map(|_| Server::default()).collect(),
            obs: SpaceObs::resolve(servers),
            tenants: TenantLedger::default(),
        }
    }

    /// Bound (or unbound, with `None`) the bytes `tenant` may keep
    /// resident. Applies to future [`Self::put_quota`] calls; already
    /// resident bytes are never evicted by a quota change.
    pub fn set_tenant_byte_quota(&self, tenant: &str, quota: Option<u64>) {
        self.tenants.with(tenant, |e| e.quota = quota);
    }

    /// Per-tenant residency snapshot: `(tenant, resident_bytes, quota)`
    /// in tenant-name order.
    pub fn tenant_usage(&self) -> Vec<(String, u64, Option<u64>)> {
        let g = self.tenants.by_name.lock();
        let mut out: Vec<_> = g
            .iter()
            .map(|(name, e)| (name.clone(), e.used.max(0) as u64, e.quota))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Number of server shards.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The shard responsible for an object: hash of name, version, and
    /// the region's lower corner (so different blocks of the same
    /// timestep spread over servers).
    fn shard(&self, var: &str, version: u64, bbox: &BBox3) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        var.hash(&mut h);
        version.hash(&mut h);
        bbox.lo.hash(&mut h);
        (h.finish() % self.servers.len() as u64) as usize
    }

    /// Store an object. Returns the shard index it landed on.
    ///
    /// Idempotent per `(var, version, bbox)`: a re-put of the same
    /// region replaces the stored piece instead of appending a
    /// duplicate. The transport delivers at-least-once (a retried or
    /// duplicated `Put` frame executes twice on the server), and
    /// consumers that stream pieces into order-sensitive aggregators
    /// must never see the same block twice.
    pub fn put(&self, var: &str, version: u64, bbox: BBox3, data: Bytes) -> usize {
        let len = data.len() as i64;
        let (s, replaced) = self.store(var, version, bbox, data);
        self.tenants
            .add(tenant_of_var(var).0, len - replaced.unwrap_or(0));
        s
    }

    /// Store an object with the tenant's resident-byte quota enforced:
    /// the tenant is parsed off the variable-name prefix and the put is
    /// refused if admitting it would exceed the quota. This is the verb
    /// the remote server applies to every client put; producers turn the
    /// refusal into in-situ degradation, same as a shed task.
    pub fn put_quota(
        &self,
        var: &str,
        version: u64,
        bbox: BBox3,
        data: Bytes,
    ) -> Result<usize, QuotaExceeded> {
        let tenant = tenant_of_var(var).0.to_string();
        let len = data.len() as i64;
        // An at-least-once redelivery replaces the stored piece, so only
        // the *net* growth counts against the quota — peek the existing
        // piece's size first, and square up against the actual replaced
        // size after the store (a racing same-region put may change it).
        let s = self.shard(var, version, &bbox);
        let old_peek = {
            let guard = self.servers[s].objects.read();
            guard
                .get(&(var.to_string(), version))
                .and_then(|objs| objs.iter().find(|o| o.bbox == bbox))
                .map(|o| o.data.len() as i64)
        };
        if let Err(e) = self
            .tenants
            .reserve(&tenant, len - old_peek.unwrap_or(0), len as u64)
        {
            sitra_obs::emit(
                "space",
                "tenant.quota_reject",
                &[
                    ("tenant", tenant.clone()),
                    ("requested", len.to_string()),
                    ("quota", e.quota.to_string()),
                ],
            );
            return Err(e);
        }
        let (s2, replaced) = self.store(var, version, bbox, data);
        debug_assert_eq!(s, s2);
        let adjust = old_peek.unwrap_or(0) - replaced.unwrap_or(0);
        if adjust != 0 {
            self.tenants.add(&tenant, adjust);
        }
        Ok(s2)
    }

    /// The storage core shared by [`Self::put`] and [`Self::put_quota`]:
    /// returns the shard and, when the piece replaced an existing one,
    /// the replaced length. No tenant-ledger accounting happens here.
    fn store(&self, var: &str, version: u64, bbox: BBox3, data: Bytes) -> (usize, Option<i64>) {
        let s = self.shard(var, version, &bbox);
        let len = data.len() as i64;
        let t0 = std::time::Instant::now();
        let replaced = {
            let mut guard = self.servers[s].objects.write();
            let objs = guard.entry((var.to_string(), version)).or_default();
            match objs.iter_mut().find(|o| o.bbox == bbox) {
                Some(o) => {
                    let old = o.data.len() as i64;
                    o.data = data;
                    Some(old)
                }
                None => {
                    objs.push(Stored { bbox, data });
                    None
                }
            }
        };
        self.obs.put_ns[s].observe(t0.elapsed());
        match replaced {
            Some(old) => self.obs.resident_bytes.add(len - old),
            None => {
                self.obs.resident_bytes.add(len);
                self.obs.objects.add(1);
            }
        }
        (s, replaced)
    }

    /// Store a field (serializing its values).
    pub fn put_field(&self, var: &str, version: u64, field: &ScalarField) -> usize {
        self.put(
            var,
            version,
            field.bbox(),
            crate::codec::field_to_bytes(field),
        )
    }

    /// Spatial query: every stored piece of `(var, version)` intersecting
    /// `query`, clipped metadata included. Pieces are returned whole (the
    /// caller clips during assembly), matching the RDMA-pull model where
    /// the consumer reads whole exported blocks.
    pub fn get(&self, var: &str, version: u64, query: &BBox3) -> Vec<(BBox3, Bytes)> {
        let t0 = std::time::Instant::now();
        let key = (var.to_string(), version);
        let mut out = Vec::new();
        for server in &self.servers {
            let guard = server.objects.read();
            if let Some(objs) = guard.get(&key) {
                for o in objs {
                    if o.bbox.intersect(query).is_some() {
                        out.push((o.bbox, o.data.clone()));
                    }
                }
            }
        }
        // Deterministic order regardless of sharding.
        out.sort_by_key(|(b, _)| b.lo);
        self.obs.get_ns.observe(t0.elapsed());
        out
    }

    /// Spatial query assembled into one field over `query`; uncovered
    /// points become `fill`.
    pub fn get_assembled(&self, var: &str, version: u64, query: &BBox3, fill: f64) -> ScalarField {
        let pieces: Vec<ScalarField> = self
            .get(var, version, query)
            .into_iter()
            .map(|(bbox, data)| {
                crate::codec::bytes_to_field(bbox, &data).extract(&bbox.intersect(query).unwrap())
            })
            .collect();
        assemble(*query, &pieces, fill)
    }

    /// The highest version stored under `var`, if any (the "query
    /// version" RPC of the staging service: consumers discover the most
    /// recent timestep without polling specific versions).
    pub fn latest_version(&self, var: &str) -> Option<u64> {
        self.servers
            .iter()
            .flat_map(|s| {
                s.objects
                    .read()
                    .keys()
                    .filter(|(v, _)| v == var)
                    .map(|(_, ver)| *ver)
                    .collect::<Vec<_>>()
            })
            .max()
    }

    /// Drop every object of a version (staging memory reclamation once a
    /// timestep's analyses are done). See [`Self::evict_version_scoped`]
    /// for the tenant-restricted variant.
    pub fn evict_version(&self, version: u64) {
        self.evict_where(|_, v| v == version);
    }

    /// Drop every object of `version` belonging to `tenant` only — the
    /// eviction a tenant-bound connection performs, so one tenant
    /// finishing a timestep cannot reclaim a neighbour's pieces that
    /// happen to share the version number.
    pub fn evict_version_scoped(&self, tenant: &str, version: u64) {
        self.evict_where(|var, v| v == version && tenant_of_var(var).0 == tenant);
    }

    fn evict_where(&self, mut pred: impl FnMut(&str, u64) -> bool) {
        let mut freed_bytes = 0i64;
        let mut freed_objects = 0i64;
        let mut freed_by_tenant: HashMap<String, i64> = HashMap::new();
        for server in &self.servers {
            server.objects.write().retain(|(var, v), objs| {
                if pred(var, *v) {
                    let bytes: i64 = objs.iter().map(|o| o.data.len() as i64).sum();
                    freed_objects += objs.len() as i64;
                    freed_bytes += bytes;
                    *freed_by_tenant
                        .entry(tenant_of_var(var).0.to_string())
                        .or_default() += bytes;
                    false
                } else {
                    true
                }
            });
        }
        self.obs.resident_bytes.add(-freed_bytes);
        self.obs.objects.add(-freed_objects);
        for (tenant, bytes) in freed_by_tenant {
            self.tenants.add(&tenant, -bytes);
        }
    }

    /// Remove and return every object for which `disown` answers true,
    /// as `(var, version, bbox, data)` tuples. This is the shard-handoff
    /// primitive: when cluster membership changes, the losing member
    /// drains the pieces it no longer owns and re-puts them on the new
    /// owner. Gauges are adjusted as if each piece had been evicted.
    pub fn drain_matching<F>(&self, mut disown: F) -> Vec<(String, u64, BBox3, Bytes)>
    where
        F: FnMut(&str, u64, &BBox3) -> bool,
    {
        let mut out = Vec::new();
        let mut freed_bytes = 0i64;
        let mut freed_by_tenant: HashMap<String, i64> = HashMap::new();
        for server in &self.servers {
            let mut guard = server.objects.write();
            for ((var, version), objs) in guard.iter_mut() {
                let mut i = 0;
                while i < objs.len() {
                    if disown(var, *version, &objs[i].bbox) {
                        let o = objs.swap_remove(i);
                        freed_bytes += o.data.len() as i64;
                        *freed_by_tenant
                            .entry(tenant_of_var(var).0.to_string())
                            .or_default() += o.data.len() as i64;
                        out.push((var.clone(), *version, o.bbox, o.data));
                    } else {
                        i += 1;
                    }
                }
            }
            guard.retain(|_, objs| !objs.is_empty());
        }
        self.obs.resident_bytes.add(-freed_bytes);
        self.obs.objects.add(-(out.len() as i64));
        for (tenant, bytes) in freed_by_tenant {
            self.tenants.add(&tenant, -bytes);
        }
        // Deterministic handoff order regardless of map iteration.
        out.sort_by(|a, b| (&a.0, a.1, a.2.lo).cmp(&(&b.0, b.1, b.2.lo)));
        out
    }

    /// Current statistics.
    pub fn stats(&self) -> SpaceStats {
        let mut per = Vec::with_capacity(self.servers.len());
        let mut bytes = 0u64;
        for server in &self.servers {
            let guard = server.objects.read();
            let count: u64 = guard.values().map(|v| v.len() as u64).sum();
            bytes += guard
                .values()
                .flat_map(|v| v.iter().map(|o| o.data.len() as u64))
                .sum::<u64>();
            per.push(count);
        }
        SpaceStats {
            objects_per_server: per,
            resident_bytes: bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitra_mesh::Decomposition;

    fn coord_field(b: BBox3) -> ScalarField {
        ScalarField::from_fn(b, |p| (p[0] * 10_000 + p[1] * 100 + p[2]) as f64)
    }

    #[test]
    fn put_get_exact_union() {
        let ds = DataSpaces::new(4);
        let g = BBox3::from_dims([12, 8, 6]);
        let whole = coord_field(g);
        let d = Decomposition::new(g, [3, 2, 2]);
        for r in 0..d.rank_count() {
            ds.put_field("T", 7, &whole.extract(&d.block(r)));
        }
        // Any query assembles to exactly the source data.
        for q in [
            g,
            BBox3::new([2, 2, 2], [9, 6, 5]),
            BBox3::new([0, 0, 0], [1, 1, 1]),
        ] {
            let got = ds.get_assembled("T", 7, &q, f64::NAN);
            assert_eq!(got, whole.extract(&q), "query {q:?}");
        }
    }

    #[test]
    fn reput_replaces_instead_of_appending() {
        // At-least-once delivery: a duplicated Put frame executes
        // twice. The second put must replace the piece, not append a
        // same-region duplicate that order-sensitive consumers (the
        // streaming merge-tree aggregation) would panic on.
        let ds = DataSpaces::new(2);
        let b = BBox3::from_dims([4, 4, 4]);
        ds.put_field("T", 1, &ScalarField::new_fill(b, 1.0));
        ds.put_field("T", 1, &ScalarField::new_fill(b, 2.0));
        let pieces = ds.get("T", 1, &b);
        assert_eq!(pieces.len(), 1, "re-put must not duplicate the piece");
        assert_eq!(ds.get_assembled("T", 1, &b, 0.0).get([0, 0, 0]), 2.0);
        let stats = ds.stats();
        assert_eq!(stats.objects_per_server.iter().sum::<u64>(), 1);
    }

    #[test]
    fn versions_are_isolated() {
        let ds = DataSpaces::new(2);
        let b = BBox3::from_dims([4, 4, 4]);
        ds.put_field("T", 1, &ScalarField::new_fill(b, 1.0));
        ds.put_field("T", 2, &ScalarField::new_fill(b, 2.0));
        assert_eq!(ds.get_assembled("T", 1, &b, 0.0).get([0, 0, 0]), 1.0);
        assert_eq!(ds.get_assembled("T", 2, &b, 0.0).get([0, 0, 0]), 2.0);
        assert!(ds.get("T", 3, &b).is_empty());
    }

    #[test]
    fn variables_are_isolated() {
        let ds = DataSpaces::new(2);
        let b = BBox3::from_dims([2, 2, 2]);
        ds.put_field("T", 1, &ScalarField::new_fill(b, 300.0));
        ds.put_field("P", 1, &ScalarField::new_fill(b, 1.0));
        assert_eq!(ds.get("T", 1, &b).len(), 1);
        assert_eq!(ds.get_assembled("P", 1, &b, 0.0).get([1, 1, 1]), 1.0);
    }

    #[test]
    fn uncovered_regions_get_fill() {
        let ds = DataSpaces::new(2);
        let stored = BBox3::new([0, 0, 0], [2, 2, 2]);
        ds.put_field("T", 1, &ScalarField::new_fill(stored, 5.0));
        let q = BBox3::from_dims([4, 2, 2]);
        let f = ds.get_assembled("T", 1, &q, -1.0);
        assert_eq!(f.get([1, 1, 1]), 5.0);
        assert_eq!(f.get([3, 1, 1]), -1.0);
    }

    #[test]
    fn disjoint_query_returns_nothing() {
        let ds = DataSpaces::new(2);
        ds.put_field(
            "T",
            1,
            &ScalarField::new_fill(BBox3::from_dims([2, 2, 2]), 1.0),
        );
        let far = BBox3::new([10, 10, 10], [12, 12, 12]);
        assert!(ds.get("T", 1, &far).is_empty());
    }

    #[test]
    fn hashing_balances_servers() {
        let ds = DataSpaces::new(8);
        let g = BBox3::from_dims([32, 32, 32]);
        let d = Decomposition::new(g, [4, 4, 4]); // 64 blocks
        let whole = coord_field(g);
        for v in 0..4u64 {
            for r in 0..d.rank_count() {
                ds.put_field("T", v, &whole.extract(&d.block(r)));
            }
        }
        let stats = ds.stats();
        let total: u64 = stats.objects_per_server.iter().sum();
        assert_eq!(total, 256);
        // No server holds more than 3x the fair share, none is empty.
        let fair = total / 8;
        for &c in &stats.objects_per_server {
            assert!(
                c > 0,
                "a server got nothing: {:?}",
                stats.objects_per_server
            );
            assert!(c <= 3 * fair, "imbalanced: {:?}", stats.objects_per_server);
        }
    }

    #[test]
    fn eviction_reclaims_memory() {
        let ds = DataSpaces::new(2);
        let b = BBox3::from_dims([8, 8, 8]);
        ds.put_field("T", 1, &ScalarField::new_fill(b, 1.0));
        ds.put_field("T", 2, &ScalarField::new_fill(b, 2.0));
        let before = ds.stats().resident_bytes;
        ds.evict_version(1);
        let after = ds.stats().resident_bytes;
        assert_eq!(after, before / 2);
        assert!(ds.get("T", 1, &b).is_empty());
        assert!(!ds.get("T", 2, &b).is_empty());
    }

    #[test]
    fn drain_matching_extracts_exactly_the_disowned_pieces() {
        let ds = DataSpaces::new(4);
        let g = BBox3::from_dims([8, 4, 4]);
        let d = Decomposition::new(g, [2, 1, 1]);
        let whole = coord_field(g);
        for v in 1..=2u64 {
            for r in 0..d.rank_count() {
                ds.put_field("T", v, &whole.extract(&d.block(r)));
            }
        }
        let before = ds.stats();
        // Disown everything of version 1.
        let drained = ds.drain_matching(|_, version, _| version == 1);
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().all(|(var, v, _, _)| var == "T" && *v == 1));
        // Deterministic order by (var, version, lo).
        assert!(drained.windows(2).all(|w| w[0].2.lo <= w[1].2.lo));
        assert!(ds.get("T", 1, &g).is_empty(), "disowned pieces are gone");
        assert_eq!(ds.get("T", 2, &g).len(), 2, "kept pieces are untouched");
        let after = ds.stats();
        assert_eq!(after.resident_bytes, before.resident_bytes / 2);
        // Re-putting the drained pieces restores the original contents.
        for (var, v, bbox, data) in drained {
            ds.put(&var, v, bbox, data);
        }
        assert_eq!(ds.get_assembled("T", 1, &g, f64::NAN), whole);
    }

    #[test]
    fn byte_quota_refuses_put_and_eviction_refunds() {
        use crate::tenant::scoped_var;
        let ds = DataSpaces::new(2);
        let b = BBox3::from_dims([4, 4, 4]); // 64 points = 512 bytes
        let var = scoped_var("small", "T");
        ds.set_tenant_byte_quota("small", Some(600));
        let f = ScalarField::new_fill(b, 1.0);
        let data = crate::codec::field_to_bytes(&f);
        assert!(ds.put_quota(&var, 1, b, data.clone()).is_ok());
        // A second version would exceed 600 bytes: refused, with detail.
        let err = ds.put_quota(&var, 2, b, data.clone()).unwrap_err();
        assert_eq!(err.tenant, "small");
        assert_eq!(err.quota, 600);
        assert!(ds.get(&var, 2, &b).is_empty(), "refused put stored nothing");
        // Another tenant (and the default) are unaffected.
        assert!(ds
            .put_quota(&scoped_var("big", "T"), 2, b, data.clone())
            .is_ok());
        assert!(ds.put_quota("T", 2, b, data.clone()).is_ok());
        // Evicting version 1 refunds small's bytes; the put now fits.
        ds.evict_version_scoped("small", 1);
        assert!(ds.put_quota(&var, 2, b, data.clone()).is_ok());
        let usage = ds.tenant_usage();
        let small = usage.iter().find(|(t, _, _)| t == "small").unwrap();
        assert_eq!((small.1, small.2), (data.len() as u64, Some(600)));
    }

    #[test]
    fn quota_replace_refunds_old_bytes() {
        use crate::tenant::scoped_var;
        let ds = DataSpaces::new(2);
        let b = BBox3::from_dims([4, 4, 4]);
        let var = scoped_var("t", "T");
        let f = ScalarField::new_fill(b, 1.0);
        let data = crate::codec::field_to_bytes(&f);
        ds.set_tenant_byte_quota("t", Some(data.len() as u64 + 8));
        assert!(ds.put_quota(&var, 1, b, data.clone()).is_ok());
        // Re-putting the same region replaces; usage must not double, so
        // repeated at-least-once deliveries keep fitting in the quota.
        for _ in 0..3 {
            assert!(ds.put_quota(&var, 1, b, data.clone()).is_ok());
        }
        let usage = ds.tenant_usage();
        assert_eq!(
            usage.iter().find(|(t, _, _)| t == "t").unwrap().1,
            data.len() as u64
        );
    }

    #[test]
    fn scoped_eviction_spares_other_tenants() {
        use crate::tenant::scoped_var;
        let ds = DataSpaces::new(2);
        let b = BBox3::from_dims([2, 2, 2]);
        let f = ScalarField::new_fill(b, 1.0);
        ds.put_field(&scoped_var("a", "T"), 1, &f);
        ds.put_field(&scoped_var("b", "T"), 1, &f);
        ds.put_field("T", 1, &f);
        ds.evict_version_scoped("a", 1);
        assert!(ds.get(&scoped_var("a", "T"), 1, &b).is_empty());
        assert_eq!(ds.get(&scoped_var("b", "T"), 1, &b).len(), 1);
        assert_eq!(ds.get("T", 1, &b).len(), 1, "default tenant untouched");
        // Unscoped eviction still reclaims across tenants.
        ds.evict_version(1);
        assert!(ds.get(&scoped_var("b", "T"), 1, &b).is_empty());
        assert!(ds.get("T", 1, &b).is_empty());
        for (_, used, _) in ds.tenant_usage() {
            assert_eq!(used, 0);
        }
    }

    #[test]
    fn concurrent_puts_and_gets() {
        let ds = std::sync::Arc::new(DataSpaces::new(4));
        let g = BBox3::from_dims([16, 16, 4]);
        let d = Decomposition::new(g, [4, 4, 1]);
        let whole = coord_field(g);
        std::thread::scope(|s| {
            for r in 0..d.rank_count() {
                let ds = &ds;
                let blk = whole.extract(&d.block(r));
                s.spawn(move || {
                    ds.put_field("T", 1, &blk);
                });
            }
        });
        assert_eq!(ds.get_assembled("T", 1, &g, f64::NAN), whole);
    }
}
