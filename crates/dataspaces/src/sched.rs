//! The in-transit task scheduler: data-ready / bucket-ready events, a
//! free-bucket list, and weighted-fair assignment over per-tenant
//! sub-queues.
//!
//! The model follows the paper's Fig. 5 exactly:
//!
//! 1. An in-situ computation finishing a timestep notifies the scheduler
//!    of a **data-ready** event by inserting a task descriptor (what to
//!    run, on which data regions) into the task queue.
//! 2. A staging-area bucket (one core of a staging node) with nothing to
//!    do sends a **bucket-ready** request and parks on its own channel.
//! 3. Whenever both a task and a free bucket exist, the scheduler pops
//!    both and hands the task to the bucket, which then *pulls* the data
//!    it needs directly from the producers.
//!
//! The pull-based design means a slow analysis simply keeps its bucket
//! busy longer while other buckets absorb subsequent timesteps — the
//! temporal multiplexing that decouples analysis latency from simulation
//! cadence.
//!
//! **Multi-tenancy.** The queue side is organized as one FCFS sub-queue
//! per [tenant](crate::tenant), served **deficit-round-robin**: each
//! tenant at the head of the active rotation receives a deficit of
//! `weight` task credits, is served up to that many tasks, and rotates
//! to the back. With a single tenant (every pre-tenancy caller lands in
//! [`crate::tenant::DEFAULT_TENANT`]) this degenerates to exactly the
//! original global FCFS order; with several backlogged tenants each
//! receives assignments in proportion to its weight, so one misbehaving
//! producer cannot starve the rest. Sequence numbers stay globally
//! monotonic across tenants.
//!
//! The queue can be **bounded**: the paper assumes the staging area
//! keeps up with the simulation, but a production deployment must
//! decide what happens when it does not. [`Scheduler::bounded`] attaches
//! a capacity and an [`AdmissionPolicy`] — block the producer (with a
//! deadline), shed the oldest queued task, or reject the new one — and
//! [`Scheduler::submit_admission`] reports the verdict so producers can
//! degrade gracefully instead of growing an unbounded backlog. Tenants
//! additionally carry their own task quota and may override the policy
//! ([`TenantSpec`]), making the verdict per-tenant: a tenant over its
//! quota sheds *its own* oldest task, never a neighbour's.

use crate::pool::{BucketPool, Placement, PoolSnapshot, ResidencyHint};
use crate::tenant::{TenantSpec, DEFAULT_TENANT};
use crossbeam::channel::{bounded, Receiver};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies a staging bucket.
pub type BucketId = u32;

/// What a bounded scheduler does with a submission that finds the queue
/// at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Apply backpressure: block the submitter until space frees up, at
    /// most `max_wait`, then report [`Admission::TimedOut`]. An already
    /// elapsed deadline (`max_wait` = 0) reports [`Admission::TimedOut`]
    /// immediately without waiting.
    Block {
        /// Longest a submission may wait for queue space.
        max_wait: Duration,
    },
    /// Evict the oldest queued task to make room — freshest data wins,
    /// matching the driver's ring-buffer back-pressure semantics. Under
    /// tenancy the victim is the submitting tenant's own oldest task
    /// when it has one.
    ShedOldest,
    /// Refuse the new task and tell the producer, which can then run
    /// the aggregation in-situ instead.
    RejectNew,
}

/// The verdict of [`Scheduler::submit_admission`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Enqueued (or handed straight to a parked bucket).
    Accepted {
        /// Sequence number of the admitted task.
        seq: u64,
    },
    /// Enqueued after evicting the oldest queued task
    /// ([`AdmissionPolicy::ShedOldest`]).
    AcceptedShed {
        /// Sequence number of the admitted task.
        seq: u64,
        /// Sequence number of the task that was shed to make room.
        shed_seq: u64,
    },
    /// Refused: the queue is full ([`AdmissionPolicy::RejectNew`]).
    Rejected,
    /// Refused: the queue stayed full past the blocking deadline
    /// ([`AdmissionPolicy::Block`]).
    TimedOut,
    /// Refused: the scheduler is closed.
    Closed,
}

impl Admission {
    /// The admitted task's sequence number, if it was admitted.
    pub fn seq(&self) -> Option<u64> {
        match self {
            Admission::Accepted { seq } | Admission::AcceptedShed { seq, .. } => Some(*seq),
            _ => None,
        }
    }
}

/// Scheduler counters and the assignment log.
#[derive(Debug, Clone, Default)]
pub struct SchedStats {
    /// Tasks enqueued so far.
    pub tasks_submitted: u64,
    /// Tasks assigned so far (a requeued task counts once per
    /// assignment).
    pub tasks_assigned: u64,
    /// Tasks put back at the head of the queue after a failed hand-off
    /// (e.g. a remote bucket's connection died before acknowledging).
    pub tasks_requeued: u64,
    /// Log of `(task_seq, bucket)` assignments in order.
    pub assignment_log: Vec<(u64, BucketId)>,
    /// High-water mark of the task queue (backlog indicator: when this
    /// grows across timesteps, the staging area is undersized for the
    /// requested analysis frequency).
    pub max_queue_depth: usize,
    /// Queued tasks evicted to admit newer ones
    /// ([`AdmissionPolicy::ShedOldest`]).
    pub tasks_shed: u64,
    /// Submissions refused at capacity ([`AdmissionPolicy::RejectNew`],
    /// or [`AdmissionPolicy::Block`] deadlines that elapsed).
    pub tasks_rejected: u64,
    /// Input bytes that locality-aware placement avoided moving by
    /// assigning tasks to buckets co-located with their resident input
    /// shards. Always 0 under the default FCFS placement. The
    /// counterpart of the driver's `movement_bytes`.
    pub locality_bytes_saved: u64,
}

/// Per-tenant scheduler counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TenantSchedStats {
    /// Tasks this tenant submitted that were admitted.
    pub tasks_submitted: u64,
    /// Assignments of this tenant's tasks to buckets.
    pub tasks_assigned: u64,
    /// This tenant's tasks requeued after a failed hand-off.
    pub tasks_requeued: u64,
    /// This tenant's queued tasks evicted under shedding.
    pub tasks_shed: u64,
    /// This tenant's submissions refused at capacity/quota.
    pub tasks_rejected: u64,
}

/// Snapshot of one tenant's scheduler state, for stats RPCs and the
/// fairness bench.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Tenant name.
    pub name: String,
    /// DRR weight.
    pub weight: u32,
    /// Tasks currently queued (not yet assigned).
    pub queued: u64,
    /// Task quota, if bounded.
    pub task_quota: Option<u64>,
    /// Counters.
    pub stats: TenantSchedStats,
}

/// Live observability handles, resolved once from the global
/// [`sitra_obs`] registry. The queue-depth gauge is set at exactly the
/// same mutation points as `SchedStats::max_queue_depth`, so the
/// gauge's high-water mark and the stats field always agree.
struct SchedObs {
    queue_depth: sitra_obs::Gauge,
    submitted: sitra_obs::Counter,
    assigned: sitra_obs::Counter,
    requeued: sitra_obs::Counter,
    shed: sitra_obs::Counter,
    rejected: sitra_obs::Counter,
    locality_saved: sitra_obs::Counter,
    task_wait: sitra_obs::Histogram,
    bucket_idle: sitra_obs::Histogram,
    backpressure_wait: sitra_obs::Histogram,
}

impl SchedObs {
    fn resolve() -> Self {
        let reg = sitra_obs::global();
        SchedObs {
            queue_depth: reg.gauge("sched.queue.depth"),
            submitted: reg.counter("sched.tasks.submitted"),
            assigned: reg.counter("sched.tasks.assigned"),
            requeued: reg.counter("sched.tasks.requeued"),
            shed: reg.counter("sched.tasks.shed"),
            rejected: reg.counter("sched.tasks.rejected"),
            locality_saved: reg.counter("sched.locality.bytes_saved"),
            task_wait: reg.histogram("sched.task.wait_ns"),
            bucket_idle: reg.histogram("sched.bucket.idle_ns"),
            backpressure_wait: reg.histogram("sched.backpressure.wait_ns"),
        }
    }
}

/// Per-tenant observability handles (labelled metric names), resolved
/// once at tenant registration.
struct TenantObs {
    queued: sitra_obs::Gauge,
    submitted: sitra_obs::Counter,
    assigned: sitra_obs::Counter,
    shed: sitra_obs::Counter,
    rejected: sitra_obs::Counter,
}

impl TenantObs {
    fn resolve(tenant: &str) -> Self {
        let reg = sitra_obs::global();
        TenantObs {
            queued: reg.gauge(&format!("sched.tenant.queued{{tenant={tenant}}}")),
            submitted: reg.counter(&format!("sched.tenant.submitted{{tenant={tenant}}}")),
            assigned: reg.counter(&format!("sched.tenant.assigned{{tenant={tenant}}}")),
            shed: reg.counter(&format!("sched.tenant.shed{{tenant={tenant}}}")),
            rejected: reg.counter(&format!("sched.tenant.rejected{{tenant={tenant}}}")),
        }
    }
}

/// One tenant's FCFS sub-queue plus its DRR bookkeeping. Each entry in
/// `queue` remembers when it was (re)enqueued so assignment can record
/// the task's queue-wait latency.
struct TenantQ<T> {
    name: Arc<str>,
    queue: VecDeque<(u64, T, Instant)>,
    weight: u32,
    /// Task credits left in this tenant's current DRR turn.
    deficit: u32,
    /// Whether this tenant currently sits in the active rotation.
    in_rr: bool,
    task_quota: Option<usize>,
    policy: Option<AdmissionPolicy>,
    stats: TenantSchedStats,
    obs: TenantObs,
}

struct Inner<T> {
    tenants: Vec<TenantQ<T>>,
    by_name: HashMap<String, usize>,
    /// Active DRR rotation: indices of tenants with queued tasks.
    rr: VecDeque<usize>,
    total_queued: usize,
    /// Tenant of each assigned-but-unacknowledged task, so a requeue
    /// lands back in the right sub-queue. Entries are pruned on
    /// [`Scheduler::ack`] and on requeue.
    inflight: HashMap<u64, usize>,
    pool: BucketPool<T>,
    /// Residency hints for queued tasks, keyed by sequence number and
    /// consumed at first assignment. A requeued task carries no hint
    /// and falls back to FCFS placement — correctness never depends on
    /// a hint surviving the two-phase hand-off.
    hints: HashMap<u64, ResidencyHint>,
    /// Recent task queue-wait samples (ns), a bounded ring feeding the
    /// autoscaler's p99 estimate.
    wait_samples: VecDeque<u64>,
    stats: SchedStats,
    next_seq: u64,
    closed: bool,
    capacity: Option<usize>,
    policy: AdmissionPolicy,
    obs: SchedObs,
}

/// How many queue-wait samples the p99 ring keeps.
const WAIT_SAMPLE_CAP: usize = 512;

impl<T> Inner<T> {
    /// Record one task's queue-wait at assignment: the latency
    /// histogram plus the bounded sample ring behind
    /// [`Scheduler::pool_snapshot`]'s p99.
    fn note_wait(&mut self, enqueued: Instant) {
        let waited = enqueued.elapsed();
        self.obs.task_wait.observe(waited);
        if self.wait_samples.len() == WAIT_SAMPLE_CAP {
            self.wait_samples.pop_front();
        }
        self.wait_samples.push_back(waited.as_nanos() as u64);
    }

    /// p99 of the recent queue-wait samples (zero with no samples).
    fn p99_wait(&self) -> Duration {
        if self.wait_samples.is_empty() {
            return Duration::ZERO;
        }
        let mut v: Vec<u64> = self.wait_samples.iter().copied().collect();
        v.sort_unstable();
        Duration::from_nanos(v[(v.len() * 99 / 100).min(v.len() - 1)])
    }

    /// Credit a locality-placement save to stats, metric, and journal.
    fn note_locality_saved(&mut self, seq: u64, bucket: BucketId, saved: u64) {
        if saved == 0 {
            return;
        }
        self.stats.locality_bytes_saved += saved;
        self.obs.locality_saved.add(saved);
        sitra_obs::emit(
            "sched",
            "task.local",
            &[
                ("seq", seq.to_string()),
                ("bucket", bucket.to_string()),
                ("bytes", saved.to_string()),
            ],
        );
    }

    /// Index of `tenant`, registering a weight-1 unlimited tenant on
    /// first sight. Quotas and weights are opt-in via
    /// [`Scheduler::register_tenant`]; an unknown name must not be an
    /// error or old clients could never reach a tenancy-aware server.
    fn tenant_idx(&mut self, tenant: &str) -> usize {
        if let Some(&i) = self.by_name.get(tenant) {
            return i;
        }
        let i = self.tenants.len();
        self.tenants.push(TenantQ {
            name: Arc::from(tenant),
            queue: VecDeque::new(),
            weight: 1,
            deficit: 0,
            in_rr: false,
            task_quota: None,
            policy: None,
            stats: TenantSchedStats::default(),
            obs: TenantObs::resolve(tenant),
        });
        self.by_name.insert(tenant.to_string(), i);
        i
    }

    /// Whether a submission by `idx` is currently refused: the global
    /// queue is at capacity, or the tenant is at its own task quota.
    fn over_limit(&self, idx: usize) -> bool {
        let over_global = self.capacity.is_some_and(|cap| self.total_queued >= cap);
        let over_tenant = self.tenants[idx]
            .task_quota
            .is_some_and(|q| self.tenants[idx].queue.len() >= q);
        over_global || over_tenant
    }

    /// The policy governing `idx`'s submissions (tenant override, else
    /// global).
    fn policy_for(&self, idx: usize) -> AdmissionPolicy {
        self.tenants[idx].policy.unwrap_or(self.policy)
    }

    fn activate_back(&mut self, idx: usize) {
        if !self.tenants[idx].in_rr {
            self.tenants[idx].in_rr = true;
            self.rr.push_back(idx);
        }
    }

    /// Put `idx` at the front of the rotation with at least one credit,
    /// so a requeued task is the next assignment.
    fn activate_front(&mut self, idx: usize) {
        if self.tenants[idx].in_rr {
            if let Some(pos) = self.rr.iter().position(|&i| i == idx) {
                self.rr.remove(pos);
            }
        }
        self.tenants[idx].in_rr = true;
        self.rr.push_front(idx);
        if self.tenants[idx].deficit == 0 {
            self.tenants[idx].deficit = 1;
        }
    }

    fn enqueue_back(&mut self, idx: usize, seq: u64, task: T) {
        self.tenants[idx]
            .queue
            .push_back((seq, task, Instant::now()));
        self.total_queued += 1;
        self.activate_back(idx);
        self.note_depth(idx);
    }

    fn note_depth(&mut self, idx: usize) {
        self.stats.max_queue_depth = self.stats.max_queue_depth.max(self.total_queued);
        self.obs.queue_depth.set(self.total_queued as i64);
        let tq = &self.tenants[idx];
        tq.obs.queued.set(tq.queue.len() as i64);
    }

    /// Deficit-round-robin pop: serve the tenant at the head of the
    /// rotation until its credits or queue run out, then rotate. With
    /// one tenant this is exactly global FCFS. The popped task is
    /// recorded in `inflight` so a failed hand-off can requeue it into
    /// the right sub-queue.
    fn pop_next(&mut self) -> Option<(u64, T, Instant)> {
        loop {
            let &idx = self.rr.front()?;
            if self.tenants[idx].queue.is_empty() {
                // Stale rotation entry (queue drained elsewhere).
                self.tenants[idx].deficit = 0;
                self.tenants[idx].in_rr = false;
                self.rr.pop_front();
                continue;
            }
            let tq = &mut self.tenants[idx];
            if tq.deficit == 0 {
                tq.deficit = tq.weight.max(1);
            }
            tq.deficit -= 1;
            let (seq, task, enqueued) = tq.queue.pop_front().unwrap();
            tq.stats.tasks_assigned += 1;
            tq.obs.assigned.inc();
            tq.obs.queued.set(tq.queue.len() as i64);
            let name = Arc::clone(&tq.name);
            sitra_obs::emit(
                "sched",
                "tenant.assign",
                &[("tenant", name.to_string()), ("seq", seq.to_string())],
            );
            self.total_queued -= 1;
            if self.tenants[idx].queue.is_empty() {
                self.tenants[idx].deficit = 0;
                self.tenants[idx].in_rr = false;
                self.rr.pop_front();
            } else if self.tenants[idx].deficit == 0 {
                self.rr.pop_front();
                self.rr.push_back(idx);
            }
            self.inflight.insert(seq, idx);
            return Some((seq, task, enqueued));
        }
    }

    /// Shed the oldest queued task to make room for a submission by
    /// `idx`: the submitting tenant's own oldest when it has one
    /// (quota pressure must not evict a neighbour), else the globally
    /// oldest by sequence number.
    fn shed_oldest_for(&mut self, idx: usize) -> Option<u64> {
        let victim = if !self.tenants[idx].queue.is_empty() {
            idx
        } else {
            self.tenants
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.queue.is_empty())
                .min_by_key(|(_, t)| t.queue.front().unwrap().0)
                .map(|(i, _)| i)?
        };
        let tq = &mut self.tenants[victim];
        let (seq, _, _) = tq.queue.pop_front().unwrap();
        tq.stats.tasks_shed += 1;
        tq.obs.shed.inc();
        tq.obs.queued.set(tq.queue.len() as i64);
        self.total_queued -= 1;
        if tq.queue.is_empty() {
            self.tenants[victim].deficit = 0;
            if self.tenants[victim].in_rr {
                if let Some(pos) = self.rr.iter().position(|&i| i == victim) {
                    self.rr.remove(pos);
                }
                self.tenants[victim].in_rr = false;
            }
        }
        self.stats.tasks_shed += 1;
        self.obs.shed.inc();
        let name = Arc::clone(&self.tenants[victim].name);
        sitra_obs::emit(
            "sched",
            "task.shed",
            &[("seq", seq.to_string()), ("tenant", name.to_string())],
        );
        Some(seq)
    }
}

struct Shared<T> {
    mu: Mutex<Inner<T>>,
    // Signalled whenever queue space frees up (a task popped) or the
    // scheduler closes, so Block-policy submitters can wake.
    freed: Condvar,
}

/// A weighted-fair pull scheduler over task payloads `T` (FCFS within a
/// tenant, deficit-round-robin across tenants).
pub struct Scheduler<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Scheduler<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Send + 'static> Default for Scheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + 'static> Scheduler<T> {
    /// An empty, unbounded scheduler.
    pub fn new() -> Self {
        Self::with_limit(None, AdmissionPolicy::RejectNew)
    }

    /// An empty scheduler whose queue holds at most `capacity` tasks;
    /// `policy` decides what a submission at capacity does.
    pub fn bounded(capacity: usize, policy: AdmissionPolicy) -> Self {
        Self::with_limit(Some(capacity.max(1)), policy)
    }

    fn with_limit(capacity: Option<usize>, policy: AdmissionPolicy) -> Self {
        let sched = Self {
            shared: Arc::new(Shared {
                mu: Mutex::new(Inner {
                    tenants: Vec::new(),
                    by_name: HashMap::new(),
                    rr: VecDeque::new(),
                    total_queued: 0,
                    inflight: HashMap::new(),
                    pool: BucketPool::new(),
                    hints: HashMap::new(),
                    wait_samples: VecDeque::new(),
                    stats: SchedStats::default(),
                    next_seq: 0,
                    closed: false,
                    capacity,
                    policy,
                    obs: SchedObs::resolve(),
                }),
                freed: Condvar::new(),
            }),
        };
        // The default tenant always exists at index 0.
        sched.shared.mu.lock().tenant_idx(DEFAULT_TENANT);
        sched
    }

    /// The queue capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.shared.mu.lock().capacity
    }

    /// The admission policy applied at capacity.
    pub fn policy(&self) -> AdmissionPolicy {
        self.shared.mu.lock().policy
    }

    /// Register (or update) a tenant: weight, task quota, and policy
    /// override. Existing queued tasks keep their positions.
    pub fn register_tenant(&self, spec: &TenantSpec) {
        let mut g = self.shared.mu.lock();
        let idx = g.tenant_idx(&spec.name);
        let tq = &mut g.tenants[idx];
        tq.weight = spec.weight.max(1);
        tq.task_quota = spec.task_quota;
        tq.policy = spec.policy;
        sitra_obs::emit(
            "sched",
            "tenant.register",
            &[
                ("tenant", spec.name.clone()),
                ("weight", tq.weight.to_string()),
                (
                    "task_quota",
                    tq.task_quota.map_or("none".into(), |q| q.to_string()),
                ),
            ],
        );
    }

    /// Data-ready: enqueue a task for the default tenant. Returns its
    /// sequence number. If a bucket is parked, the task is handed over
    /// immediately.
    pub fn submit(&self, task: T) -> u64 {
        match self.submit_admission(task) {
            Admission::Accepted { seq } | Admission::AcceptedShed { seq, .. } => seq,
            Admission::Closed => panic!("scheduler closed"),
            verdict => panic!("task not admitted: {verdict:?}"),
        }
    }

    fn drain(shared: &Shared<T>, g: &mut Inner<T>) {
        let mut popped = false;
        while g.total_queued > 0 && g.pool.has_parked() {
            let (seq, task, enqueued) = g.pop_next().expect("total_queued > 0");
            let hint = g.hints.remove(&seq);
            let (bucket, tx, saved) = g
                .pool
                .take_for(hint.as_ref())
                .expect("pool has a parked bucket");
            g.note_locality_saved(seq, bucket, saved);
            g.stats.tasks_assigned += 1;
            g.stats.assignment_log.push((seq, bucket));
            g.obs.assigned.inc();
            g.note_wait(enqueued);
            popped = true;
            // A dropped bucket loses the task; buckets park before
            // dropping only via close(), so this send always succeeds in
            // practice.
            let _ = tx.send((seq, task));
        }
        g.obs.queue_depth.set(g.total_queued as i64);
        if popped {
            shared.freed.notify_all();
        }
    }

    /// Data-ready without the panic: like [`Self::submit`] but returns
    /// `None` when the task is not admitted (scheduler closed, or a
    /// bounded queue refused it), for callers where a late submission is
    /// an error to report, not a bug to crash on.
    pub fn try_submit(&self, task: T) -> Option<u64> {
        self.submit_admission(task).seq()
    }

    /// Data-ready with an explicit admission verdict, as the default
    /// tenant. See [`Self::submit_admission_as`].
    pub fn submit_admission(&self, task: T) -> Admission {
        self.submit_admission_as(DEFAULT_TENANT, task)
    }

    /// Data-ready with an explicit admission verdict: enqueue the task
    /// under `tenant`, applying the tenant's [`AdmissionPolicy`] (or the
    /// scheduler's) when the global queue is at capacity or the tenant
    /// is at its task quota. This is the verb the remote protocol
    /// surfaces so producers learn *why* a submission was refused (and
    /// which task was shed) instead of a bare failure.
    pub fn submit_admission_as(&self, tenant: &str, task: T) -> Admission {
        self.submit_admission_hinted_as(tenant, task, None)
    }

    /// [`Self::submit_admission_as`] with a [`ResidencyHint`] describing
    /// where the task's input bytes live, so a locality-aware
    /// [`Placement`] can steer the assignment toward a co-located
    /// bucket. The hint is advisory: under FCFS placement (the default)
    /// it is ignored and the admission verdict, sequence number, and
    /// assignment order are identical to the unhinted verb.
    pub fn submit_admission_hinted_as(
        &self,
        tenant: &str,
        task: T,
        hint: Option<ResidencyHint>,
    ) -> Admission {
        let mut g = self.shared.mu.lock();
        if g.closed {
            return Admission::Closed;
        }
        let idx = g.tenant_idx(tenant);
        let mut shed_seq = None;
        if g.over_limit(idx) {
            match g.policy_for(idx) {
                AdmissionPolicy::RejectNew => {
                    return Self::reject(&mut g, idx);
                }
                AdmissionPolicy::ShedOldest => {
                    shed_seq = g.shed_oldest_for(idx);
                    if shed_seq.is_none() {
                        // Nothing anywhere to shed (capacity consumed by
                        // in-flight hand-offs): refuse instead.
                        return Self::reject(&mut g, idx);
                    }
                }
                AdmissionPolicy::Block { max_wait } => {
                    let t0 = Instant::now();
                    // An already-elapsed deadline returns immediately:
                    // there is nothing to wait for, and entering the
                    // wait loop with a zero budget would re-check
                    // capacity on every spurious wakeup instead of
                    // reporting the timeout.
                    if !max_wait.is_zero() {
                        let deadline = t0 + max_wait;
                        while g.over_limit(idx) && !g.closed {
                            let left = deadline.saturating_duration_since(Instant::now());
                            if left.is_zero() {
                                break;
                            }
                            if self.shared.freed.wait_for(&mut g, left) {
                                // The deadline elapsed inside the wait:
                                // do not spin through ever-shorter
                                // re-waits, the verdict is final.
                                break;
                            }
                        }
                    }
                    g.obs.backpressure_wait.observe(t0.elapsed());
                    if g.closed {
                        return Admission::Closed;
                    }
                    if g.over_limit(idx) {
                        return Self::reject(&mut g, idx);
                    }
                }
            }
        }
        let seq = g.next_seq;
        g.next_seq += 1;
        g.stats.tasks_submitted += 1;
        g.obs.submitted.inc();
        g.tenants[idx].stats.tasks_submitted += 1;
        g.tenants[idx].obs.submitted.inc();
        if let Some(shed) = shed_seq {
            g.hints.remove(&shed);
        }
        if let Some(h) = hint {
            if !h.is_empty() {
                g.hints.insert(seq, h);
            }
        }
        Self::emit_admit(
            &g,
            idx,
            if shed_seq.is_some() {
                "shed"
            } else {
                "accepted"
            },
        );
        g.enqueue_back(idx, seq, task);
        Self::drain(&self.shared, &mut g);
        match shed_seq {
            Some(shed) => Admission::AcceptedShed {
                seq,
                shed_seq: shed,
            },
            None => Admission::Accepted { seq },
        }
    }

    fn reject(g: &mut Inner<T>, idx: usize) -> Admission {
        g.stats.tasks_rejected += 1;
        g.obs.rejected.inc();
        g.tenants[idx].stats.tasks_rejected += 1;
        g.tenants[idx].obs.rejected.inc();
        Self::emit_admit(g, idx, "rejected");
        match g.policy_for(idx) {
            AdmissionPolicy::Block { .. } => Admission::TimedOut,
            _ => Admission::Rejected,
        }
    }

    /// Journal one admission verdict with its tenant, so replay can
    /// rebuild the per-tenant admission table bit-identical to the live
    /// counters.
    fn emit_admit(g: &Inner<T>, idx: usize, verdict: &str) {
        sitra_obs::emit(
            "sched",
            "tenant.admit",
            &[
                ("tenant", g.tenants[idx].name.to_string()),
                ("verdict", verdict.to_string()),
            ],
        );
    }

    /// Whether [`Self::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.shared.mu.lock().closed
    }

    /// Put an assigned task back at the *head* of its tenant's queue,
    /// keeping its original sequence number: the hand-off to a bucket
    /// failed (its connection died before acknowledging receipt) and the
    /// task must go to the next free bucket instead of being lost. The
    /// tenant rotation is advanced so the requeued task is the next
    /// assignment. Works even after [`Self::close`] so in-flight tasks
    /// drain, and bypasses the admission policy — an in-flight task was
    /// already admitted once and must never be the one to lose out.
    pub fn requeue_front(&self, seq: u64, task: T) {
        let mut g = self.shared.mu.lock();
        let idx = g.inflight.remove(&seq).unwrap_or(0);
        Self::requeue_front_at(&self.shared, &mut g, idx, seq, task);
    }

    /// [`requeue_front`](Self::requeue_front) with an explicit tenant,
    /// for callers that drained the queue (so the scheduler no longer
    /// knows the owner) and are putting a task back where it came from.
    pub fn requeue_front_as(&self, tenant: &str, seq: u64, task: T) {
        let mut g = self.shared.mu.lock();
        g.inflight.remove(&seq);
        let idx = g.tenant_idx(tenant);
        Self::requeue_front_at(&self.shared, &mut g, idx, seq, task);
    }

    fn requeue_front_at(shared: &Shared<T>, g: &mut Inner<T>, idx: usize, seq: u64, task: T) {
        g.stats.tasks_requeued += 1;
        g.obs.requeued.inc();
        g.tenants[idx].stats.tasks_requeued += 1;
        sitra_obs::emit(
            "sched",
            "tenant.requeue",
            &[
                ("tenant", g.tenants[idx].name.to_string()),
                ("seq", seq.to_string()),
            ],
        );
        // The wait clock restarts: the latency being measured is
        // time-in-queue, and a requeued task re-enters the queue now.
        g.tenants[idx].queue.push_front((seq, task, Instant::now()));
        g.total_queued += 1;
        g.activate_front(idx);
        g.note_depth(idx);
        Self::drain(shared, g);
    }

    /// Acknowledge that an assigned task reached its consumer: the
    /// scheduler can forget which tenant owned the hand-off. (Purely
    /// bookkeeping — an unacknowledged entry only costs a map slot.)
    pub fn ack(&self, seq: u64) {
        self.shared.mu.lock().inflight.remove(&seq);
    }

    /// The tenant owning an in-flight (assigned, unacknowledged) task.
    /// Buckets are shared across tenants, so a consumer handed `seq`
    /// learns here which namespace the task's inputs live in.
    pub fn tenant_of(&self, seq: u64) -> Option<String> {
        let g = self.shared.mu.lock();
        g.inflight
            .get(&seq)
            .map(|&idx| g.tenants[idx].name.to_string())
    }

    /// Remove and return every queued (not yet assigned) task in global
    /// FCFS (sequence) order. See [`Self::drain_queued_labeled`] for the
    /// tenant-preserving variant.
    pub fn drain_queued(&self) -> Vec<(u64, T)> {
        self.drain_queued_labeled()
            .into_iter()
            .map(|(_, seq, t)| (seq, t))
            .collect()
    }

    /// Remove and return every queued (not yet assigned) task as
    /// `(tenant, seq, task)` in sequence order. This is the
    /// graceful-leave primitive: a cluster member shutting down drains
    /// its backlog and re-submits the tasks *under the same tenants* on
    /// the surviving members instead of stranding them behind a closed
    /// scheduler. In-flight (assigned but unacknowledged) tasks are not
    /// touched — their two-phase hand-off already guarantees requeue or
    /// completion.
    pub fn drain_queued_labeled(&self) -> Vec<(String, u64, T)> {
        let mut g = self.shared.mu.lock();
        let mut drained: Vec<(String, u64, T)> = Vec::with_capacity(g.total_queued);
        for tq in g.tenants.iter_mut() {
            let name = tq.name.to_string();
            for (seq, task, _) in tq.queue.drain(..) {
                drained.push((name.clone(), seq, task));
            }
            tq.deficit = 0;
            tq.in_rr = false;
            tq.obs.queued.set(0);
        }
        drained.sort_by_key(|(_, seq, _)| *seq);
        for (_, seq, _) in &drained {
            g.hints.remove(seq);
        }
        g.rr.clear();
        g.total_queued = 0;
        g.obs.queue_depth.set(0);
        // Queue space freed: wake any Block-policy submitters.
        self.shared.freed.notify_all();
        drained
    }

    /// Register a bucket and get its handle.
    pub fn register_bucket(&self, id: BucketId) -> BucketHandle<T> {
        self.register_bucket_at(id, None)
    }

    /// Register a bucket with a *location* label (the endpoint or
    /// cluster member it is co-resident with), so a locality-aware
    /// [`Placement`] can match it against task residency hints.
    pub fn register_bucket_at(&self, id: BucketId, location: Option<&str>) -> BucketHandle<T> {
        {
            let mut g = self.shared.mu.lock();
            g.pool.note_busy(id);
            g.pool.set_location(id, location.map(str::to_string));
        }
        BucketHandle {
            id,
            sched: self.clone(),
        }
    }

    /// Install a [`Placement`] policy for subsequent assignments. The
    /// default is [`crate::pool::FcfsPlacement`].
    pub fn set_placement(&self, placement: Arc<dyn Placement>) {
        self.shared.mu.lock().pool.set_placement(placement);
    }

    /// Name of the placement policy in force.
    pub fn placement_name(&self) -> &'static str {
        self.shared.mu.lock().pool.placement_name()
    }

    /// Mark bucket `id` for drain-then-retire: if parked it wakes at
    /// once with [`Lease::Retire`]; if busy it finishes its current task
    /// and retires on its next lease request. Returns false when the
    /// bucket is unknown or already draining/retired. No task is ever
    /// assigned to a draining bucket.
    pub fn begin_drain(&self, id: BucketId) -> bool {
        let ok = self.shared.mu.lock().pool.begin_drain(id);
        if ok {
            sitra_obs::emit("sched", "bucket.drain", &[("bucket", id.to_string())]);
        }
        ok
    }

    /// Pick one bucket to drain-then-retire — the most recently parked
    /// idle bucket when one exists (the longest-idle keep serving FCFS),
    /// else a busy one. Returns the chosen id.
    pub fn drain_one_bucket(&self) -> Option<BucketId> {
        let id = self.shared.mu.lock().pool.drain_one();
        if let Some(id) = id {
            sitra_obs::emit("sched", "bucket.drain", &[("bucket", id.to_string())]);
        }
        id
    }

    /// Snapshot of the bucket pool for the autoscaler: live buckets,
    /// parked-idle count, queue depth, and the p99 of recent task
    /// queue-waits.
    pub fn pool_snapshot(&self) -> PoolSnapshot {
        let g = self.shared.mu.lock();
        PoolSnapshot {
            buckets: g.pool.active_len(),
            idle: g.pool.parked_len(),
            queue_depth: g.total_queued,
            p99_wait: g.p99_wait(),
        }
    }

    /// Lifecycle state of bucket `id`, `None` if it never registered.
    pub fn bucket_state(&self, id: BucketId) -> Option<crate::pool::BucketState> {
        self.shared.mu.lock().pool.state(id)
    }

    /// Record the capacity controller's desired bucket count, surfaced
    /// through pool stats so external supervisors (e.g. `sitra-bench`
    /// replay or a worker fleet manager) can reconcile toward it.
    pub fn set_pool_target(&self, target: Option<usize>) {
        self.shared.mu.lock().pool.set_target(target);
    }

    /// The desired bucket count, if a controller has set one.
    pub fn pool_target(&self) -> Option<usize> {
        self.shared.mu.lock().pool.target()
    }

    /// Close the scheduler: no further submissions; parked and future
    /// bucket requests return `None` once the queue drains.
    pub fn close(&self) {
        let mut g = self.shared.mu.lock();
        // Drain *before* dropping the parked buckets' senders: a task
        // submitted just before close must reach a bucket that is
        // already parked rather than strand in the queue while that
        // bucket wakes empty-handed and gives up.
        Self::drain(&self.shared, &mut g);
        g.closed = true;
        // Wake remaining parked buckets with nothing: drop their senders.
        g.pool.clear_parked();
        // And wake Block-policy submitters so they observe the close.
        self.shared.freed.notify_all();
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> SchedStats {
        self.shared.mu.lock().stats.clone()
    }

    /// Snapshot of every tenant's scheduler state, in registration
    /// order (the default tenant first).
    pub fn tenant_stats(&self) -> Vec<TenantSnapshot> {
        let g = self.shared.mu.lock();
        g.tenants
            .iter()
            .map(|t| TenantSnapshot {
                name: t.name.to_string(),
                weight: t.weight,
                queued: t.queue.len() as u64,
                task_quota: t.task_quota.map(|q| q as u64),
                stats: t.stats.clone(),
            })
            .collect()
    }

    /// Current queue depth (across all tenants).
    pub fn queue_depth(&self) -> usize {
        self.shared.mu.lock().total_queued
    }
}

/// The verdict of one bucket-ready poll ([`BucketHandle::poll_task`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lease<T> {
    /// A task was assigned to this bucket.
    Assigned {
        /// The task's sequence number.
        seq: u64,
        /// The task payload.
        task: T,
    },
    /// Nothing arrived within the timeout; poll again.
    Empty,
    /// The scheduler closed with an empty queue: exit.
    Closed,
    /// The capacity controller drained this bucket: deregister and
    /// exit. Fires only *between* tasks, never mid-assignment, so a
    /// retiring bucket has nothing in hand to lose.
    Retire,
}

/// A staging bucket's connection to the scheduler.
pub struct BucketHandle<T> {
    id: BucketId,
    sched: Scheduler<T>,
}

impl<T: Send + 'static> BucketHandle<T> {
    /// This bucket's id.
    pub fn id(&self) -> BucketId {
        self.id
    }

    /// Bucket-ready: one lease poll, the full lifecycle verb. Blocks
    /// until a task is assigned ([`Lease::Assigned`]), the scheduler
    /// closes ([`Lease::Closed`]), the bucket is drained
    /// ([`Lease::Retire`]), or — with a timeout — nothing arrives in
    /// time ([`Lease::Empty`]; the bucket is withdrawn from the free
    /// list, rescuing any task that raced in). FCFS within a tenant,
    /// weighted round-robin across tenants, placement-policy choice on
    /// the bucket list (FCFS by default).
    pub fn poll_task(&self, timeout: Option<Duration>) -> Lease<T> {
        let t_ready = Instant::now();
        let rx: Receiver<(u64, T)> = {
            let mut g = self.sched.shared.mu.lock();
            if g.pool.take_retirement(self.id) {
                sitra_obs::emit("sched", "bucket.retire", &[("bucket", self.id.to_string())]);
                return Lease::Retire;
            }
            if let Some((seq, task, enqueued)) = g.pop_next() {
                g.pool.note_busy(self.id);
                let hint = g.hints.remove(&seq);
                let saved = g.pool.immediate_saved(self.id, hint.as_ref());
                g.note_locality_saved(seq, self.id, saved);
                g.stats.tasks_assigned += 1;
                g.stats.assignment_log.push((seq, self.id));
                g.obs.assigned.inc();
                g.note_wait(enqueued);
                g.obs.bucket_idle.observe(t_ready.elapsed());
                g.obs.queue_depth.set(g.total_queued as i64);
                self.sched.shared.freed.notify_all();
                return Lease::Assigned { seq, task };
            }
            if g.closed {
                return Lease::Closed;
            }
            let (tx, rx) = bounded(1);
            g.pool.park(self.id, tx);
            rx
        };
        let got = match timeout {
            // Park until a task (sender dropped => closed or drained).
            None => rx.recv().ok(),
            Some(timeout) => match rx.recv_timeout(timeout) {
                Ok(t) => Some(t),
                Err(_) => {
                    // Withdraw (if still parked) so a future task is not
                    // sent into the void.
                    let mut g = self.sched.shared.mu.lock();
                    g.pool.withdraw(self.id);
                    // A task may have raced in between timeout and lock:
                    // it would already be in rx.
                    rx.try_recv().ok()
                }
            },
        };
        match got {
            Some((seq, task)) => {
                self.sched
                    .shared
                    .mu
                    .lock()
                    .obs
                    .bucket_idle
                    .observe(t_ready.elapsed());
                Lease::Assigned { seq, task }
            }
            None => {
                // Nothing received: a timeout, a close, or a drain that
                // dropped our parked sender. Classify under the lock.
                let mut g = self.sched.shared.mu.lock();
                if g.pool.take_retirement(self.id) {
                    sitra_obs::emit("sched", "bucket.retire", &[("bucket", self.id.to_string())]);
                    Lease::Retire
                } else if g.closed {
                    Lease::Closed
                } else {
                    Lease::Empty
                }
            }
        }
    }

    /// Bucket-ready: request the next task, blocking until one is
    /// assigned or the scheduler is closed (or this bucket drained)
    /// with nothing assigned — then `None`.
    pub fn request_task(&self) -> Option<(u64, T)> {
        match self.poll_task(None) {
            Lease::Assigned { seq, task } => Some((seq, task)),
            _ => None,
        }
    }

    /// Like [`Self::request_task`] but gives up after `timeout`. A timed
    /// out request withdraws the bucket from the free list. Use
    /// [`Self::poll_task`] to distinguish a timeout from close/retire.
    pub fn request_task_timeout(&self, timeout: Duration) -> Option<(u64, T)> {
        match self.poll_task(Some(timeout)) {
            Lease::Assigned { seq, task } => Some((seq, task)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_assignment_when_task_waiting() {
        let s: Scheduler<&'static str> = Scheduler::new();
        s.submit("t0");
        let b = s.register_bucket(1);
        assert_eq!(b.request_task(), Some((0, "t0")));
        let st = s.stats();
        assert_eq!(st.tasks_assigned, 1);
        assert_eq!(st.assignment_log, vec![(0, 1)]);
    }

    #[test]
    fn parked_bucket_gets_task_on_submit() {
        let s: Scheduler<u32> = Scheduler::new();
        let b = s.register_bucket(3);
        let s2 = s.clone();
        let h = std::thread::spawn(move || b.request_task());
        std::thread::sleep(Duration::from_millis(50));
        s2.submit(99);
        assert_eq!(h.join().unwrap(), Some((0, 99)));
    }

    #[test]
    fn fcfs_task_order() {
        let s: Scheduler<u64> = Scheduler::new();
        for i in 0..10 {
            s.submit(i);
        }
        let b = s.register_bucket(0);
        for i in 0..10 {
            let (seq, task) = b.request_task().unwrap();
            assert_eq!(seq, i);
            assert_eq!(task, i);
        }
    }

    #[test]
    fn fcfs_bucket_order() {
        // Buckets that parked first are served first.
        let s: Scheduler<u32> = Scheduler::new();
        let b1 = s.register_bucket(1);
        let b2 = s.register_bucket(2);
        let h1 = std::thread::spawn(move || b1.request_task());
        std::thread::sleep(Duration::from_millis(80));
        let h2 = std::thread::spawn(move || b2.request_task());
        std::thread::sleep(Duration::from_millis(80));
        s.submit(10);
        s.submit(20);
        assert_eq!(h1.join().unwrap(), Some((0, 10)));
        assert_eq!(h2.join().unwrap(), Some((1, 20)));
        assert_eq!(s.stats().assignment_log, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn no_task_lost_under_contention() {
        let s: Scheduler<u64> = Scheduler::new();
        let n_tasks = 200u64;
        let n_buckets = 8;
        let done: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let workers: Vec<_> = (0..n_buckets)
            .map(|i| {
                let b = s.register_bucket(i);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    while let Some((_, t)) = b.request_task() {
                        done.lock().push(t);
                    }
                })
            })
            .collect();
        for i in 0..n_tasks {
            s.submit(i);
        }
        // Wait for the queue to drain, then close.
        while s.stats().tasks_assigned < n_tasks {
            std::thread::sleep(Duration::from_millis(10));
        }
        s.close();
        for w in workers {
            w.join().unwrap();
        }
        let mut got = done.lock().clone();
        got.sort_unstable();
        assert_eq!(got, (0..n_tasks).collect::<Vec<_>>());
    }

    #[test]
    fn close_releases_parked_buckets() {
        let s: Scheduler<u32> = Scheduler::new();
        let b = s.register_bucket(1);
        let h = std::thread::spawn(move || b.request_task());
        std::thread::sleep(Duration::from_millis(50));
        s.close();
        assert_eq!(h.join().unwrap(), None);
        // Post-close requests return None immediately.
        let b2 = s.register_bucket(2);
        assert_eq!(b2.request_task(), None);
    }

    #[test]
    fn timeout_withdraws_bucket() {
        let s: Scheduler<u32> = Scheduler::new();
        let b = s.register_bucket(1);
        assert_eq!(b.request_task_timeout(Duration::from_millis(30)), None);
        // The bucket is no longer parked: a submitted task stays queued.
        s.submit(5);
        assert_eq!(s.queue_depth(), 1);
        // And can still be fetched later.
        assert_eq!(b.request_task(), Some((0, 5)));
    }

    #[test]
    fn queue_depth_high_water_mark() {
        let s: Scheduler<u32> = Scheduler::new();
        for i in 0..5 {
            s.submit(i);
        }
        let b = s.register_bucket(0);
        for _ in 0..5 {
            b.request_task().unwrap();
        }
        assert_eq!(s.stats().max_queue_depth, 5);
        assert_eq!(s.queue_depth(), 0);
    }

    #[test]
    #[should_panic]
    fn submit_after_close_panics() {
        let s: Scheduler<u32> = Scheduler::new();
        s.close();
        s.submit(1);
    }

    #[test]
    fn try_submit_after_close_returns_none() {
        let s: Scheduler<u32> = Scheduler::new();
        assert_eq!(s.try_submit(1), Some(0));
        s.close();
        assert!(s.is_closed());
        assert_eq!(s.try_submit(2), None);
        // The pre-close task still drains.
        let b = s.register_bucket(0);
        assert_eq!(b.request_task(), Some((0, 1)));
        assert_eq!(b.request_task(), None);
        assert_eq!(s.stats().tasks_submitted, 1);
    }

    #[test]
    fn timeout_withdraw_never_loses_a_racing_task() {
        // Hammer the withdraw-vs-assign race: one thread polls with a
        // tiny timeout while another submits at adversarial moments. A
        // task sent into the bucket's channel in the window between the
        // recv timeout firing and the withdraw taking the lock must be
        // rescued, never dropped.
        let s: Scheduler<u64> = Scheduler::new();
        let n_tasks = 300u64;
        let consumer = {
            let b = s.register_bucket(0);
            let s = s.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match b.request_task_timeout(Duration::from_micros(50)) {
                        Some((_, t)) => got.push(t),
                        None => {
                            if s.is_closed() {
                                // Rescue anything assigned during close.
                                while let Some((_, t)) = b.request_task_timeout(Duration::ZERO) {
                                    got.push(t);
                                }
                                return got;
                            }
                        }
                    }
                }
            })
        };
        for i in 0..n_tasks {
            s.submit(i);
            if i % 7 == 0 {
                std::thread::sleep(Duration::from_micros(30));
            }
        }
        while s.stats().tasks_assigned < n_tasks {
            std::thread::sleep(Duration::from_millis(5));
        }
        s.close();
        let mut got = consumer.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..n_tasks).collect::<Vec<_>>());
        // Every assignment went to the one bucket, exactly once each.
        assert_eq!(s.stats().tasks_assigned, n_tasks);
    }

    #[test]
    fn close_wakes_all_parked_buckets_promptly() {
        let s: Scheduler<u32> = Scheduler::new();
        let n_buckets = 16;
        let parked: Vec<_> = (0..n_buckets)
            .map(|i| {
                let b = s.register_bucket(i);
                std::thread::spawn(move || {
                    let t0 = std::time::Instant::now();
                    let got = b.request_task();
                    (got, t0.elapsed())
                })
            })
            .collect();
        // Let everyone park, then close.
        std::thread::sleep(Duration::from_millis(100));
        let t_close = std::time::Instant::now();
        s.close();
        for h in parked {
            let (got, _) = h.join().unwrap();
            assert_eq!(got, None);
        }
        // All 16 woke within a bound far below any polling interval.
        assert!(
            t_close.elapsed() < Duration::from_secs(2),
            "parked buckets took {:?} to observe close",
            t_close.elapsed()
        );
    }

    #[test]
    fn requeue_front_preserves_order_and_counts() {
        let s: Scheduler<&'static str> = Scheduler::new();
        s.submit("a");
        s.submit("b");
        let b = s.register_bucket(0);
        let (seq_a, task_a) = b.request_task().unwrap();
        assert_eq!((seq_a, task_a), (0, "a"));
        // Hand-off failed: "a" goes back to the head, ahead of "b".
        s.requeue_front(seq_a, task_a);
        assert_eq!(b.request_task(), Some((0, "a")));
        assert_eq!(b.request_task(), Some((1, "b")));
        let st = s.stats();
        assert_eq!(st.tasks_submitted, 2);
        assert_eq!(st.tasks_requeued, 1);
        assert_eq!(st.tasks_assigned, 3); // "a" twice, "b" once
    }

    #[test]
    fn requeue_after_close_still_drains() {
        let s: Scheduler<u32> = Scheduler::new();
        s.submit(7);
        let b = s.register_bucket(0);
        let (seq, task) = b.request_task().unwrap();
        s.close();
        // The in-flight task's hand-off fails after close; it must still
        // reach the next bucket request rather than vanish.
        s.requeue_front(seq, task);
        assert_eq!(b.request_task(), Some((0, 7)));
        assert_eq!(b.request_task(), None);
    }

    #[test]
    fn requeue_wakes_a_parked_bucket() {
        let s: Scheduler<u32> = Scheduler::new();
        s.submit(1);
        let b0 = s.register_bucket(0);
        let (seq, task) = b0.request_task().unwrap();
        // Another bucket parks with an empty queue...
        let b1 = s.register_bucket(1);
        let h = std::thread::spawn(move || b1.request_task());
        std::thread::sleep(Duration::from_millis(50));
        // ...and the failed hand-off's requeue reaches it directly.
        s.requeue_front(seq, task);
        assert_eq!(h.join().unwrap(), Some((0, 1)));
    }

    #[test]
    fn drain_queued_empties_the_backlog_in_fcfs_order() {
        let s: Scheduler<&'static str> = Scheduler::new();
        s.submit("a");
        s.submit("b");
        s.submit("c");
        assert_eq!(s.drain_queued(), vec![(0, "a"), (1, "b"), (2, "c")]);
        assert_eq!(s.queue_depth(), 0);
        assert!(s.drain_queued().is_empty());
        // The scheduler stays usable: new submissions flow normally.
        s.submit("d");
        let b = s.register_bucket(0);
        assert_eq!(b.request_task(), Some((3, "d")));
    }

    #[test]
    fn reject_new_refuses_at_capacity() {
        let s: Scheduler<u32> = Scheduler::bounded(2, AdmissionPolicy::RejectNew);
        assert_eq!(s.submit_admission(0), Admission::Accepted { seq: 0 });
        assert_eq!(s.submit_admission(1), Admission::Accepted { seq: 1 });
        assert_eq!(s.submit_admission(2), Admission::Rejected);
        assert_eq!(s.try_submit(3), None);
        assert_eq!(s.queue_depth(), 2);
        let st = s.stats();
        assert_eq!(st.tasks_submitted, 2);
        assert_eq!(st.tasks_rejected, 2);
        // Draining one frees a slot.
        let b = s.register_bucket(0);
        assert_eq!(b.request_task(), Some((0, 0)));
        assert_eq!(s.submit_admission(4), Admission::Accepted { seq: 2 });
    }

    #[test]
    fn shed_oldest_evicts_queue_head() {
        let s: Scheduler<u32> = Scheduler::bounded(2, AdmissionPolicy::ShedOldest);
        s.submit(10);
        s.submit(11);
        assert_eq!(
            s.submit_admission(12),
            Admission::AcceptedShed {
                seq: 2,
                shed_seq: 0
            }
        );
        assert_eq!(s.queue_depth(), 2);
        assert_eq!(s.stats().tasks_shed, 1);
        // The freshest two tasks survive, FCFS among them.
        let b = s.register_bucket(0);
        assert_eq!(b.request_task(), Some((1, 11)));
        assert_eq!(b.request_task(), Some((2, 12)));
    }

    #[test]
    fn block_policy_waits_for_space_then_times_out() {
        let s: Scheduler<u32> = Scheduler::bounded(
            1,
            AdmissionPolicy::Block {
                max_wait: Duration::from_millis(100),
            },
        );
        s.submit(1);
        // Nothing frees space: the submitter waits out the deadline.
        let t0 = Instant::now();
        assert_eq!(s.submit_admission(2), Admission::TimedOut);
        assert!(t0.elapsed() >= Duration::from_millis(80));
        assert_eq!(s.stats().tasks_rejected, 1);

        // With a consumer popping, the blocked submitter gets through.
        let s2: Scheduler<u32> = Scheduler::bounded(
            1,
            AdmissionPolicy::Block {
                max_wait: Duration::from_secs(10),
            },
        );
        s2.submit(1);
        let b = s2.register_bucket(0);
        let popper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            b.request_task()
        });
        assert_eq!(s2.submit_admission(2), Admission::Accepted { seq: 1 });
        assert_eq!(popper.join().unwrap(), Some((0, 1)));
    }

    #[test]
    fn block_with_zero_max_wait_returns_immediately() {
        // Regression: an already-elapsed Block deadline must report
        // TimedOut at once — no condvar wait, no capacity re-check spin.
        let s: Scheduler<u32> = Scheduler::bounded(
            1,
            AdmissionPolicy::Block {
                max_wait: Duration::ZERO,
            },
        );
        s.submit(1);
        let t0 = Instant::now();
        assert_eq!(s.submit_admission(2), Admission::TimedOut);
        assert!(
            t0.elapsed() < Duration::from_millis(20),
            "zero max_wait took {:?} to report TimedOut",
            t0.elapsed()
        );
        assert_eq!(s.stats().tasks_rejected, 1);
        // The queue itself is untouched and the scheduler stays usable.
        assert_eq!(s.queue_depth(), 1);
        let b = s.register_bucket(0);
        assert_eq!(b.request_task(), Some((0, 1)));
        assert_eq!(s.submit_admission(3), Admission::Accepted { seq: 1 });
    }

    #[test]
    fn close_wakes_blocked_submitter() {
        let s: Scheduler<u32> = Scheduler::bounded(
            1,
            AdmissionPolicy::Block {
                max_wait: Duration::from_secs(30),
            },
        );
        s.submit(1);
        let s2 = s.clone();
        let h = std::thread::spawn(move || s2.submit_admission(2));
        std::thread::sleep(Duration::from_millis(50));
        let t0 = Instant::now();
        s.close();
        assert_eq!(h.join().unwrap(), Admission::Closed);
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn bounded_queue_never_exceeds_capacity_under_load() {
        // Hammer a capacity-4 queue from many producers while consumers
        // pop slowly; the depth observed at every admission must stay
        // within the bound for both non-blocking policies.
        for policy in [AdmissionPolicy::ShedOldest, AdmissionPolicy::RejectNew] {
            let s: Scheduler<u64> = Scheduler::bounded(4, policy);
            let consumer = {
                let b = s.register_bucket(0);
                let s = s.clone();
                std::thread::spawn(move || loop {
                    match b.request_task_timeout(Duration::from_micros(200)) {
                        Some(_) => {}
                        None if s.is_closed() => return,
                        None => {}
                    }
                })
            };
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let s = s.clone();
                    std::thread::spawn(move || {
                        let mut max_seen = 0;
                        for i in 0..200 {
                            s.submit_admission(p * 1000 + i);
                            max_seen = max_seen.max(s.queue_depth());
                        }
                        max_seen
                    })
                })
                .collect();
            let max_seen = producers
                .into_iter()
                .map(|h| h.join().unwrap())
                .max()
                .unwrap();
            s.close();
            consumer.join().unwrap();
            assert!(
                max_seen <= 4,
                "{policy:?}: queue depth {max_seen} exceeded capacity 4"
            );
            let st = s.stats();
            assert!(
                st.max_queue_depth <= 4,
                "{policy:?}: high-water {} exceeded capacity 4",
                st.max_queue_depth
            );
            // Every submission was either admitted, shed, or rejected.
            assert_eq!(st.tasks_submitted + st.tasks_rejected, 800);
        }
    }

    #[test]
    fn close_vs_submit_race_strands_no_accepted_task() {
        // Regression for the close-ordering bug: close() used to drop
        // the parked buckets' senders *before* draining the queue, so a
        // task accepted just before close could strand while a parked
        // bucket woke empty-handed. Hammer the interleaving: every task
        // whose submission was *accepted* must end up either assigned to
        // a bucket or still drainable after close — never lost.
        for _ in 0..20 {
            let s: Scheduler<u64> = Scheduler::new();
            let consumer = {
                let b = s.register_bucket(0);
                let s = s.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match b.request_task() {
                            Some((_, t)) => got.push(t),
                            None => {
                                // Closed: rescue whatever close() handed
                                // to the queue but not to us.
                                while let Some((_, t)) = b.request_task_timeout(Duration::ZERO) {
                                    got.push(t);
                                }
                                if s.queue_depth() == 0 {
                                    return got;
                                }
                            }
                        }
                    }
                })
            };
            let producer = {
                let s = s.clone();
                std::thread::spawn(move || {
                    let mut accepted = Vec::new();
                    for i in 0..50u64 {
                        match s.submit_admission(i) {
                            Admission::Accepted { .. } => accepted.push(i),
                            _ => break, // closed under us
                        }
                        if i == 25 {
                            std::thread::sleep(Duration::from_micros(100));
                        }
                    }
                    accepted
                })
            };
            // Close at an adversarial moment, mid-submission-burst.
            std::thread::sleep(Duration::from_micros(300));
            s.close();
            let accepted = producer.join().unwrap();
            let mut got = consumer.join().unwrap();
            got.sort_unstable();
            assert_eq!(got, accepted, "an accepted task was stranded by close()");
        }
    }

    // ---------------- tenancy ----------------

    #[test]
    fn drr_shares_follow_weights_under_backlog() {
        // Three backlogged tenants with weights 1:2:4; assignments must
        // interleave in weight proportion, not FCFS by submit order.
        let s: Scheduler<(&'static str, u64)> = Scheduler::new();
        s.register_tenant(&TenantSpec::new("a").with_weight(1));
        s.register_tenant(&TenantSpec::new("b").with_weight(2));
        s.register_tenant(&TenantSpec::new("c").with_weight(4));
        // Tenant a submits its whole backlog first — under plain FCFS it
        // would monopolize the first 70 assignments.
        for t in ["a", "b", "c"] {
            for i in 0..70u64 {
                assert!(s.submit_admission_as(t, (t, i)).seq().is_some());
            }
        }
        let b = s.register_bucket(0);
        // Pop one full DRR cycle worth (1+2+4)*10 = 70 tasks while every
        // tenant still has backlog.
        let mut counts = std::collections::HashMap::new();
        for _ in 0..70 {
            let (_, (t, _)) = b.request_task().unwrap();
            *counts.entry(t).or_insert(0u64) += 1;
        }
        assert_eq!(counts["a"], 10, "{counts:?}");
        assert_eq!(counts["b"], 20, "{counts:?}");
        assert_eq!(counts["c"], 40, "{counts:?}");
        // Within a tenant, order is FCFS.
        let snap = s.tenant_stats();
        let names: Vec<&str> = snap.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec![DEFAULT_TENANT, "a", "b", "c"]);
    }

    #[test]
    fn single_tenant_is_plain_fcfs() {
        // A registered-but-sole tenant behaves exactly like the default:
        // strict submit order.
        let s: Scheduler<u64> = Scheduler::new();
        s.register_tenant(&TenantSpec::new("only").with_weight(3));
        for i in 0..20 {
            s.submit_admission_as("only", i);
        }
        let b = s.register_bucket(0);
        for i in 0..20 {
            assert_eq!(b.request_task().unwrap().1, i);
        }
    }

    #[test]
    fn task_quota_enforced_per_tenant() {
        let s: Scheduler<u64> = Scheduler::new();
        s.register_tenant(&TenantSpec::new("small").with_task_quota(2));
        assert!(s.submit_admission_as("small", 0).seq().is_some());
        assert!(s.submit_admission_as("small", 1).seq().is_some());
        // Over quota: global policy (RejectNew) refuses.
        assert_eq!(s.submit_admission_as("small", 2), Admission::Rejected);
        // An unrelated tenant is unaffected.
        assert!(s.submit_admission_as("big", 3).seq().is_some());
        let snap = s.tenant_stats();
        let small = snap.iter().find(|t| t.name == "small").unwrap();
        assert_eq!(small.stats.tasks_submitted, 2);
        assert_eq!(small.stats.tasks_rejected, 1);
        assert_eq!(small.queued, 2);
    }

    #[test]
    fn tenant_policy_override_sheds_own_oldest_only() {
        let s: Scheduler<(&'static str, u64)> = Scheduler::new();
        s.register_tenant(
            &TenantSpec::new("shedder")
                .with_task_quota(2)
                .with_policy(AdmissionPolicy::ShedOldest),
        );
        s.submit_admission_as("victim?", ("victim?", 0));
        let s0 = s
            .submit_admission_as("shedder", ("shedder", 0))
            .seq()
            .unwrap();
        s.submit_admission_as("shedder", ("shedder", 1));
        // Over its quota, the shedder evicts its OWN oldest (seq s0),
        // never the other tenant's task.
        match s.submit_admission_as("shedder", ("shedder", 2)) {
            Admission::AcceptedShed { shed_seq, .. } => assert_eq!(shed_seq, s0),
            v => panic!("expected AcceptedShed, got {v:?}"),
        }
        assert_eq!(s.queue_depth(), 3);
        let snap = s.tenant_stats();
        assert_eq!(snap.iter().find(|t| t.name == "victim?").unwrap().queued, 1);
        assert_eq!(
            snap.iter()
                .find(|t| t.name == "shedder")
                .unwrap()
                .stats
                .tasks_shed,
            1
        );
    }

    #[test]
    fn tenant_block_quota_respects_deadline_and_release() {
        let s: Scheduler<u64> = Scheduler::new();
        s.register_tenant(&TenantSpec::new("blocked").with_task_quota(1).with_policy(
            AdmissionPolicy::Block {
                max_wait: Duration::from_millis(80),
            },
        ));
        s.submit_admission_as("blocked", 0);
        // Deadline elapses: TimedOut.
        let t0 = Instant::now();
        assert_eq!(s.submit_admission_as("blocked", 1), Admission::TimedOut);
        assert!(t0.elapsed() >= Duration::from_millis(60));
        // A consumer freeing the tenant's slot unblocks the submitter.
        let b = s.register_bucket(0);
        let h = std::thread::spawn({
            let s = s.clone();
            move || s.submit_admission_as("blocked", 2)
        });
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.request_task().is_some());
        assert!(h.join().unwrap().seq().is_some());
    }

    #[test]
    fn requeue_lands_back_in_its_tenant_queue_first() {
        let s: Scheduler<(&'static str, u64)> = Scheduler::new();
        s.register_tenant(&TenantSpec::new("x"));
        s.register_tenant(&TenantSpec::new("y"));
        s.submit_admission_as("x", ("x", 0));
        s.submit_admission_as("y", ("y", 0));
        let b = s.register_bucket(0);
        let (seq, task) = b.request_task().unwrap();
        assert_eq!(task.0, "x");
        // Failed hand-off: x's task must be the next assignment again,
        // ahead of y's, and still be attributed to tenant x.
        s.requeue_front(seq, task);
        let (seq2, task2) = b.request_task().unwrap();
        assert_eq!((seq2, task2.0), (seq, "x"));
        assert_eq!(b.request_task().unwrap().1 .0, "y");
        let snap = s.tenant_stats();
        assert_eq!(
            snap.iter()
                .find(|t| t.name == "x")
                .unwrap()
                .stats
                .tasks_requeued,
            1
        );
    }

    #[test]
    fn drain_queued_labeled_preserves_tenants() {
        let s: Scheduler<u64> = Scheduler::new();
        s.submit_admission_as("p", 10);
        s.submit_admission_as("q", 11);
        s.submit_admission_as("p", 12);
        let drained = s.drain_queued_labeled();
        assert_eq!(
            drained,
            vec![
                ("p".into(), 0, 10),
                ("q".into(), 1, 11),
                ("p".into(), 2, 12)
            ]
        );
        assert_eq!(s.queue_depth(), 0);
        // Resubmission under the same tenants keeps the accounting.
        for (tenant, _, task) in drained {
            assert!(s.submit_admission_as(&tenant, task).seq().is_some());
        }
        let snap = s.tenant_stats();
        assert_eq!(
            snap.iter()
                .find(|t| t.name == "p")
                .unwrap()
                .stats
                .tasks_submitted,
            4
        );
    }

    #[test]
    fn tenant_conservation_under_churn() {
        // admitted − assigned-and-acked − shed = queued, per tenant, at
        // every quiescent point.
        let s: Scheduler<(usize, u64)> = Scheduler::new();
        for t in 0..4 {
            s.register_tenant(
                &TenantSpec::new(format!("t{t}"))
                    .with_weight(t as u32 + 1)
                    .with_task_quota(8)
                    .with_policy(AdmissionPolicy::ShedOldest),
            );
        }
        let mut admitted = [0u64; 4];
        let mut shed = [0u64; 4];
        for i in 0..200u64 {
            let t = (i % 4) as usize;
            match s.submit_admission_as(&format!("t{t}"), (t, i)) {
                Admission::Accepted { .. } => admitted[t] += 1,
                Admission::AcceptedShed { .. } => {
                    admitted[t] += 1;
                    shed[t] += 1; // own-oldest shed: same tenant
                }
                _ => {}
            }
        }
        let b = s.register_bucket(0);
        let mut popped = [0u64; 4];
        while let Some((_, (t, _))) = b.request_task_timeout(Duration::ZERO) {
            popped[t] += 1;
        }
        let snap = s.tenant_stats();
        for t in 0..4 {
            let row = snap.iter().find(|r| r.name == format!("t{t}")).unwrap();
            assert_eq!(row.stats.tasks_submitted, admitted[t], "t{t} admitted");
            assert_eq!(row.stats.tasks_shed, shed[t], "t{t} shed");
            assert_eq!(row.stats.tasks_assigned, popped[t], "t{t} assigned");
            assert_eq!(
                row.stats.tasks_submitted - row.stats.tasks_shed,
                row.stats.tasks_assigned,
                "t{t} conservation"
            );
            assert_eq!(row.queued, 0);
        }
    }

    // ---------------- bucket pool ----------------

    #[test]
    fn hinted_submission_under_fcfs_is_byte_identical() {
        // A residency hint must be a pure no-op with the default
        // placement: same verdicts, same sequence numbers, same
        // assignment order as the unhinted verb, and no bytes credited.
        let s: Scheduler<u32> = Scheduler::new();
        let hint = ResidencyHint::single("somewhere", 1 << 20);
        assert_eq!(
            s.submit_admission_hinted_as(DEFAULT_TENANT, 10, Some(hint.clone())),
            Admission::Accepted { seq: 0 }
        );
        assert_eq!(
            s.submit_admission_hinted_as(DEFAULT_TENANT, 11, Some(hint)),
            Admission::Accepted { seq: 1 }
        );
        let b = s.register_bucket_at(4, Some("elsewhere"));
        assert_eq!(b.request_task(), Some((0, 10)));
        assert_eq!(b.request_task(), Some((1, 11)));
        let st = s.stats();
        assert_eq!(st.locality_bytes_saved, 0);
        assert_eq!(st.assignment_log, vec![(0, 4), (1, 4)]);
    }

    #[test]
    fn locality_placement_steers_to_colocated_bucket() {
        let s: Scheduler<u32> = Scheduler::new();
        s.set_placement(Arc::new(crate::pool::LocalityPlacement));
        assert_eq!(s.placement_name(), "locality");
        let b1 = s.register_bucket_at(1, Some("m0"));
        let b2 = s.register_bucket_at(2, Some("m1"));
        // Park bucket 1 first, bucket 2 second (FCFS order 1 then 2).
        let h1 = std::thread::spawn(move || b1.request_task());
        std::thread::sleep(Duration::from_millis(80));
        let h2 = std::thread::spawn(move || b2.request_task());
        std::thread::sleep(Duration::from_millis(80));
        // Hinted at m1: skips the free-list head (bucket 1 at m0) and
        // lands on the co-located bucket 2, crediting the saved bytes.
        let hint = ResidencyHint::single("m1", 4096);
        assert!(s
            .submit_admission_hinted_as(DEFAULT_TENANT, 7, Some(hint))
            .seq()
            .is_some());
        assert_eq!(h2.join().unwrap(), Some((0, 7)));
        // An unhinted task falls back to FCFS: bucket 1.
        s.submit(9);
        assert_eq!(h1.join().unwrap(), Some((1, 9)));
        let st = s.stats();
        assert_eq!(st.assignment_log, vec![(0, 2), (1, 1)]);
        assert_eq!(st.locality_bytes_saved, 4096);
    }

    #[test]
    fn begin_drain_retires_parked_and_busy_buckets() {
        let s: Scheduler<u32> = Scheduler::new();
        // Parked bucket: wakes with Retire at once.
        let b = s.register_bucket(5);
        let h = std::thread::spawn(move || b.poll_task(None));
        std::thread::sleep(Duration::from_millis(50));
        assert!(s.begin_drain(5));
        assert_eq!(h.join().unwrap(), Lease::Retire);
        // Busy bucket: finishes its task, retires on the next poll even
        // with work queued — the backlog goes to live buckets only.
        s.submit(1);
        let b2 = s.register_bucket(6);
        assert!(matches!(b2.poll_task(None), Lease::Assigned { .. }));
        assert!(s.begin_drain(6));
        s.submit(2);
        assert_eq!(b2.poll_task(Some(Duration::ZERO)), Lease::Retire);
        // Draining an already-retired bucket is a no-op.
        assert!(!s.begin_drain(6));
        // The queued task reaches a live bucket, not the retired one.
        let b3 = s.register_bucket(7);
        assert_eq!(b3.request_task(), Some((1, 2)));
        let snap = s.pool_snapshot();
        assert_eq!(snap.buckets, 1); // only bucket 7 remains live
        assert_eq!(snap.queue_depth, 0);
    }

    #[test]
    fn pool_snapshot_tracks_depth_and_idle() {
        let s: Scheduler<u32> = Scheduler::new();
        for i in 0..3 {
            s.submit(i);
        }
        let snap = s.pool_snapshot();
        assert_eq!(snap.queue_depth, 3);
        assert_eq!(snap.idle, 0);
        assert_eq!(snap.buckets, 0);
        let b = s.register_bucket(0);
        for _ in 0..3 {
            b.request_task().unwrap();
        }
        let snap = s.pool_snapshot();
        assert_eq!(snap.queue_depth, 0);
        assert_eq!(snap.buckets, 1);
        // p99 of three near-instant assignments is tiny but recorded.
        assert!(snap.p99_wait < Duration::from_secs(1));
        // Target is plumbed through.
        assert_eq!(s.pool_target(), None);
        s.set_pool_target(Some(4));
        assert_eq!(s.pool_target(), Some(4));
    }

    #[test]
    fn drain_one_bucket_prefers_idle_and_spares_the_fcfs_head() {
        let s: Scheduler<u32> = Scheduler::new();
        let b1 = s.register_bucket(1);
        let b2 = s.register_bucket(2);
        let h1 = std::thread::spawn(move || b1.poll_task(None));
        std::thread::sleep(Duration::from_millis(80));
        let h2 = std::thread::spawn(move || b2.poll_task(None));
        std::thread::sleep(Duration::from_millis(80));
        // The most recently parked bucket (2) is drained; the head of
        // the FCFS list (1) keeps serving.
        assert_eq!(s.drain_one_bucket(), Some(2));
        assert_eq!(h2.join().unwrap(), Lease::Retire);
        s.submit(42);
        assert_eq!(h1.join().unwrap(), Lease::Assigned { seq: 0, task: 42 });
    }
}
