//! The in-transit task scheduler: data-ready / bucket-ready events, a
//! free-bucket list, and first-come-first-served assignment.
//!
//! The model follows the paper's Fig. 5 exactly:
//!
//! 1. An in-situ computation finishing a timestep notifies the scheduler
//!    of a **data-ready** event by inserting a task descriptor (what to
//!    run, on which data regions) into the task queue.
//! 2. A staging-area bucket (one core of a staging node) with nothing to
//!    do sends a **bucket-ready** request and parks on its own channel.
//! 3. Whenever both a task and a free bucket exist, the scheduler pops
//!    both (FCFS on each side) and hands the task to the bucket, which
//!    then *pulls* the data it needs directly from the producers.
//!
//! The pull-based design means a slow analysis simply keeps its bucket
//! busy longer while other buckets absorb subsequent timesteps — the
//! temporal multiplexing that decouples analysis latency from simulation
//! cadence.
//!
//! The queue can be **bounded**: the paper assumes the staging area
//! keeps up with the simulation, but a production deployment must
//! decide what happens when it does not. [`Scheduler::bounded`] attaches
//! a capacity and an [`AdmissionPolicy`] — block the producer (with a
//! deadline), shed the oldest queued task, or reject the new one — and
//! [`Scheduler::submit_admission`] reports the verdict so producers can
//! degrade gracefully instead of growing an unbounded backlog.

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifies a staging bucket.
pub type BucketId = u32;

/// What a bounded scheduler does with a submission that finds the queue
/// at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// Apply backpressure: block the submitter until space frees up, at
    /// most `max_wait`, then report [`Admission::TimedOut`].
    Block {
        /// Longest a submission may wait for queue space.
        max_wait: Duration,
    },
    /// Evict the oldest queued task to make room — freshest data wins,
    /// matching the driver's ring-buffer back-pressure semantics.
    ShedOldest,
    /// Refuse the new task and tell the producer, which can then run
    /// the aggregation in-situ instead.
    RejectNew,
}

/// The verdict of [`Scheduler::submit_admission`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Enqueued (or handed straight to a parked bucket).
    Accepted {
        /// Sequence number of the admitted task.
        seq: u64,
    },
    /// Enqueued after evicting the oldest queued task
    /// ([`AdmissionPolicy::ShedOldest`]).
    AcceptedShed {
        /// Sequence number of the admitted task.
        seq: u64,
        /// Sequence number of the task that was shed to make room.
        shed_seq: u64,
    },
    /// Refused: the queue is full ([`AdmissionPolicy::RejectNew`]).
    Rejected,
    /// Refused: the queue stayed full past the blocking deadline
    /// ([`AdmissionPolicy::Block`]).
    TimedOut,
    /// Refused: the scheduler is closed.
    Closed,
}

impl Admission {
    /// The admitted task's sequence number, if it was admitted.
    pub fn seq(&self) -> Option<u64> {
        match self {
            Admission::Accepted { seq } | Admission::AcceptedShed { seq, .. } => Some(*seq),
            _ => None,
        }
    }
}

/// Scheduler counters and the assignment log.
#[derive(Debug, Clone, Default)]
pub struct SchedStats {
    /// Tasks enqueued so far.
    pub tasks_submitted: u64,
    /// Tasks assigned so far (a requeued task counts once per
    /// assignment).
    pub tasks_assigned: u64,
    /// Tasks put back at the head of the queue after a failed hand-off
    /// (e.g. a remote bucket's connection died before acknowledging).
    pub tasks_requeued: u64,
    /// Log of `(task_seq, bucket)` assignments in order.
    pub assignment_log: Vec<(u64, BucketId)>,
    /// High-water mark of the task queue (backlog indicator: when this
    /// grows across timesteps, the staging area is undersized for the
    /// requested analysis frequency).
    pub max_queue_depth: usize,
    /// Queued tasks evicted to admit newer ones
    /// ([`AdmissionPolicy::ShedOldest`]).
    pub tasks_shed: u64,
    /// Submissions refused at capacity ([`AdmissionPolicy::RejectNew`],
    /// or [`AdmissionPolicy::Block`] deadlines that elapsed).
    pub tasks_rejected: u64,
}

/// Live observability handles, resolved once from the global
/// [`sitra_obs`] registry. The queue-depth gauge is set at exactly the
/// same mutation points as `SchedStats::max_queue_depth`, so the
/// gauge's high-water mark and the stats field always agree.
struct SchedObs {
    queue_depth: sitra_obs::Gauge,
    submitted: sitra_obs::Counter,
    assigned: sitra_obs::Counter,
    requeued: sitra_obs::Counter,
    shed: sitra_obs::Counter,
    rejected: sitra_obs::Counter,
    task_wait: sitra_obs::Histogram,
    bucket_idle: sitra_obs::Histogram,
    backpressure_wait: sitra_obs::Histogram,
}

impl SchedObs {
    fn resolve() -> Self {
        let reg = sitra_obs::global();
        SchedObs {
            queue_depth: reg.gauge("sched.queue.depth"),
            submitted: reg.counter("sched.tasks.submitted"),
            assigned: reg.counter("sched.tasks.assigned"),
            requeued: reg.counter("sched.tasks.requeued"),
            shed: reg.counter("sched.tasks.shed"),
            rejected: reg.counter("sched.tasks.rejected"),
            task_wait: reg.histogram("sched.task.wait_ns"),
            bucket_idle: reg.histogram("sched.bucket.idle_ns"),
            backpressure_wait: reg.histogram("sched.backpressure.wait_ns"),
        }
    }
}

struct Inner<T> {
    // Each entry remembers when it was (re)enqueued so assignment can
    // record the task's queue-wait latency.
    queue: VecDeque<(u64, T, Instant)>,
    free_buckets: VecDeque<(BucketId, Sender<(u64, T)>)>,
    stats: SchedStats,
    next_seq: u64,
    closed: bool,
    capacity: Option<usize>,
    policy: AdmissionPolicy,
    obs: SchedObs,
}

struct Shared<T> {
    mu: Mutex<Inner<T>>,
    // Signalled whenever queue space frees up (a task popped) or the
    // scheduler closes, so Block-policy submitters can wake.
    freed: Condvar,
}

/// A generic FCFS pull scheduler over task payloads `T`.
pub struct Scheduler<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Scheduler<T> {
    fn clone(&self) -> Self {
        Self {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T: Send + 'static> Default for Scheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send + 'static> Scheduler<T> {
    /// An empty, unbounded scheduler.
    pub fn new() -> Self {
        Self::with_limit(None, AdmissionPolicy::RejectNew)
    }

    /// An empty scheduler whose queue holds at most `capacity` tasks;
    /// `policy` decides what a submission at capacity does.
    pub fn bounded(capacity: usize, policy: AdmissionPolicy) -> Self {
        Self::with_limit(Some(capacity.max(1)), policy)
    }

    fn with_limit(capacity: Option<usize>, policy: AdmissionPolicy) -> Self {
        Self {
            shared: Arc::new(Shared {
                mu: Mutex::new(Inner {
                    queue: VecDeque::new(),
                    free_buckets: VecDeque::new(),
                    stats: SchedStats::default(),
                    next_seq: 0,
                    closed: false,
                    capacity,
                    policy,
                    obs: SchedObs::resolve(),
                }),
                freed: Condvar::new(),
            }),
        }
    }

    /// The queue capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.shared.mu.lock().capacity
    }

    /// The admission policy applied at capacity.
    pub fn policy(&self) -> AdmissionPolicy {
        self.shared.mu.lock().policy
    }

    /// Data-ready: enqueue a task. Returns its sequence number. If a
    /// bucket is parked, the task is handed over immediately.
    pub fn submit(&self, task: T) -> u64 {
        match self.submit_admission(task) {
            Admission::Accepted { seq } | Admission::AcceptedShed { seq, .. } => seq,
            Admission::Closed => panic!("scheduler closed"),
            verdict => panic!("task not admitted: {verdict:?}"),
        }
    }

    fn drain(shared: &Shared<T>, g: &mut Inner<T>) {
        let popped = !g.queue.is_empty() && !g.free_buckets.is_empty();
        while !g.queue.is_empty() && !g.free_buckets.is_empty() {
            let (seq, task, enqueued) = g.queue.pop_front().unwrap();
            let (bucket, tx) = g.free_buckets.pop_front().unwrap();
            g.stats.tasks_assigned += 1;
            g.stats.assignment_log.push((seq, bucket));
            g.obs.assigned.inc();
            g.obs.task_wait.observe(enqueued.elapsed());
            // A dropped bucket loses the task; buckets park before
            // dropping only via close(), so this send always succeeds in
            // practice.
            let _ = tx.send((seq, task));
        }
        g.obs.queue_depth.set(g.queue.len() as i64);
        if popped {
            shared.freed.notify_all();
        }
    }

    /// Data-ready without the panic: like [`Self::submit`] but returns
    /// `None` when the task is not admitted (scheduler closed, or a
    /// bounded queue refused it), for callers where a late submission is
    /// an error to report, not a bug to crash on.
    pub fn try_submit(&self, task: T) -> Option<u64> {
        self.submit_admission(task).seq()
    }

    /// Data-ready with an explicit admission verdict: enqueue the task,
    /// applying the scheduler's [`AdmissionPolicy`] when the queue is at
    /// capacity. This is the verb the remote protocol surfaces so
    /// producers learn *why* a submission was refused (and which task
    /// was shed) instead of a bare failure.
    pub fn submit_admission(&self, task: T) -> Admission {
        let mut g = self.shared.mu.lock();
        if g.closed {
            return Admission::Closed;
        }
        let mut shed_seq = None;
        if let Some(cap) = g.capacity {
            if g.queue.len() >= cap {
                match g.policy {
                    AdmissionPolicy::RejectNew => {
                        g.stats.tasks_rejected += 1;
                        g.obs.rejected.inc();
                        return Admission::Rejected;
                    }
                    AdmissionPolicy::ShedOldest => {
                        let (seq, _, _) = g.queue.pop_front().unwrap();
                        g.stats.tasks_shed += 1;
                        g.obs.shed.inc();
                        sitra_obs::emit("sched", "task.shed", &[("seq", seq.to_string())]);
                        shed_seq = Some(seq);
                    }
                    AdmissionPolicy::Block { max_wait } => {
                        let t0 = Instant::now();
                        let deadline = t0 + max_wait;
                        while g.queue.len() >= cap && !g.closed {
                            let left = deadline.saturating_duration_since(Instant::now());
                            if left.is_zero() {
                                break;
                            }
                            self.shared.freed.wait_for(&mut g, left);
                        }
                        g.obs.backpressure_wait.observe(t0.elapsed());
                        if g.closed {
                            return Admission::Closed;
                        }
                        if g.queue.len() >= cap {
                            g.stats.tasks_rejected += 1;
                            g.obs.rejected.inc();
                            return Admission::TimedOut;
                        }
                    }
                }
            }
        }
        let seq = g.next_seq;
        g.next_seq += 1;
        g.stats.tasks_submitted += 1;
        g.obs.submitted.inc();
        g.queue.push_back((seq, task, Instant::now()));
        let depth = g.queue.len();
        g.stats.max_queue_depth = g.stats.max_queue_depth.max(depth);
        g.obs.queue_depth.set(depth as i64);
        Self::drain(&self.shared, &mut g);
        match shed_seq {
            Some(shed) => Admission::AcceptedShed {
                seq,
                shed_seq: shed,
            },
            None => Admission::Accepted { seq },
        }
    }

    /// Whether [`Self::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.shared.mu.lock().closed
    }

    /// Put an assigned task back at the *head* of the queue, keeping
    /// its original sequence number: the hand-off to a bucket failed
    /// (its connection died before acknowledging receipt) and the task
    /// must go to the next free bucket instead of being lost. Works
    /// even after [`Self::close`] so in-flight tasks drain, and bypasses
    /// the admission policy — an in-flight task was already admitted
    /// once and must never be the one to lose out.
    pub fn requeue_front(&self, seq: u64, task: T) {
        let mut g = self.shared.mu.lock();
        g.stats.tasks_requeued += 1;
        g.obs.requeued.inc();
        // The wait clock restarts: the latency being measured is
        // time-in-queue, and a requeued task re-enters the queue now.
        g.queue.push_front((seq, task, Instant::now()));
        let depth = g.queue.len();
        g.stats.max_queue_depth = g.stats.max_queue_depth.max(depth);
        g.obs.queue_depth.set(depth as i64);
        Self::drain(&self.shared, &mut g);
    }

    /// Remove and return every queued (not yet assigned) task in FCFS
    /// order. This is the graceful-leave primitive: a cluster member
    /// shutting down drains its backlog and re-submits the tasks on the
    /// surviving members instead of stranding them behind a closed
    /// scheduler. In-flight (assigned but unacknowledged) tasks are not
    /// touched — their two-phase hand-off already guarantees requeue or
    /// completion.
    pub fn drain_queued(&self) -> Vec<(u64, T)> {
        let mut g = self.shared.mu.lock();
        let drained: Vec<(u64, T)> = g.queue.drain(..).map(|(seq, t, _)| (seq, t)).collect();
        g.obs.queue_depth.set(0);
        // Queue space freed: wake any Block-policy submitters.
        self.shared.freed.notify_all();
        drained
    }

    /// Register a bucket and get its handle.
    pub fn register_bucket(&self, id: BucketId) -> BucketHandle<T> {
        BucketHandle {
            id,
            sched: self.clone(),
        }
    }

    /// Close the scheduler: no further submissions; parked and future
    /// bucket requests return `None` once the queue drains.
    pub fn close(&self) {
        let mut g = self.shared.mu.lock();
        // Drain *before* dropping the parked buckets' senders: a task
        // submitted just before close must reach a bucket that is
        // already parked rather than strand in the queue while that
        // bucket wakes empty-handed and gives up.
        Self::drain(&self.shared, &mut g);
        g.closed = true;
        // Wake remaining parked buckets with nothing: drop their senders.
        g.free_buckets.clear();
        // And wake Block-policy submitters so they observe the close.
        self.shared.freed.notify_all();
    }

    /// Snapshot of the statistics.
    pub fn stats(&self) -> SchedStats {
        self.shared.mu.lock().stats.clone()
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        self.shared.mu.lock().queue.len()
    }
}

/// A staging bucket's connection to the scheduler.
pub struct BucketHandle<T> {
    id: BucketId,
    sched: Scheduler<T>,
}

impl<T: Send + 'static> BucketHandle<T> {
    /// This bucket's id.
    pub fn id(&self) -> BucketId {
        self.id
    }

    /// Bucket-ready: request the next task, blocking until one is
    /// assigned or the scheduler is closed with an empty queue (then
    /// `None`). FCFS on both the task queue and the bucket list.
    pub fn request_task(&self) -> Option<(u64, T)> {
        let t_ready = Instant::now();
        let rx: Receiver<(u64, T)> = {
            let mut g = self.sched.shared.mu.lock();
            if let Some((seq, task, enqueued)) = g.queue.pop_front() {
                g.stats.tasks_assigned += 1;
                g.stats.assignment_log.push((seq, self.id));
                g.obs.assigned.inc();
                g.obs.task_wait.observe(enqueued.elapsed());
                g.obs.bucket_idle.observe(t_ready.elapsed());
                g.obs.queue_depth.set(g.queue.len() as i64);
                self.sched.shared.freed.notify_all();
                return Some((seq, task));
            }
            if g.closed {
                return None;
            }
            let (tx, rx) = bounded(1);
            g.free_buckets.push_back((self.id, tx));
            rx
        };
        // Park until a task (sender dropped => closed).
        let got = rx.recv().ok();
        if got.is_some() {
            self.sched
                .shared
                .mu
                .lock()
                .obs
                .bucket_idle
                .observe(t_ready.elapsed());
        }
        got
    }

    /// Like [`Self::request_task`] but gives up after `timeout`. A timed
    /// out request withdraws the bucket from the free list.
    pub fn request_task_timeout(&self, timeout: Duration) -> Option<(u64, T)> {
        let t_ready = Instant::now();
        let rx: Receiver<(u64, T)> = {
            let mut g = self.sched.shared.mu.lock();
            if let Some((seq, task, enqueued)) = g.queue.pop_front() {
                g.stats.tasks_assigned += 1;
                g.stats.assignment_log.push((seq, self.id));
                g.obs.assigned.inc();
                g.obs.task_wait.observe(enqueued.elapsed());
                g.obs.bucket_idle.observe(t_ready.elapsed());
                g.obs.queue_depth.set(g.queue.len() as i64);
                self.sched.shared.freed.notify_all();
                return Some((seq, task));
            }
            if g.closed {
                return None;
            }
            let (tx, rx) = bounded(1);
            g.free_buckets.push_back((self.id, tx));
            rx
        };
        match rx.recv_timeout(timeout) {
            Ok(t) => {
                self.sched
                    .shared
                    .mu
                    .lock()
                    .obs
                    .bucket_idle
                    .observe(t_ready.elapsed());
                Some(t)
            }
            Err(_) => {
                // Withdraw (if still parked) so a future task is not sent
                // into the void.
                let mut g = self.sched.shared.mu.lock();
                g.free_buckets.retain(|(id, _)| *id != self.id);
                // A task may have raced in between timeout and lock: it
                // would already be in rx.
                rx.try_recv().ok()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_assignment_when_task_waiting() {
        let s: Scheduler<&'static str> = Scheduler::new();
        s.submit("t0");
        let b = s.register_bucket(1);
        assert_eq!(b.request_task(), Some((0, "t0")));
        let st = s.stats();
        assert_eq!(st.tasks_assigned, 1);
        assert_eq!(st.assignment_log, vec![(0, 1)]);
    }

    #[test]
    fn parked_bucket_gets_task_on_submit() {
        let s: Scheduler<u32> = Scheduler::new();
        let b = s.register_bucket(3);
        let s2 = s.clone();
        let h = std::thread::spawn(move || b.request_task());
        std::thread::sleep(Duration::from_millis(50));
        s2.submit(99);
        assert_eq!(h.join().unwrap(), Some((0, 99)));
    }

    #[test]
    fn fcfs_task_order() {
        let s: Scheduler<u64> = Scheduler::new();
        for i in 0..10 {
            s.submit(i);
        }
        let b = s.register_bucket(0);
        for i in 0..10 {
            let (seq, task) = b.request_task().unwrap();
            assert_eq!(seq, i);
            assert_eq!(task, i);
        }
    }

    #[test]
    fn fcfs_bucket_order() {
        // Buckets that parked first are served first.
        let s: Scheduler<u32> = Scheduler::new();
        let b1 = s.register_bucket(1);
        let b2 = s.register_bucket(2);
        let h1 = std::thread::spawn(move || b1.request_task());
        std::thread::sleep(Duration::from_millis(80));
        let h2 = std::thread::spawn(move || b2.request_task());
        std::thread::sleep(Duration::from_millis(80));
        s.submit(10);
        s.submit(20);
        assert_eq!(h1.join().unwrap(), Some((0, 10)));
        assert_eq!(h2.join().unwrap(), Some((1, 20)));
        assert_eq!(s.stats().assignment_log, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn no_task_lost_under_contention() {
        let s: Scheduler<u64> = Scheduler::new();
        let n_tasks = 200u64;
        let n_buckets = 8;
        let done: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let workers: Vec<_> = (0..n_buckets)
            .map(|i| {
                let b = s.register_bucket(i);
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    while let Some((_, t)) = b.request_task() {
                        done.lock().push(t);
                    }
                })
            })
            .collect();
        for i in 0..n_tasks {
            s.submit(i);
        }
        // Wait for the queue to drain, then close.
        while s.stats().tasks_assigned < n_tasks {
            std::thread::sleep(Duration::from_millis(10));
        }
        s.close();
        for w in workers {
            w.join().unwrap();
        }
        let mut got = done.lock().clone();
        got.sort_unstable();
        assert_eq!(got, (0..n_tasks).collect::<Vec<_>>());
    }

    #[test]
    fn close_releases_parked_buckets() {
        let s: Scheduler<u32> = Scheduler::new();
        let b = s.register_bucket(1);
        let h = std::thread::spawn(move || b.request_task());
        std::thread::sleep(Duration::from_millis(50));
        s.close();
        assert_eq!(h.join().unwrap(), None);
        // Post-close requests return None immediately.
        let b2 = s.register_bucket(2);
        assert_eq!(b2.request_task(), None);
    }

    #[test]
    fn timeout_withdraws_bucket() {
        let s: Scheduler<u32> = Scheduler::new();
        let b = s.register_bucket(1);
        assert_eq!(b.request_task_timeout(Duration::from_millis(30)), None);
        // The bucket is no longer parked: a submitted task stays queued.
        s.submit(5);
        assert_eq!(s.queue_depth(), 1);
        // And can still be fetched later.
        assert_eq!(b.request_task(), Some((0, 5)));
    }

    #[test]
    fn queue_depth_high_water_mark() {
        let s: Scheduler<u32> = Scheduler::new();
        for i in 0..5 {
            s.submit(i);
        }
        let b = s.register_bucket(0);
        for _ in 0..5 {
            b.request_task().unwrap();
        }
        assert_eq!(s.stats().max_queue_depth, 5);
        assert_eq!(s.queue_depth(), 0);
    }

    #[test]
    #[should_panic]
    fn submit_after_close_panics() {
        let s: Scheduler<u32> = Scheduler::new();
        s.close();
        s.submit(1);
    }

    #[test]
    fn try_submit_after_close_returns_none() {
        let s: Scheduler<u32> = Scheduler::new();
        assert_eq!(s.try_submit(1), Some(0));
        s.close();
        assert!(s.is_closed());
        assert_eq!(s.try_submit(2), None);
        // The pre-close task still drains.
        let b = s.register_bucket(0);
        assert_eq!(b.request_task(), Some((0, 1)));
        assert_eq!(b.request_task(), None);
        assert_eq!(s.stats().tasks_submitted, 1);
    }

    #[test]
    fn timeout_withdraw_never_loses_a_racing_task() {
        // Hammer the withdraw-vs-assign race: one thread polls with a
        // tiny timeout while another submits at adversarial moments. A
        // task sent into the bucket's channel in the window between the
        // recv timeout firing and the withdraw taking the lock must be
        // rescued, never dropped.
        let s: Scheduler<u64> = Scheduler::new();
        let n_tasks = 300u64;
        let consumer = {
            let b = s.register_bucket(0);
            let s = s.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match b.request_task_timeout(Duration::from_micros(50)) {
                        Some((_, t)) => got.push(t),
                        None => {
                            if s.is_closed() {
                                // Rescue anything assigned during close.
                                while let Some((_, t)) = b.request_task_timeout(Duration::ZERO) {
                                    got.push(t);
                                }
                                return got;
                            }
                        }
                    }
                }
            })
        };
        for i in 0..n_tasks {
            s.submit(i);
            if i % 7 == 0 {
                std::thread::sleep(Duration::from_micros(30));
            }
        }
        while s.stats().tasks_assigned < n_tasks {
            std::thread::sleep(Duration::from_millis(5));
        }
        s.close();
        let mut got = consumer.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..n_tasks).collect::<Vec<_>>());
        // Every assignment went to the one bucket, exactly once each.
        assert_eq!(s.stats().tasks_assigned, n_tasks);
    }

    #[test]
    fn close_wakes_all_parked_buckets_promptly() {
        let s: Scheduler<u32> = Scheduler::new();
        let n_buckets = 16;
        let parked: Vec<_> = (0..n_buckets)
            .map(|i| {
                let b = s.register_bucket(i);
                std::thread::spawn(move || {
                    let t0 = std::time::Instant::now();
                    let got = b.request_task();
                    (got, t0.elapsed())
                })
            })
            .collect();
        // Let everyone park, then close.
        std::thread::sleep(Duration::from_millis(100));
        let t_close = std::time::Instant::now();
        s.close();
        for h in parked {
            let (got, _) = h.join().unwrap();
            assert_eq!(got, None);
        }
        // All 16 woke within a bound far below any polling interval.
        assert!(
            t_close.elapsed() < Duration::from_secs(2),
            "parked buckets took {:?} to observe close",
            t_close.elapsed()
        );
    }

    #[test]
    fn requeue_front_preserves_order_and_counts() {
        let s: Scheduler<&'static str> = Scheduler::new();
        s.submit("a");
        s.submit("b");
        let b = s.register_bucket(0);
        let (seq_a, task_a) = b.request_task().unwrap();
        assert_eq!((seq_a, task_a), (0, "a"));
        // Hand-off failed: "a" goes back to the head, ahead of "b".
        s.requeue_front(seq_a, task_a);
        assert_eq!(b.request_task(), Some((0, "a")));
        assert_eq!(b.request_task(), Some((1, "b")));
        let st = s.stats();
        assert_eq!(st.tasks_submitted, 2);
        assert_eq!(st.tasks_requeued, 1);
        assert_eq!(st.tasks_assigned, 3); // "a" twice, "b" once
    }

    #[test]
    fn requeue_after_close_still_drains() {
        let s: Scheduler<u32> = Scheduler::new();
        s.submit(7);
        let b = s.register_bucket(0);
        let (seq, task) = b.request_task().unwrap();
        s.close();
        // The in-flight task's hand-off fails after close; it must still
        // reach the next bucket request rather than vanish.
        s.requeue_front(seq, task);
        assert_eq!(b.request_task(), Some((0, 7)));
        assert_eq!(b.request_task(), None);
    }

    #[test]
    fn requeue_wakes_a_parked_bucket() {
        let s: Scheduler<u32> = Scheduler::new();
        s.submit(1);
        let b0 = s.register_bucket(0);
        let (seq, task) = b0.request_task().unwrap();
        // Another bucket parks with an empty queue...
        let b1 = s.register_bucket(1);
        let h = std::thread::spawn(move || b1.request_task());
        std::thread::sleep(Duration::from_millis(50));
        // ...and the failed hand-off's requeue reaches it directly.
        s.requeue_front(seq, task);
        assert_eq!(h.join().unwrap(), Some((0, 1)));
    }

    #[test]
    fn drain_queued_empties_the_backlog_in_fcfs_order() {
        let s: Scheduler<&'static str> = Scheduler::new();
        s.submit("a");
        s.submit("b");
        s.submit("c");
        assert_eq!(s.drain_queued(), vec![(0, "a"), (1, "b"), (2, "c")]);
        assert_eq!(s.queue_depth(), 0);
        assert!(s.drain_queued().is_empty());
        // The scheduler stays usable: new submissions flow normally.
        s.submit("d");
        let b = s.register_bucket(0);
        assert_eq!(b.request_task(), Some((3, "d")));
    }

    #[test]
    fn reject_new_refuses_at_capacity() {
        let s: Scheduler<u32> = Scheduler::bounded(2, AdmissionPolicy::RejectNew);
        assert_eq!(s.submit_admission(0), Admission::Accepted { seq: 0 });
        assert_eq!(s.submit_admission(1), Admission::Accepted { seq: 1 });
        assert_eq!(s.submit_admission(2), Admission::Rejected);
        assert_eq!(s.try_submit(3), None);
        assert_eq!(s.queue_depth(), 2);
        let st = s.stats();
        assert_eq!(st.tasks_submitted, 2);
        assert_eq!(st.tasks_rejected, 2);
        // Draining one frees a slot.
        let b = s.register_bucket(0);
        assert_eq!(b.request_task(), Some((0, 0)));
        assert_eq!(s.submit_admission(4), Admission::Accepted { seq: 2 });
    }

    #[test]
    fn shed_oldest_evicts_queue_head() {
        let s: Scheduler<u32> = Scheduler::bounded(2, AdmissionPolicy::ShedOldest);
        s.submit(10);
        s.submit(11);
        assert_eq!(
            s.submit_admission(12),
            Admission::AcceptedShed {
                seq: 2,
                shed_seq: 0
            }
        );
        assert_eq!(s.queue_depth(), 2);
        assert_eq!(s.stats().tasks_shed, 1);
        // The freshest two tasks survive, FCFS among them.
        let b = s.register_bucket(0);
        assert_eq!(b.request_task(), Some((1, 11)));
        assert_eq!(b.request_task(), Some((2, 12)));
    }

    #[test]
    fn block_policy_waits_for_space_then_times_out() {
        let s: Scheduler<u32> = Scheduler::bounded(
            1,
            AdmissionPolicy::Block {
                max_wait: Duration::from_millis(100),
            },
        );
        s.submit(1);
        // Nothing frees space: the submitter waits out the deadline.
        let t0 = Instant::now();
        assert_eq!(s.submit_admission(2), Admission::TimedOut);
        assert!(t0.elapsed() >= Duration::from_millis(80));
        assert_eq!(s.stats().tasks_rejected, 1);

        // With a consumer popping, the blocked submitter gets through.
        let s2: Scheduler<u32> = Scheduler::bounded(
            1,
            AdmissionPolicy::Block {
                max_wait: Duration::from_secs(10),
            },
        );
        s2.submit(1);
        let b = s2.register_bucket(0);
        let popper = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            b.request_task()
        });
        assert_eq!(s2.submit_admission(2), Admission::Accepted { seq: 1 });
        assert_eq!(popper.join().unwrap(), Some((0, 1)));
    }

    #[test]
    fn close_wakes_blocked_submitter() {
        let s: Scheduler<u32> = Scheduler::bounded(
            1,
            AdmissionPolicy::Block {
                max_wait: Duration::from_secs(30),
            },
        );
        s.submit(1);
        let s2 = s.clone();
        let h = std::thread::spawn(move || s2.submit_admission(2));
        std::thread::sleep(Duration::from_millis(50));
        let t0 = Instant::now();
        s.close();
        assert_eq!(h.join().unwrap(), Admission::Closed);
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn bounded_queue_never_exceeds_capacity_under_load() {
        // Hammer a capacity-4 queue from many producers while consumers
        // pop slowly; the depth observed at every admission must stay
        // within the bound for both non-blocking policies.
        for policy in [AdmissionPolicy::ShedOldest, AdmissionPolicy::RejectNew] {
            let s: Scheduler<u64> = Scheduler::bounded(4, policy);
            let consumer = {
                let b = s.register_bucket(0);
                let s = s.clone();
                std::thread::spawn(move || loop {
                    match b.request_task_timeout(Duration::from_micros(200)) {
                        Some(_) => {}
                        None if s.is_closed() => return,
                        None => {}
                    }
                })
            };
            let producers: Vec<_> = (0..4)
                .map(|p| {
                    let s = s.clone();
                    std::thread::spawn(move || {
                        let mut max_seen = 0;
                        for i in 0..200 {
                            s.submit_admission(p * 1000 + i);
                            max_seen = max_seen.max(s.queue_depth());
                        }
                        max_seen
                    })
                })
                .collect();
            let max_seen = producers
                .into_iter()
                .map(|h| h.join().unwrap())
                .max()
                .unwrap();
            s.close();
            consumer.join().unwrap();
            assert!(
                max_seen <= 4,
                "{policy:?}: queue depth {max_seen} exceeded capacity 4"
            );
            let st = s.stats();
            assert!(
                st.max_queue_depth <= 4,
                "{policy:?}: high-water {} exceeded capacity 4",
                st.max_queue_depth
            );
            // Every submission was either admitted, shed, or rejected.
            assert_eq!(st.tasks_submitted + st.tasks_rejected, 800);
        }
    }

    #[test]
    fn close_vs_submit_race_strands_no_accepted_task() {
        // Regression for the close-ordering bug: close() used to drop
        // the parked buckets' senders *before* draining the queue, so a
        // task accepted just before close could strand while a parked
        // bucket woke empty-handed. Hammer the interleaving: every task
        // whose submission was *accepted* must end up either assigned to
        // a bucket or still drainable after close — never lost.
        for _ in 0..20 {
            let s: Scheduler<u64> = Scheduler::new();
            let consumer = {
                let b = s.register_bucket(0);
                let s = s.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match b.request_task() {
                            Some((_, t)) => got.push(t),
                            None => {
                                // Closed: rescue whatever close() handed
                                // to the queue but not to us.
                                while let Some((_, t)) = b.request_task_timeout(Duration::ZERO) {
                                    got.push(t);
                                }
                                if s.queue_depth() == 0 {
                                    return got;
                                }
                            }
                        }
                    }
                })
            };
            let producer = {
                let s = s.clone();
                std::thread::spawn(move || {
                    let mut accepted = Vec::new();
                    for i in 0..50u64 {
                        match s.submit_admission(i) {
                            Admission::Accepted { .. } => accepted.push(i),
                            _ => break, // closed under us
                        }
                        if i == 25 {
                            std::thread::sleep(Duration::from_micros(100));
                        }
                    }
                    accepted
                })
            };
            // Close at an adversarial moment, mid-submission-burst.
            std::thread::sleep(Duration::from_micros(300));
            s.close();
            let accepted = producer.join().unwrap();
            let mut got = consumer.join().unwrap();
            got.sort_unstable();
            assert_eq!(got, accepted, "an accepted task was stranded by close()");
        }
    }
}
