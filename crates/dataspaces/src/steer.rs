//! ISAAC-style steerable visualization endpoint.
//!
//! Matthes et al.'s ISAAC couples a running simulation to live viewers
//! whose feedback steers what the in-situ side renders next. The analog
//! here: a [`SteerServer`] listens on its **own** `sitra-net` endpoint
//! (deliberately separate from the staging RPC protocol, whose request
//! tags are frozen), the staging side [`SteerServer::publish`]es each
//! new visualization frame as a monotonically versioned snapshot, and
//! subscribers pull reduced frames and push steering feedback:
//!
//! * **Subscribe** binds a subscriber name and an initial downsample
//!   `rate` to the connection — re-sent on every reconnect, exactly the
//!   per-connection re-declaration pattern `SetTenant` uses on the
//!   staging protocol.
//! * **NextFrame** blocks until a frame newer than the subscriber's
//!   last is available, then delivers it reduced by the subscriber's
//!   *current* rate (every `rate`-th pixel per axis). Reduction happens
//!   at delivery time, so a frame produced after a feedback ack always
//!   reflects the acked rate — the steer-ack monotonicity oracle.
//! * **Steer** updates the subscriber's rate and is acknowledged; the
//!   ack carries the newest published version, so the client knows any
//!   frame it receives afterwards was reduced under the new rate.
//!
//! Every subscribe/feedback/frame is journaled through `sitra-obs` with
//! enough context that [`replay_steer`] reconstructs the per-subscriber
//! accounting ([`SteerServer::accounting`]) bit-identically — the same
//! replay-identity discipline the pipeline driver holds itself to.

use bytes::{BufMut, Bytes, BytesMut};
use parking_lot::{Condvar, Mutex};
use sitra_net::{
    connect_retry, serve, Addr, Backoff, Connection, Listener, NetError, ServerHandle,
};
use sitra_obs::ObsEvent;
use sitra_viz::Image;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::remote::RemoteError;

// --------------------------------------------------------------------
// Protocol messages (a dedicated frame space: this endpoint is not part
// of the staging RPC protocol and shares no tags with it)
// --------------------------------------------------------------------

const MSG_SUBSCRIBE: u8 = 1;
const MSG_NEXT_FRAME: u8 = 2;
const MSG_STEER: u8 = 3;

const REPLY_SUB_ACK: u8 = 100;
const REPLY_FRAME: u8 = 101;
const REPLY_STEER_ACK: u8 = 102;
const REPLY_NO_FRAME: u8 = 103;
const REPLY_ERROR: u8 = 199;

/// A subscriber-to-server steering message.
#[derive(Debug, Clone, PartialEq)]
pub enum SteerMsg {
    /// Bind this connection to `subscriber` at downsample `rate`
    /// (≥ 1). Must precede any other message, and must be re-sent after
    /// a reconnect.
    Subscribe {
        /// Stable subscriber name (accounting survives reconnects).
        subscriber: String,
        /// Initial downsample rate.
        rate: u32,
    },
    /// Deliver the next frame with a version greater than `after`.
    NextFrame {
        /// The last version this subscriber has seen (0 = none).
        after: u64,
    },
    /// Change this subscriber's downsample rate, effective for every
    /// frame delivered after the ack.
    Steer {
        /// New downsample rate (≥ 1).
        rate: u32,
    },
}

/// A server-to-subscriber reply.
#[derive(Debug, Clone, PartialEq)]
pub enum SteerReply {
    /// Subscription bound at `rate`.
    SubAck {
        /// The bound rate.
        rate: u32,
    },
    /// One reduced frame.
    Frame {
        /// Publication version.
        version: u64,
        /// Rate the frame was reduced under.
        rate: u32,
        /// The reduced image.
        image: Image,
    },
    /// Feedback applied: every later frame reflects `rate`.
    SteerAck {
        /// The acked rate.
        rate: u32,
        /// Newest published version at ack time (frames after it are
        /// necessarily produced under the new rate).
        latest_version: u64,
    },
    /// No frame is coming (server shutting down).
    NoFrame,
    /// The request could not be served.
    Error {
        /// Why.
        reason: String,
    },
}

struct Rd {
    buf: Bytes,
    pos: usize,
}

impl Rd {
    fn new(buf: Bytes) -> Self {
        Rd { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], RemoteError> {
        if self.remaining() < N {
            return Err(RemoteError::Proto("truncated".into()));
        }
        let mut a = [0u8; N];
        a.copy_from_slice(&self.buf[self.pos..self.pos + N]);
        self.pos += N;
        Ok(a)
    }

    fn u8(&mut self) -> Result<u8, RemoteError> {
        Ok(self.array::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32, RemoteError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, RemoteError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn f64(&mut self) -> Result<f64, RemoteError> {
        Ok(f64::from_le_bytes(self.array()?))
    }

    fn string(&mut self) -> Result<String, RemoteError> {
        let n = self.u32()? as usize;
        if self.remaining() < n {
            return Err(RemoteError::Proto("truncated string".into()));
        }
        let raw = self.buf.slice(self.pos..self.pos + n);
        self.pos += n;
        String::from_utf8(raw.to_vec()).map_err(|_| RemoteError::Proto("non-utf8 string".into()))
    }

    fn rate(&mut self) -> Result<u32, RemoteError> {
        let r = self.u32()?;
        if r == 0 {
            return Err(RemoteError::Proto("zero downsample rate".into()));
        }
        Ok(r)
    }

    fn image(&mut self) -> Result<Image, RemoteError> {
        let w = self.u64()? as usize;
        let h = self.u64()? as usize;
        let pixels = w
            .checked_mul(h)
            .ok_or_else(|| RemoteError::Proto("image dims overflow".into()))?;
        if pixels == 0 {
            return Err(RemoteError::Proto("empty image".into()));
        }
        if pixels
            .checked_mul(32)
            .is_none_or(|total| total != self.remaining())
        {
            return Err(RemoteError::Proto("image payload length mismatch".into()));
        }
        let mut img = Image::new(w, h);
        for p in img.pixels_mut() {
            for c in p.iter_mut() {
                *c = self.f64()?;
            }
        }
        Ok(img)
    }

    fn finish(self) -> Result<(), RemoteError> {
        if self.remaining() != 0 {
            return Err(RemoteError::Proto("trailing bytes".into()));
        }
        Ok(())
    }
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

/// Encode a steering message.
pub fn encode_steer_msg(msg: &SteerMsg) -> Bytes {
    let mut buf = BytesMut::new();
    match msg {
        SteerMsg::Subscribe { subscriber, rate } => {
            buf.put_u8(MSG_SUBSCRIBE);
            put_str(&mut buf, subscriber);
            buf.put_u32_le(*rate);
        }
        SteerMsg::NextFrame { after } => {
            buf.put_u8(MSG_NEXT_FRAME);
            buf.put_u64_le(*after);
        }
        SteerMsg::Steer { rate } => {
            buf.put_u8(MSG_STEER);
            buf.put_u32_le(*rate);
        }
    }
    buf.freeze()
}

/// Decode a steering message. Total: never panics on arbitrary bytes.
pub fn decode_steer_msg(frame: Bytes) -> Result<SteerMsg, RemoteError> {
    let mut rd = Rd::new(frame);
    let msg = match rd.u8()? {
        MSG_SUBSCRIBE => SteerMsg::Subscribe {
            subscriber: rd.string()?,
            rate: rd.rate()?,
        },
        MSG_NEXT_FRAME => SteerMsg::NextFrame { after: rd.u64()? },
        MSG_STEER => SteerMsg::Steer { rate: rd.rate()? },
        t => return Err(RemoteError::Proto(format!("unknown steer msg tag {t}"))),
    };
    rd.finish()?;
    Ok(msg)
}

/// Encode a steering reply.
pub fn encode_steer_reply(reply: &SteerReply) -> Bytes {
    let mut buf = BytesMut::new();
    match reply {
        SteerReply::SubAck { rate } => {
            buf.put_u8(REPLY_SUB_ACK);
            buf.put_u32_le(*rate);
        }
        SteerReply::Frame {
            version,
            rate,
            image,
        } => {
            buf.put_u8(REPLY_FRAME);
            buf.put_u64_le(*version);
            buf.put_u32_le(*rate);
            buf.put_u64_le(image.width() as u64);
            buf.put_u64_le(image.height() as u64);
            for p in image.pixels() {
                for c in p {
                    buf.put_f64_le(*c);
                }
            }
        }
        SteerReply::SteerAck {
            rate,
            latest_version,
        } => {
            buf.put_u8(REPLY_STEER_ACK);
            buf.put_u32_le(*rate);
            buf.put_u64_le(*latest_version);
        }
        SteerReply::NoFrame => {
            buf.put_u8(REPLY_NO_FRAME);
        }
        SteerReply::Error { reason } => {
            buf.put_u8(REPLY_ERROR);
            put_str(&mut buf, reason);
        }
    }
    buf.freeze()
}

/// Decode a steering reply. Total: never panics on arbitrary bytes.
pub fn decode_steer_reply(frame: Bytes) -> Result<SteerReply, RemoteError> {
    let mut rd = Rd::new(frame);
    let reply = match rd.u8()? {
        REPLY_SUB_ACK => SteerReply::SubAck { rate: rd.rate()? },
        REPLY_FRAME => SteerReply::Frame {
            version: rd.u64()?,
            rate: rd.rate()?,
            image: rd.image()?,
        },
        REPLY_STEER_ACK => SteerReply::SteerAck {
            rate: rd.rate()?,
            latest_version: rd.u64()?,
        },
        REPLY_NO_FRAME => SteerReply::NoFrame,
        REPLY_ERROR => SteerReply::Error {
            reason: rd.string()?,
        },
        t => return Err(RemoteError::Proto(format!("unknown steer reply tag {t}"))),
    };
    rd.finish()?;
    Ok(reply)
}

/// Reduce an image by sampling every `rate`-th pixel per axis (rate 1 is
/// a copy). Output dimensions are `ceil(dim / rate)`, never empty.
pub fn reduce_image(img: &Image, rate: u32) -> Image {
    let r = rate.max(1) as usize;
    let (w, h) = (img.width(), img.height());
    let (rw, rh) = (w.div_ceil(r), h.div_ceil(r));
    let mut out = Image::new(rw, rh);
    for y in 0..rh {
        for x in 0..rw {
            out.pixels_mut()[y * rw + x] = img.pixels()[(y * r) * w + x * r];
        }
    }
    out
}

// --------------------------------------------------------------------
// Server
// --------------------------------------------------------------------

/// Per-subscriber accounting, live on the server and reconstructable
/// from the journal by [`replay_steer`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SteerAccounting {
    /// Current downsample rate.
    pub rate: u32,
    /// Frames delivered.
    pub frames_sent: u64,
    /// Encoded frame bytes delivered.
    pub bytes_sent: u64,
    /// Steering feedbacks acknowledged.
    pub steers_acked: u64,
}

struct LatestFrame {
    version: u64,
    image: Option<Arc<Image>>,
}

struct Shared {
    latest: Mutex<LatestFrame>,
    cond: Condvar,
    subs: Mutex<BTreeMap<String, SteerAccounting>>,
    closed: AtomicBool,
}

/// The steerable-visualization service: publish frames on one side,
/// serve subscribers on the other.
pub struct SteerServer {
    shared: Arc<Shared>,
    handle: ServerHandle,
}

impl SteerServer {
    /// Bind and start serving subscribers on `addr`.
    pub fn start(addr: &Addr) -> Result<SteerServer, NetError> {
        let listener = Listener::bind(addr)?;
        let shared = Arc::new(Shared {
            latest: Mutex::new(LatestFrame {
                version: 0,
                image: None,
            }),
            cond: Condvar::new(),
            subs: Mutex::new(BTreeMap::new()),
            closed: AtomicBool::new(false),
        });
        let shared2 = Arc::clone(&shared);
        let handle = serve(listener, move |conn| serve_subscriber(&shared2, &conn));
        Ok(SteerServer { shared, handle })
    }

    /// Where subscribers connect.
    pub fn addr(&self) -> Addr {
        self.handle.addr()
    }

    /// Publish one frame; returns its (monotonically increasing)
    /// version. Subscribers blocked in `NextFrame` wake immediately;
    /// each receives the frame reduced by its own current rate.
    pub fn publish(&self, img: &Image) -> u64 {
        publish_shared(&self.shared, img)
    }

    /// A cheap cloneable publishing handle, detachable from the server's
    /// lifetime (the producer side holds this; the server owner keeps
    /// shutdown rights).
    pub fn publisher(&self) -> SteerPublisher {
        SteerPublisher {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Version of the newest published frame (0 = none yet).
    pub fn latest_version(&self) -> u64 {
        self.shared.latest.lock().version
    }

    /// Live per-subscriber accounting, keyed by subscriber name.
    pub fn accounting(&self) -> BTreeMap<String, SteerAccounting> {
        self.shared.subs.lock().clone()
    }

    /// Stop serving: blocked `NextFrame` waiters drain with `NoFrame`,
    /// then the acceptor joins.
    pub fn shutdown(self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        self.shared.cond.notify_all();
        self.handle.shutdown();
    }
}

/// Publishing half of a [`SteerServer`], cloneable into producer
/// threads (e.g. the pipeline driver's retirement path).
#[derive(Clone)]
pub struct SteerPublisher {
    shared: Arc<Shared>,
}

impl SteerPublisher {
    /// See [`SteerServer::publish`].
    pub fn publish(&self, img: &Image) -> u64 {
        publish_shared(&self.shared, img)
    }
}

fn publish_shared(shared: &Shared, img: &Image) -> u64 {
    let version = {
        let mut latest = shared.latest.lock();
        latest.version += 1;
        latest.image = Some(Arc::new(img.clone()));
        latest.version
    };
    sitra_obs::emit(
        "steer",
        "publish",
        &[
            ("version", version.to_string()),
            ("width", img.width().to_string()),
            ("height", img.height().to_string()),
        ],
    );
    shared.cond.notify_all();
    version
}

fn serve_subscriber(shared: &Shared, conn: &Connection) {
    // Connection-local binding, re-declared on every reconnect — the
    // `SetTenant` pattern.
    let mut bound: Option<String> = None;
    loop {
        let frame = match conn.recv() {
            Ok(f) => f,
            Err(_) => return,
        };
        let reply = match decode_steer_msg(frame) {
            Err(e) => SteerReply::Error {
                reason: e.to_string(),
            },
            Ok(msg) => handle_msg(shared, &mut bound, msg),
        };
        let enc = encode_steer_reply(&reply);
        // Frame accounting covers the encoded bytes actually sent.
        if let (SteerReply::Frame { version, rate, .. }, Some(name)) = (&reply, &bound) {
            {
                let mut subs = shared.subs.lock();
                let st = subs.entry(name.clone()).or_default();
                st.frames_sent += 1;
                st.bytes_sent += enc.len() as u64;
            }
            sitra_obs::emit(
                "steer",
                "frame",
                &[
                    ("subscriber", name.clone()),
                    ("version", version.to_string()),
                    ("rate", rate.to_string()),
                    ("bytes", enc.len().to_string()),
                ],
            );
        }
        if conn.send(enc).is_err() {
            return;
        }
    }
}

fn handle_msg(shared: &Shared, bound: &mut Option<String>, msg: SteerMsg) -> SteerReply {
    match msg {
        SteerMsg::Subscribe { subscriber, rate } => {
            shared
                .subs
                .lock()
                .entry(subscriber.clone())
                .or_default()
                .rate = rate;
            sitra_obs::emit(
                "steer",
                "subscribe",
                &[
                    ("subscriber", subscriber.clone()),
                    ("rate", rate.to_string()),
                ],
            );
            *bound = Some(subscriber);
            SteerReply::SubAck { rate }
        }
        SteerMsg::Steer { rate } => {
            let Some(name) = bound.as_ref() else {
                return SteerReply::Error {
                    reason: "subscribe before steering".into(),
                };
            };
            {
                let mut subs = shared.subs.lock();
                let st = subs.entry(name.clone()).or_default();
                st.rate = rate;
                st.steers_acked += 1;
            }
            sitra_obs::emit(
                "steer",
                "feedback",
                &[("subscriber", name.clone()), ("rate", rate.to_string())],
            );
            SteerReply::SteerAck {
                rate,
                latest_version: shared.latest.lock().version,
            }
        }
        SteerMsg::NextFrame { after } => {
            let Some(name) = bound.as_ref() else {
                return SteerReply::Error {
                    reason: "subscribe before polling frames".into(),
                };
            };
            let (version, image) = {
                let mut latest = shared.latest.lock();
                loop {
                    // A pending frame is delivered even during
                    // shutdown: everything published before `closed`
                    // stays pullable until the listener goes away, so
                    // a subscriber slower than a short run still
                    // drains the frames it was promised.
                    if latest.version > after {
                        if let Some(img) = &latest.image {
                            break (latest.version, Arc::clone(img));
                        }
                    }
                    if shared.closed.load(Ordering::SeqCst) {
                        return SteerReply::NoFrame;
                    }
                    // Bounded wait so a shutdown is never missed.
                    shared.cond.wait_for(&mut latest, Duration::from_millis(25));
                }
            };
            // Reduce under the subscriber's rate *now* — after any
            // acked feedback — so delivery reflects the newest rate.
            let rate = shared
                .subs
                .lock()
                .get(name)
                .map(|s| s.rate.max(1))
                .unwrap_or(1);
            SteerReply::Frame {
                version,
                rate,
                image: reduce_image(&image, rate),
            }
        }
    }
}

/// Reconstruct [`SteerServer::accounting`] from a journal. Applying
/// each subscriber's `subscribe`/`feedback`/`frame` events in order
/// reproduces the live counters bit-identically — the steering replay
/// oracle.
pub fn replay_steer(events: &[ObsEvent]) -> BTreeMap<String, SteerAccounting> {
    let mut subs: BTreeMap<String, SteerAccounting> = BTreeMap::new();
    for e in events {
        if e.component != "steer" {
            continue;
        }
        let Some(name) = e.get("subscriber") else {
            continue;
        };
        let st = subs.entry(name.to_string()).or_default();
        match e.name.as_str() {
            "subscribe" => {
                st.rate = e.u64("rate").unwrap_or(0) as u32;
            }
            "feedback" => {
                st.rate = e.u64("rate").unwrap_or(0) as u32;
                st.steers_acked += 1;
            }
            "frame" => {
                st.frames_sent += 1;
                st.bytes_sent += e.u64("bytes").unwrap_or(0);
            }
            _ => {}
        }
    }
    subs
}

// --------------------------------------------------------------------
// Client
// --------------------------------------------------------------------

/// A steering subscriber: pulls reduced frames and pushes feedback,
/// transparently redialing through transient faults. Every reconnect
/// re-subscribes with the client's *current* rate, so steering state
/// survives connection loss the way tenant bindings do.
pub struct SteerClient {
    addr: Addr,
    backoff: Backoff,
    subscriber: String,
    rate: u32,
    last_version: u64,
    conn: Option<Connection>,
}

/// One delivered frame, client side.
#[derive(Debug, Clone, PartialEq)]
pub struct SteerFrame {
    /// Publication version.
    pub version: u64,
    /// Rate the server reduced it under.
    pub rate: u32,
    /// The reduced image.
    pub image: Image,
}

impl SteerClient {
    /// Dial `addr` and subscribe as `subscriber` at `rate`.
    pub fn connect(
        addr: &Addr,
        subscriber: impl Into<String>,
        rate: u32,
        backoff: Backoff,
    ) -> Result<SteerClient, RemoteError> {
        let mut c = SteerClient {
            addr: addr.clone(),
            backoff,
            subscriber: subscriber.into(),
            rate: rate.max(1),
            last_version: 0,
            conn: None,
        };
        c.ensure()?;
        Ok(c)
    }

    /// The subscriber name this client declared.
    pub fn subscriber(&self) -> &str {
        &self.subscriber
    }

    /// The rate this client currently requests (re-declared on every
    /// reconnect).
    pub fn rate(&self) -> u32 {
        self.rate
    }

    fn ensure(&mut self) -> Result<(), RemoteError> {
        if self.conn.is_some() {
            return Ok(());
        }
        let conn = connect_retry(&self.addr, &self.backoff)?;
        conn.send(encode_steer_msg(&SteerMsg::Subscribe {
            subscriber: self.subscriber.clone(),
            rate: self.rate,
        }))?;
        match decode_steer_reply(conn.recv()?)? {
            SteerReply::SubAck { .. } => {
                self.conn = Some(conn);
                Ok(())
            }
            SteerReply::Error { reason } => Err(RemoteError::Server(reason)),
            other => Err(RemoteError::Proto(format!(
                "unexpected subscribe reply {other:?}"
            ))),
        }
    }

    fn request(&mut self, msg: &SteerMsg, timeout: Duration) -> Result<SteerReply, RemoteError> {
        let mut last: Option<RemoteError> = None;
        for _ in 0..self.backoff.attempts.max(1) {
            let attempt: Result<SteerReply, RemoteError> = (|| {
                self.ensure()?;
                let conn = self.conn.as_ref().expect("ensured above");
                conn.send(encode_steer_msg(msg))?;
                decode_steer_reply(conn.recv_timeout(timeout)?)
            })();
            match attempt {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    // Drop the connection on *every* error, not just
                    // retryable ones: a protocol error usually means a
                    // duplicated or reordered reply desynchronized the
                    // request/response lockstep, and the only way back
                    // in step is a fresh dial (which re-declares the
                    // subscription at the current rate). The next
                    // attempt retries retryable errors; terminal ones
                    // return after the loop.
                    self.conn = None;
                    if e.is_retryable() {
                        last = Some(e);
                    } else {
                        return Err(e);
                    }
                }
            }
        }
        Err(last.unwrap_or_else(|| RemoteError::Timeout("steer request".into())))
    }

    /// Pull the next frame newer than the last one seen. `Ok(None)`
    /// means the server is shutting down.
    pub fn next_frame(&mut self, timeout: Duration) -> Result<Option<SteerFrame>, RemoteError> {
        let msg = SteerMsg::NextFrame {
            after: self.last_version,
        };
        match self.request(&msg, timeout)? {
            SteerReply::Frame {
                version,
                rate,
                image,
            } => {
                // The server never replies with `version <= after`; a
                // stale version here is a duplicated reply that slipped
                // in ahead of the real one. Sever the connection so the
                // next call redials in lockstep, and surface the desync
                // to the caller instead of double-delivering a frame.
                if version <= self.last_version {
                    self.conn = None;
                    return Err(RemoteError::Proto(format!(
                        "stale frame v{version} after v{}",
                        self.last_version
                    )));
                }
                self.last_version = version;
                Ok(Some(SteerFrame {
                    version,
                    rate,
                    image,
                }))
            }
            SteerReply::NoFrame => Ok(None),
            SteerReply::Error { reason } => Err(RemoteError::Server(reason)),
            other => Err(RemoteError::Proto(format!(
                "unexpected frame reply {other:?}"
            ))),
        }
    }

    /// Steer: every frame delivered after the returned ack reflects
    /// `rate`. Returns the newest published version at ack time.
    pub fn steer(&mut self, rate: u32, timeout: Duration) -> Result<u64, RemoteError> {
        // Record the new rate before talking to the server: if this
        // request path has to reconnect, the re-subscription must
        // already declare the new rate.
        self.rate = rate.max(1);
        match self.request(&SteerMsg::Steer { rate: self.rate }, timeout)? {
            SteerReply::SteerAck { latest_version, .. } => Ok(latest_version),
            SteerReply::Error { reason } => Err(RemoteError::Server(reason)),
            other => Err(RemoteError::Proto(format!(
                "unexpected steer reply {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitra_obs::VecSink;

    fn test_image(w: usize, h: usize, tag: f64) -> Image {
        let mut img = Image::new(w, h);
        for (i, p) in img.pixels_mut().iter_mut().enumerate() {
            *p = [i as f64, tag, 0.5, 1.0];
        }
        img
    }

    fn addr(name: &str) -> Addr {
        format!("inproc://steer-test-{name}").parse().unwrap()
    }

    #[test]
    fn msg_and_reply_roundtrip() {
        let msgs = [
            SteerMsg::Subscribe {
                subscriber: "viewer-a".into(),
                rate: 3,
            },
            SteerMsg::NextFrame { after: 7 },
            SteerMsg::Steer { rate: 9 },
        ];
        for m in &msgs {
            assert_eq!(&decode_steer_msg(encode_steer_msg(m)).unwrap(), m);
        }
        let replies = [
            SteerReply::SubAck { rate: 2 },
            SteerReply::Frame {
                version: 4,
                rate: 2,
                image: test_image(3, 2, 0.25),
            },
            SteerReply::SteerAck {
                rate: 5,
                latest_version: 11,
            },
            SteerReply::NoFrame,
            SteerReply::Error {
                reason: "nope".into(),
            },
        ];
        for r in &replies {
            assert_eq!(&decode_steer_reply(encode_steer_reply(r)).unwrap(), r);
        }
    }

    #[test]
    fn codecs_reject_garbage_and_zero_rates() {
        assert!(decode_steer_msg(Bytes::new()).is_err());
        assert!(decode_steer_reply(Bytes::new()).is_err());
        assert!(decode_steer_msg(Bytes::from_static(&[77])).is_err());
        // Zero rates are structurally invalid on both sides.
        let mut buf = BytesMut::new();
        buf.put_u8(MSG_STEER);
        buf.put_u32_le(0);
        assert!(decode_steer_msg(buf.freeze()).is_err());
        // Truncations of a valid frame all error.
        let enc = encode_steer_reply(&SteerReply::Frame {
            version: 1,
            rate: 1,
            image: test_image(2, 2, 0.0),
        });
        for cut in 0..enc.len() {
            assert!(decode_steer_reply(enc.slice(0..cut)).is_err());
        }
    }

    #[test]
    fn reduce_image_samples_lattice() {
        let img = test_image(5, 4, 0.0);
        let r = reduce_image(&img, 2);
        assert_eq!((r.width(), r.height()), (3, 2));
        assert_eq!(r.pixels()[0], img.pixels()[0]);
        assert_eq!(r.pixels()[1], img.pixels()[2]);
        assert_eq!(r.pixels()[3], img.pixels()[10]);
        // Rate 1 is an exact copy; huge rates clamp to one pixel.
        assert_eq!(reduce_image(&img, 1), img);
        assert_eq!(
            (
                reduce_image(&img, 99).width(),
                reduce_image(&img, 99).height()
            ),
            (1, 1)
        );
    }

    #[test]
    fn subscribe_pull_steer_and_replay() {
        let obs = sitra_obs::isolate();
        let _keep = &obs;
        let sink = Arc::new(VecSink::new());
        let prev = sitra_obs::install_sink(Some(sink.clone()));

        let server = SteerServer::start(&addr("basic")).expect("start");
        let mut client =
            SteerClient::connect(&server.addr(), "viewer", 2, Backoff::default()).expect("dial");

        let v1 = server.publish(&test_image(8, 6, 1.0));
        let f1 = client
            .next_frame(Duration::from_secs(5))
            .expect("frame 1")
            .expect("some");
        assert_eq!(f1.version, v1);
        assert_eq!(f1.rate, 2);
        assert_eq!((f1.image.width(), f1.image.height()), (4, 3));

        // Feedback: the ack precedes any frame at the new rate.
        client.steer(3, Duration::from_secs(5)).expect("ack");
        let v2 = server.publish(&test_image(8, 6, 2.0));
        let f2 = client
            .next_frame(Duration::from_secs(5))
            .expect("frame 2")
            .expect("some");
        assert_eq!(f2.version, v2);
        assert_eq!(f2.rate, 3);
        assert_eq!((f2.image.width(), f2.image.height()), (3, 2));

        // Live accounting matches the journal replay bit-identically.
        let acct = server.accounting();
        assert_eq!(acct["viewer"].frames_sent, 2);
        assert_eq!(acct["viewer"].steers_acked, 1);
        assert_eq!(acct["viewer"].rate, 3);
        let events = sink.events();
        assert_eq!(replay_steer(&events), acct);

        server.shutdown();
        sitra_obs::install_sink(prev);
    }

    #[test]
    fn polling_before_subscribing_is_an_error() {
        let server = SteerServer::start(&addr("unbound")).expect("start");
        let conn = sitra_net::connect(&server.addr()).expect("dial");
        conn.send(encode_steer_msg(&SteerMsg::NextFrame { after: 0 }))
            .expect("send");
        match decode_steer_reply(conn.recv().expect("reply")).expect("decode") {
            SteerReply::Error { reason } => assert!(reason.contains("subscribe"), "{reason}"),
            other => panic!("expected error, got {other:?}"),
        }
        server.shutdown();
    }

    #[test]
    fn reconnect_redeclares_current_rate() {
        let server = SteerServer::start(&addr("reconnect")).expect("start");
        let mut client =
            SteerClient::connect(&server.addr(), "flaky", 2, Backoff::default()).expect("dial");
        client.steer(5, Duration::from_secs(5)).expect("ack");
        // Sever the transport under the client; the next pull must
        // redial, re-subscribe at rate 5, and deliver at rate 5.
        client.conn = None;
        server.publish(&test_image(10, 10, 3.0));
        let f = client
            .next_frame(Duration::from_secs(5))
            .expect("frame")
            .expect("some");
        assert_eq!(f.rate, 5);
        assert_eq!((f.image.width(), f.image.height()), (2, 2));
        assert_eq!(server.accounting()["flaky"].rate, 5);
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_blocked_pollers_with_no_frame() {
        let server = SteerServer::start(&addr("drain")).expect("start");
        let addr = server.addr();
        let puller = std::thread::spawn(move || {
            let mut client =
                SteerClient::connect(&addr, "drainee", 1, Backoff::default()).expect("dial");
            client.next_frame(Duration::from_secs(10))
        });
        std::thread::sleep(Duration::from_millis(50));
        server.shutdown();
        assert!(matches!(puller.join().expect("join"), Ok(None)));
    }
}
