//! The span-event journal: timestamped per-component events routed to a
//! global, test-overridable sink.

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// One journal entry: something happened in `component` at `ts_ns`
/// (monotonic nanoseconds since process start), with free-form
/// key/value context. Numeric values are formatted with `Display`
/// (which round-trips `f64` exactly) so a replayed journal reconstructs
/// the same per-stage timings the live run measured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsEvent {
    /// Monotonic nanoseconds since process start.
    pub ts_ns: u64,
    /// Which layer emitted this (`driver`, `net`, `sched`, `worker`, …).
    pub component: String,
    /// Event name within the component (`step`, `analysis.insitu`, …).
    pub name: String,
    /// Key/value context pairs, in emission order.
    pub kv: Vec<(String, String)>,
}

impl ObsEvent {
    /// Value of the first pair with key `k`.
    pub fn get(&self, k: &str) -> Option<&str> {
        self.kv
            .iter()
            .find(|(key, _)| key == k)
            .map(|(_, v)| v.as_str())
    }

    /// Value of `k` parsed as `f64` (None when absent or unparseable).
    pub fn f64(&self, k: &str) -> Option<f64> {
        self.get(k)?.parse().ok()
    }

    /// Value of `k` parsed as `u64`.
    pub fn u64(&self, k: &str) -> Option<u64> {
        self.get(k)?.parse().ok()
    }
}

/// Where emitted events go. Implementations must be cheap and
/// thread-safe — `record` is called from hot paths under no lock.
pub trait EventSink: Send + Sync {
    /// Consume one event.
    fn record(&self, event: ObsEvent);
}

/// In-memory sink for tests: collects every event.
#[derive(Default)]
pub struct VecSink {
    events: Mutex<Vec<ObsEvent>>,
}

impl VecSink {
    /// A new, empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drain all captured events.
    pub fn take(&self) -> Vec<ObsEvent> {
        std::mem::take(&mut self.events.lock())
    }

    /// Copy of all captured events.
    pub fn events(&self) -> Vec<ObsEvent> {
        self.events.lock().clone()
    }
}

impl EventSink for VecSink {
    fn record(&self, event: ObsEvent) {
        self.events.lock().push(event);
    }
}

/// Sink appending one JSON object per line — the `--journal` format,
/// replayed by `obs_report`.
pub struct JsonlSink {
    file: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Create (truncating) the journal file at `path`.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self {
            file: Mutex::new(std::io::BufWriter::new(file)),
        })
    }

    /// Flush buffered lines to disk.
    pub fn flush(&self) {
        let _ = self.file.lock().flush();
    }
}

impl EventSink for JsonlSink {
    fn record(&self, event: ObsEvent) {
        if let Ok(line) = serde_json::to_string(&event) {
            let mut f = self.file.lock();
            let _ = writeln!(f, "{line}");
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.file.lock().flush();
    }
}

struct SinkSlot {
    sink: RwLock<Option<Arc<dyn EventSink>>>,
    // Fast-path flag so emit() costs one relaxed load when no sink is
    // installed (the default).
    active: AtomicBool,
}

fn sink_slot() -> &'static SinkSlot {
    static SLOT: OnceLock<SinkSlot> = OnceLock::new();
    SLOT.get_or_init(|| SinkSlot {
        sink: RwLock::new(None),
        active: AtomicBool::new(false),
    })
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since process start (first call).
pub fn ts_ns() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

/// Install `sink` as the global event sink (None disables journaling).
/// Returns the previously installed sink, letting tests restore it.
pub fn install_sink(sink: Option<Arc<dyn EventSink>>) -> Option<Arc<dyn EventSink>> {
    let slot = sink_slot();
    let mut guard = slot.sink.write();
    slot.active.store(sink.is_some(), Ordering::Release);
    std::mem::replace(&mut *guard, sink)
}

/// Install a [`JsonlSink`] writing to `path` (convenience for
/// `--journal`). Returns the sink so callers can flush it.
pub fn set_journal_path(path: &std::path::Path) -> std::io::Result<Arc<JsonlSink>> {
    let sink = Arc::new(JsonlSink::create(path)?);
    install_sink(Some(Arc::clone(&sink) as Arc<dyn EventSink>));
    Ok(sink)
}

/// Emit one event to the installed sink. Free (one relaxed load) when
/// no sink is installed. `kv` pairs are stringified with `Display`.
pub fn emit(component: &str, name: &str, kv: &[(&str, String)]) {
    let slot = sink_slot();
    if !slot.active.load(Ordering::Acquire) {
        return;
    }
    let Some(sink) = slot.sink.read().clone() else {
        return;
    };
    sink.record(ObsEvent {
        ts_ns: ts_ns(),
        component: component.to_string(),
        name: name.to_string(),
        kv: kv.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    // Sink installation is process-global; serialize the tests that
    // touch it.
    static SINK_TESTS: Mutex<()> = Mutex::new(());

    #[test]
    fn emit_goes_to_installed_sink_and_stops_after_removal() {
        let _g = SINK_TESTS.lock();
        let sink = Arc::new(VecSink::new());
        let prev = install_sink(Some(Arc::clone(&sink) as Arc<dyn EventSink>));
        emit(
            "driver",
            "step",
            &[("step", 3.to_string()), ("sim_secs", 0.25.to_string())],
        );
        install_sink(prev);
        emit("driver", "step", &[("step", 4.to_string())]);
        let events = sink.take();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].component, "driver");
        assert_eq!(events[0].name, "step");
        assert_eq!(events[0].u64("step"), Some(3));
        assert_eq!(events[0].f64("sim_secs"), Some(0.25));
        assert_eq!(events[0].get("missing"), None);
    }

    #[test]
    fn event_json_roundtrip_preserves_f64_exactly() {
        let e = ObsEvent {
            ts_ns: 123,
            component: "sched".into(),
            name: "assign".into(),
            kv: vec![
                ("seq".into(), "7".into()),
                ("wait_secs".into(), format!("{}", 0.1 + 0.2)),
            ],
        };
        let line = serde_json::to_string(&e).unwrap();
        let back: ObsEvent = serde_json::from_str(&line).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.f64("wait_secs"), Some(0.1 + 0.2));
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let _g = SINK_TESTS.lock();
        let path =
            std::env::temp_dir().join(format!("sitra-obs-test-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        for i in 0..3u64 {
            sink.record(ObsEvent {
                ts_ns: i,
                component: "net".into(),
                name: "frame".into(),
                kv: vec![("bytes".into(), (i * 10).to_string())],
            });
        }
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let events: Vec<ObsEvent> = text
            .lines()
            .map(|l| serde_json::from_str(l).unwrap())
            .collect();
        assert_eq!(events.len(), 3);
        assert_eq!(events[2].u64("bytes"), Some(20));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn ts_ns_is_monotonic() {
        let a = ts_ns();
        let b = ts_ns();
        assert!(b >= a);
    }
}
