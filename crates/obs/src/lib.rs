//! # sitra-obs
//!
//! Lightweight, dependency-free observability for the whole pipeline:
//! the per-component timeline capture the paper's evaluation is built
//! on (simulation blocked time, in-situ compute, data movement,
//! in-transit aggregation — Figures 9–12) as live, queryable state
//! instead of a passive post-run struct.
//!
//! Three pieces:
//!
//! * [`Registry`] — a lock-cheap store of named [`Counter`]s,
//!   [`Gauge`]s, and [`Histogram`]s. Handle resolution takes a lock
//!   once; every update afterwards is a single atomic operation, so
//!   instrumented hot paths (frame sends, scheduler hand-offs, shard
//!   puts) pay nanoseconds. Names follow `component.subsystem.metric`,
//!   with optional `{key=value}` labels (e.g.
//!   `net.conn.frames_sent{peer=127.0.0.1:7788}`).
//! * [`ObsEvent`] — a span-event journal entry (`ts_ns`, component,
//!   name, key/value pairs) routed to a global, test-overridable
//!   [`EventSink`]. The default sink is none (events cost one relaxed
//!   atomic load); [`JsonlSink`] appends JSON lines for offline replay
//!   (`obs_report`), [`VecSink`] captures in memory for tests.
//! * [`serve_metrics`] — a minimal HTTP endpoint rendering the global
//!   registry as a Prometheus-style text snapshot
//!   (`sitra-staged --metrics-listen`).
//!
//! Everything is process-global by default ([`global`]) so layers do
//! not need registry plumbing through every constructor; tests that
//! assert exact registry contents take [`isolate`], which swaps in a
//! fresh registry (and serializes such tests against each other).

mod event;
mod registry;
mod serve;

pub use event::{
    emit, install_sink, set_journal_path, ts_ns, EventSink, JsonlSink, ObsEvent, VecSink,
};
pub use registry::{
    global, isolate, Counter, Gauge, Histogram, IsolateGuard, MetricValue, Registry, Snapshot,
};
pub use serve::{serve_metrics, MetricsServer};

/// Resolve (or create) a counter in the global registry.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Resolve (or create) a gauge in the global registry.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Resolve (or create) a histogram in the global registry.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}
