//! A minimal HTTP endpoint serving the global registry as a
//! Prometheus-style text snapshot — what `sitra-staged
//! --metrics-listen` exposes so a live run can be watched with `curl`
//! or scraped by any text-format collector.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Handle to a running metrics endpoint; [`MetricsServer::shutdown`]
/// stops it.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (OS-assigned port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the acceptor thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // wake the blocking accept
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

/// Serve `GET /metrics` (any path, actually) with a text snapshot of
/// the **global** registry, one short-lived connection per request.
/// Binding `host:0` picks a free port — read it back from
/// [`MetricsServer::addr`].
pub fn serve_metrics(listen: SocketAddr) -> std::io::Result<MetricsServer> {
    let listener = TcpListener::bind(listen)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let acceptor = std::thread::Builder::new()
        .name("obs-metrics".into())
        .spawn(move || {
            while !stop2.load(Ordering::SeqCst) {
                let Ok((stream, _)) = listener.accept() else {
                    break;
                };
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                // Requests are tiny; answer inline rather than spawning.
                let _ = answer(stream);
            }
        })?;
    Ok(MetricsServer {
        addr,
        stop,
        acceptor: Some(acceptor),
    })
}

fn answer(mut stream: TcpStream) -> std::io::Result<()> {
    // Read (and discard) the request head; tolerate clients that send
    // nothing. A small fixed buffer bounds hostile requests.
    stream.set_read_timeout(Some(std::time::Duration::from_millis(500)))?;
    let mut buf = [0u8; 1024];
    let _ = stream.read(&mut buf);
    let body = crate::global().snapshot().render_text();
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_global_snapshot_over_http() {
        // Unique names (not isolate()) so this test tolerates parallel
        // siblings touching the global registry.
        crate::counter("net.conn.frames_sent{peer=serve-test}").add(11);
        crate::gauge("serve_test.queue.depth").set(4);
        let server = serve_metrics("127.0.0.1:0".parse().unwrap()).unwrap();
        let resp = http_get(server.addr());
        assert!(resp.starts_with("HTTP/1.1 200 OK"));
        assert!(resp.contains("net_conn_frames_sent{peer=serve-test} 11"));
        assert!(resp.contains("serve_test_queue_depth 4"));
        // Repeated scrapes see updated values.
        crate::counter("net.conn.frames_sent{peer=serve-test}").inc();
        let resp2 = http_get(server.addr());
        assert!(resp2.contains("net_conn_frames_sent{peer=serve-test} 12"));
        server.shutdown();
    }
}
