//! The metrics registry: named counters, gauges, and histograms with
//! atomic hot paths and a renderable snapshot.

use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Number of power-of-two latency buckets a [`Histogram`] keeps: bucket
/// `i` counts observations in `[2^i, 2^(i+1))` nanoseconds, so 40
/// buckets span 1 ns to ~18 minutes.
pub const HIST_BUCKETS: usize = 40;

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct GaugeInner {
    value: AtomicI64,
    high_water: AtomicI64,
}

/// A point-in-time level (queue depth, resident bytes) that also tracks
/// its high-water mark.
#[derive(Clone)]
pub struct Gauge(Arc<GaugeInner>);

impl Gauge {
    /// Set the level, updating the high-water mark.
    pub fn set(&self, v: i64) {
        self.0.value.store(v, Ordering::Relaxed);
        self.0.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Adjust the level by `delta`, updating the high-water mark.
    pub fn add(&self, delta: i64) {
        let v = self.0.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.0.high_water.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.value.load(Ordering::Relaxed)
    }

    /// Highest level ever set.
    pub fn high_water(&self) -> i64 {
        self.0.high_water.load(Ordering::Relaxed)
    }
}

struct HistInner {
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

/// A latency histogram over nanosecond observations: power-of-two
/// buckets plus count/sum/max, all updated with relaxed atomics.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// Record one observation of `ns` nanoseconds.
    pub fn observe_ns(&self, ns: u64) {
        let i = (64 - ns.leading_zeros() as usize)
            .min(HIST_BUCKETS) // ilog2 + 1, 0 for ns=0
            .saturating_sub(1);
        self.0.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.0.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Record a duration.
    pub fn observe(&self, d: std::time::Duration) {
        self.observe_ns(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations in nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.0.sum_ns.load(Ordering::Relaxed)
    }

    /// Largest observation in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.0.max_ns.load(Ordering::Relaxed)
    }

    /// Mean observation in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ns() as f64 / n as f64
        }
    }
}

/// A snapshot value of one metric, for assertions and rendering.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge `(current, high_water)`.
    Gauge(i64, i64),
    /// Histogram `(count, sum_ns, max_ns)`.
    Histogram(u64, u64, u64),
}

/// A consistent-enough snapshot of a registry: metric name to value,
/// sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Name → value, ordered.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// Counter value by exact name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge `(current, high_water)` by exact name.
    pub fn gauge(&self, name: &str) -> Option<(i64, i64)> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v, hw)) => Some((*v, *hw)),
            _ => None,
        }
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// Render as Prometheus-style text: one `name{labels} value` line
    /// per series (histograms expand to `_count`/`_sum_ns`/`_max_ns`),
    /// dots replaced by underscores in the metric name.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.metrics {
            let (base, labels) = match name.find('{') {
                Some(i) => (&name[..i], &name[i..]),
                None => (name.as_str(), ""),
            };
            let base = base.replace('.', "_");
            match value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{base}{labels} {v}\n"));
                }
                MetricValue::Gauge(v, hw) => {
                    out.push_str(&format!("{base}{labels} {v}\n"));
                    out.push_str(&format!("{base}_high_water{labels} {hw}\n"));
                }
                MetricValue::Histogram(count, sum_ns, max_ns) => {
                    out.push_str(&format!("{base}_count{labels} {count}\n"));
                    out.push_str(&format!("{base}_sum_ns{labels} {sum_ns}\n"));
                    out.push_str(&format!("{base}_max_ns{labels} {max_ns}\n"));
                }
            }
        }
        out
    }
}

/// A registry of named metrics. Lookups lock a map once per handle;
/// handles are cheap clones updating shared atomics.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve (or create) the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut g = self.counters.lock();
        g.entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Resolve (or create) the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut g = self.gauges.lock();
        g.entry(name.to_string())
            .or_insert_with(|| {
                Gauge(Arc::new(GaugeInner {
                    value: AtomicI64::new(0),
                    high_water: AtomicI64::new(0),
                }))
            })
            .clone()
    }

    /// Resolve (or create) the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut g = self.histograms.lock();
        g.entry(name.to_string())
            .or_insert_with(|| {
                Histogram(Arc::new(HistInner {
                    count: AtomicU64::new(0),
                    sum_ns: AtomicU64::new(0),
                    max_ns: AtomicU64::new(0),
                    buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                }))
            })
            .clone()
    }

    /// Snapshot every metric.
    pub fn snapshot(&self) -> Snapshot {
        let mut metrics = BTreeMap::new();
        for (name, c) in self.counters.lock().iter() {
            metrics.insert(name.clone(), MetricValue::Counter(c.get()));
        }
        for (name, g) in self.gauges.lock().iter() {
            metrics.insert(name.clone(), MetricValue::Gauge(g.get(), g.high_water()));
        }
        for (name, h) in self.histograms.lock().iter() {
            metrics.insert(
                name.clone(),
                MetricValue::Histogram(h.count(), h.sum_ns(), h.max_ns()),
            );
        }
        Snapshot { metrics }
    }
}

fn global_slot() -> &'static RwLock<Arc<Registry>> {
    static GLOBAL: OnceLock<RwLock<Arc<Registry>>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(Arc::new(Registry::new())))
}

/// The process-global registry all instrumented layers report into.
/// Handles resolved before an [`isolate`] swap keep writing to the
/// registry they were resolved from.
pub fn global() -> Arc<Registry> {
    Arc::clone(&global_slot().read())
}

/// Guard returned by [`isolate`]: restores the previous global registry
/// on drop and releases the test-serialization lock.
pub struct IsolateGuard {
    previous: Option<Arc<Registry>>,
    _lock: parking_lot::MutexGuard<'static, ()>,
}

impl IsolateGuard {
    /// The fresh registry installed for this scope.
    pub fn registry(&self) -> Arc<Registry> {
        global()
    }
}

impl Drop for IsolateGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.previous.take() {
            *global_slot().write() = prev;
        }
    }
}

/// Swap in a fresh global registry for the lifetime of the returned
/// guard, serializing against other [`isolate`] holders in the same
/// process. Tests asserting exact registry contents use this so runs in
/// sibling tests cannot contaminate the counts.
pub fn isolate() -> IsolateGuard {
    static LOCK: Mutex<()> = Mutex::new(());
    let lock = LOCK.lock();
    let fresh = Arc::new(Registry::new());
    let previous = std::mem::replace(&mut *global_slot().write(), fresh);
    IsolateGuard {
        previous: Some(previous),
        _lock: lock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_gauge_histogram_basics() {
        let r = Registry::new();
        let c = r.counter("a.b.c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name resolves to the same atomic.
        assert_eq!(r.counter("a.b.c").get(), 5);

        let g = r.gauge("q.depth");
        g.set(3);
        g.add(2);
        g.set(1);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_water(), 5);

        let h = r.histogram("lat");
        h.observe_ns(0);
        h.observe_ns(1);
        h.observe_ns(1000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum_ns(), 1001);
        assert_eq!(h.max_ns(), 1000);
        assert_eq!(h.mean_ns(), 1001.0 / 3.0);
    }

    #[test]
    fn snapshot_and_render() {
        let r = Registry::new();
        r.counter("net.conn.frames_sent{peer=inproc}").add(7);
        r.gauge("sched.queue.depth").set(2);
        r.histogram("space.put_ns{shard=0}").observe_ns(512);
        let snap = r.snapshot();
        assert_eq!(snap.counter("net.conn.frames_sent{peer=inproc}"), 7);
        assert_eq!(snap.gauge("sched.queue.depth"), Some((2, 2)));
        assert_eq!(snap.counter_sum("net.conn.frames_sent"), 7);
        let text = snap.render_text();
        assert!(text.contains("net_conn_frames_sent{peer=inproc} 7"));
        assert!(text.contains("sched_queue_depth 2"));
        assert!(text.contains("sched_queue_depth_high_water 2"));
        assert!(text.contains("space_put_ns_count{shard=0} 1"));
        assert!(text.contains("space_put_ns_sum_ns{shard=0} 512"));
    }

    #[test]
    fn histogram_bucket_indexing_covers_extremes() {
        let r = Registry::new();
        let h = r.histogram("x");
        h.observe_ns(u64::MAX);
        h.observe_ns(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max_ns(), u64::MAX);
    }

    #[test]
    fn isolate_swaps_and_restores() {
        let before = global();
        before.counter("leak.check").inc();
        {
            let guard = isolate();
            assert_eq!(guard.registry().snapshot().counter("leak.check"), 0);
            guard.registry().counter("inner.only").inc();
        }
        let after = global();
        assert_eq!(after.snapshot().counter("leak.check"), 1);
        assert_eq!(after.snapshot().counter("inner.only"), 0);
    }

    #[test]
    fn concurrent_updates_do_not_lose_counts() {
        let r = Arc::new(Registry::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    let c = r.counter("hot");
                    let h = r.histogram("hot_ns");
                    for i in 0..10_000u64 {
                        c.inc();
                        h.observe_ns(i);
                    }
                });
            }
        });
        assert_eq!(r.counter("hot").get(), 80_000);
        assert_eq!(r.histogram("hot_ns").count(), 80_000);
    }
}
