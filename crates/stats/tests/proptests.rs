//! Property-based tests for the statistics toolkit: the merge operation
//! must behave like learning the concatenated data, for any partitioning
//! and any merge tree shape.

use proptest::prelude::*;
use sitra_stats::{derive, learn_all_reduce, CoMoments, Histogram, Moments};

fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
}

fn datavec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e3..1.0e3f64, 1..200)
}

proptest! {
    #[test]
    fn merge_any_split_equals_whole(data in datavec(), cut in 0usize..200) {
        let cut = cut.min(data.len());
        let whole = Moments::from_slice(&data);
        let mut m = Moments::from_slice(&data[..cut]);
        m.merge(&Moments::from_slice(&data[cut..]));
        prop_assert_eq!(m.n, whole.n);
        prop_assert!(close(m.mean, whole.mean, 1e-10));
        prop_assert!(close(m.m2, whole.m2, 1e-8));
        prop_assert!(close(m.m3, whole.m3, 1e-6));
        prop_assert!(close(m.m4, whole.m4, 1e-6));
        prop_assert_eq!(m.min, whole.min);
        prop_assert_eq!(m.max, whole.max);
    }

    #[test]
    fn merge_many_chunks_equals_whole(data in datavec(), chunk in 1usize..40) {
        let whole = Moments::from_slice(&data);
        let mut m = Moments::new();
        for c in data.chunks(chunk) {
            m.merge(&Moments::from_slice(c));
        }
        prop_assert_eq!(m.n, whole.n);
        prop_assert!(close(m.mean, whole.mean, 1e-10));
        prop_assert!(close(m.m2, whole.m2, 1e-7));
    }

    #[test]
    fn all_reduce_equals_serial(data in datavec(), chunk in 1usize..40) {
        let partials: Vec<Moments> = data.chunks(chunk).map(Moments::from_slice).collect();
        let (reduced, _) = learn_all_reduce(&partials);
        let whole = Moments::from_slice(&data);
        prop_assert_eq!(reduced.n, whole.n);
        prop_assert!(close(reduced.mean, whole.mean, 1e-10));
        prop_assert!(close(reduced.m2, whole.m2, 1e-7));
    }

    #[test]
    fn derived_variance_nonnegative(data in datavec()) {
        let d = derive(&Moments::from_slice(&data)).unwrap();
        prop_assert!(d.variance >= 0.0);
        prop_assert!(d.min <= d.mean + 1e-9 && d.mean <= d.max + 1e-9);
    }

    #[test]
    fn comoments_merge_equals_whole(xy in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 2..120),
                                     cut in 0usize..120) {
        let cut = cut.min(xy.len());
        let xs: Vec<f64> = xy.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = xy.iter().map(|p| p.1).collect();
        let whole = CoMoments::from_slices(&xs, &ys);
        let mut m = CoMoments::from_slices(&xs[..cut], &ys[..cut]);
        m.merge(&CoMoments::from_slices(&xs[cut..], &ys[cut..]));
        prop_assert_eq!(m.n, whole.n);
        prop_assert!(close(m.mean_x, whole.mean_x, 1e-10));
        prop_assert!(close(m.mean_y, whole.mean_y, 1e-10));
        prop_assert!(close(m.cxy, whole.cxy, 1e-7));
    }

    #[test]
    fn correlation_bounded(xy in prop::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 3..100)) {
        let xs: Vec<f64> = xy.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = xy.iter().map(|p| p.1).collect();
        if let Some(r) = CoMoments::from_slices(&xs, &ys).correlation() {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }

    #[test]
    fn histogram_merge_any_split(data in prop::collection::vec(-2.0..12.0f64, 0..200), cut in 0usize..200) {
        let cut = cut.min(data.len());
        let mut whole = Histogram::new(0.0, 10.0, 16);
        whole.extend(&data);
        let mut a = Histogram::new(0.0, 10.0, 16);
        a.extend(&data[..cut]);
        let mut b = Histogram::new(0.0, 10.0, 16);
        b.extend(&data[cut..]);
        a.merge(&b);
        prop_assert_eq!(a, whole);
    }

    #[test]
    fn histogram_total_conserved(data in prop::collection::vec(-1.0e4..1.0e4f64, 0..300)) {
        let mut h = Histogram::new(-10.0, 10.0, 8);
        h.extend(&data);
        prop_assert_eq!(h.total() as usize, data.len());
    }
}
