//! Parallel `learn`: shared-memory data parallelism and the rank-level
//! reduction used by the fully in-situ statistics variant.

use crate::Moments;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Learn a [`Moments`] model from a slice, single-threaded.
pub fn learn_serial(data: &[f64]) -> Moments {
    Moments::from_slice(data)
}

/// Learn a [`Moments`] model from a slice using all available cores.
///
/// Chunks are learned independently and merged pairwise; because the
/// merge is exact, the result equals the serial model up to floating-point
/// rounding regardless of chunking.
pub fn learn_parallel(data: &[f64]) -> Moments {
    const CHUNK: usize = 64 * 1024;
    if data.len() <= CHUNK {
        return learn_serial(data);
    }
    data.par_chunks(CHUNK)
        .map(Moments::from_slice)
        .reduce(Moments::new, Moments::combined)
}

/// Communication accounting for a simulated rank-level reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReduceStats {
    /// Number of communication rounds (≈ ⌈log₂ ranks⌉ for the binomial tree).
    pub rounds: usize,
    /// Total point-to-point messages exchanged.
    pub messages: usize,
    /// Total bytes moved across ranks.
    pub bytes: usize,
}

/// Combine per-rank partial models with a binomial-tree all-reduce, the
/// communication pattern MPI_Allreduce would use for the fully in-situ
/// statistics variant. Returns the global model plus communication
/// accounting (every rank ends up with the model; accounting covers the
/// reduce phase followed by a broadcast down the same tree).
pub fn learn_all_reduce(partials: &[Moments]) -> (Moments, ReduceStats) {
    assert!(!partials.is_empty(), "need at least one rank");
    let mut work: Vec<Moments> = partials.to_vec();
    let n = work.len();
    let mut stride = 1usize;
    let mut stats = ReduceStats {
        rounds: 0,
        messages: 0,
        bytes: 0,
    };
    while stride < n {
        stats.rounds += 1;
        let mut i = 0;
        while i + stride < n {
            let src = work[i + stride];
            work[i].merge(&src);
            stats.messages += 1;
            stats.bytes += Moments::WIRE_BYTES;
            i += stride * 2;
        }
        stride *= 2;
    }
    // Broadcast back down the tree: same message count and rounds.
    let reduce_msgs = stats.messages;
    let reduce_rounds = stats.rounds;
    stats.messages += reduce_msgs;
    stats.bytes += reduce_msgs * Moments::WIRE_BYTES;
    stats.rounds += reduce_rounds;
    (work[0], stats)
}

/// Named per-variable models for a multi-variable data set — what one rank
/// ships to the staging area in the hybrid statistics variant.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MultiModel {
    /// `(variable name, partial model)` pairs.
    pub vars: Vec<(String, Moments)>,
}

impl MultiModel {
    /// Learn one model per named variable.
    pub fn learn(vars: &[(&str, &[f64])]) -> Self {
        Self {
            vars: vars
                .iter()
                .map(|(name, data)| (name.to_string(), learn_parallel(data)))
                .collect(),
        }
    }

    /// Merge another multi-model; variable sets must match in order.
    pub fn merge(&mut self, other: &MultiModel) {
        if self.vars.is_empty() {
            self.vars = other.vars.clone();
            return;
        }
        assert_eq!(self.vars.len(), other.vars.len(), "variable sets differ");
        for ((na, ma), (nb, mb)) in self.vars.iter_mut().zip(&other.vars) {
            assert_eq!(na, nb, "variable order differs");
            ma.merge(mb);
        }
    }

    /// Look up a variable's model by name.
    pub fn get(&self, name: &str) -> Option<&Moments> {
        self.vars.iter().find(|(n, _)| n == name).map(|(_, m)| m)
    }

    /// Wire size of this partial model in bytes (moments payload only).
    pub fn wire_bytes(&self) -> usize {
        self.vars.len() * Moments::WIRE_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    fn sample(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 2654435761) % 1_000_003) as f64 / 997.0)
            .collect()
    }

    #[test]
    fn parallel_matches_serial() {
        let data = sample(300_000);
        let s = learn_serial(&data);
        let p = learn_parallel(&data);
        assert_eq!(s.n, p.n);
        assert!(close(s.mean, p.mean));
        assert!(close(s.m2, p.m2));
        assert!(close(s.m3, p.m3));
        assert!(close(s.m4, p.m4));
        assert_eq!((s.min, s.max), (p.min, p.max));
    }

    #[test]
    fn all_reduce_matches_flat_merge() {
        let data = sample(10_000);
        let partials: Vec<Moments> = data.chunks(617).map(Moments::from_slice).collect();
        let (reduced, stats) = learn_all_reduce(&partials);
        let mut flat = Moments::new();
        for p in &partials {
            flat.merge(p);
        }
        assert_eq!(reduced.n, flat.n);
        assert!(close(reduced.mean, flat.mean));
        assert!(close(reduced.m2, flat.m2));
        // Binomial tree: p-1 messages up, p-1 down.
        let p = partials.len();
        assert_eq!(stats.messages, 2 * (p - 1));
        assert_eq!(stats.bytes, 2 * (p - 1) * Moments::WIRE_BYTES);
        assert_eq!(
            stats.rounds,
            2 * p.next_power_of_two().trailing_zeros() as usize
        );
    }

    #[test]
    fn all_reduce_single_rank() {
        let m = Moments::from_slice(&[1.0, 2.0]);
        let (r, stats) = learn_all_reduce(&[m]);
        assert_eq!(r, m);
        assert_eq!(stats.messages, 0);
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn multimodel_merge_per_variable() {
        let a1 = [1.0, 2.0, 3.0];
        let a2 = [4.0, 5.0];
        let b1 = [10.0, 20.0, 30.0];
        let b2 = [40.0, 50.0];
        let mut ma = MultiModel::learn(&[("t", &a1), ("p", &b1)]);
        let mb = MultiModel::learn(&[("t", &a2), ("p", &b2)]);
        ma.merge(&mb);
        let whole_t = Moments::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(ma.get("t").unwrap().n, whole_t.n);
        assert!(close(ma.get("t").unwrap().mean, whole_t.mean));
        assert!(close(ma.get("p").unwrap().mean, 30.0));
        assert!(ma.get("missing").is_none());
        assert_eq!(ma.wire_bytes(), 2 * Moments::WIRE_BYTES);
    }

    #[test]
    #[should_panic]
    fn multimodel_mismatched_vars_panic() {
        let mut a = MultiModel::learn(&[("t", &[1.0][..])]);
        let b = MultiModel::learn(&[("p", &[1.0][..])]);
        a.merge(&b);
    }
}
