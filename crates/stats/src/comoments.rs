//! Bivariate co-moment accumulators: covariance, correlation, regression.

use serde::{Deserialize, Serialize};

/// Single-pass bivariate model: means of two variables and their centered
/// (co-)aggregates, mergeable across ranks exactly like [`crate::Moments`].
///
/// The paper's statistics toolkit computes these for pairs of simulation
/// variables (e.g. temperature vs. a species mass fraction); the planned
/// "auto-correlative statistics" extension in the paper's future work is a
/// direct application of the same accumulator against a lagged copy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoMoments {
    /// Number of observation pairs.
    pub n: u64,
    /// Mean of the first variable.
    pub mean_x: f64,
    /// Mean of the second variable.
    pub mean_y: f64,
    /// `Σ (x−mean_x)²`.
    pub m2x: f64,
    /// `Σ (y−mean_y)²`.
    pub m2y: f64,
    /// `Σ (x−mean_x)(y−mean_y)`.
    pub cxy: f64,
}

impl Default for CoMoments {
    fn default() -> Self {
        Self::new()
    }
}

impl CoMoments {
    /// An empty model.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean_x: 0.0,
            mean_y: 0.0,
            m2x: 0.0,
            m2y: 0.0,
            cxy: 0.0,
        }
    }

    /// Learn from paired slices (must be the same length).
    pub fn from_slices(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len(), "paired data required");
        let mut m = Self::new();
        for (&x, &y) in xs.iter().zip(ys) {
            m.push(x, y);
        }
        m
    }

    /// Incorporate one observation pair.
    #[inline]
    pub fn push(&mut self, x: f64, y: f64) {
        self.n += 1;
        let n = self.n as f64;
        let dx = x - self.mean_x;
        let dy = y - self.mean_y;
        self.mean_x += dx / n;
        self.mean_y += dy / n;
        // Note: cxy uses the *updated* mean_x and the old dy — the standard
        // stable online covariance update.
        self.cxy += (x - self.mean_x) * dy;
        self.m2x += dx * (x - self.mean_x);
        self.m2y += dy * (y - self.mean_y);
    }

    /// Merge another partial model (pairwise combination).
    pub fn merge(&mut self, other: &CoMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let dx = other.mean_x - self.mean_x;
        let dy = other.mean_y - self.mean_y;
        self.m2x += other.m2x + dx * dx * na * nb / n;
        self.m2y += other.m2y + dy * dy * na * nb / n;
        self.cxy += other.cxy + dx * dy * na * nb / n;
        self.mean_x += dx * nb / n;
        self.mean_y += dy * nb / n;
        self.n += other.n;
    }

    /// Sample covariance (n−1 denominator); `None` if fewer than 2 pairs.
    pub fn covariance(&self) -> Option<f64> {
        (self.n > 1).then(|| self.cxy / (self.n as f64 - 1.0))
    }

    /// Pearson correlation coefficient; `None` if degenerate.
    pub fn correlation(&self) -> Option<f64> {
        if self.n < 2 || self.m2x <= 0.0 || self.m2y <= 0.0 {
            return None;
        }
        Some(self.cxy / (self.m2x * self.m2y).sqrt())
    }

    /// Ordinary-least-squares fit `y ≈ slope·x + intercept`; `None` when x
    /// is degenerate.
    pub fn linear_fit(&self) -> Option<(f64, f64)> {
        if self.n < 2 || self.m2x <= 0.0 {
            return None;
        }
        let slope = self.cxy / self.m2x;
        Some((slope, self.mean_y - slope * self.mean_x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-10 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn perfect_linear_relation() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 7.0).collect();
        let m = CoMoments::from_slices(&xs, &ys);
        assert!(close(m.correlation().unwrap(), 1.0));
        let (slope, intercept) = m.linear_fit().unwrap();
        assert!(close(slope, 3.0));
        assert!(close(intercept, -7.0));
    }

    #[test]
    fn anticorrelation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [4.0, 3.0, 2.0, 1.0];
        let m = CoMoments::from_slices(&xs, &ys);
        assert!(close(m.correlation().unwrap(), -1.0));
    }

    #[test]
    fn independent_vars_near_zero_correlation() {
        let xs: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let ys: Vec<f64> = (0..1000).map(|i| ((i / 10) % 10) as f64).collect();
        let m = CoMoments::from_slices(&xs, &ys);
        assert!(m.correlation().unwrap().abs() < 1e-10);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..40).map(|i| (i as f64).sin() * 5.0).collect();
        let ys: Vec<f64> = (0..40).map(|i| (i as f64).cos() + i as f64 * 0.1).collect();
        let whole = CoMoments::from_slices(&xs, &ys);
        let mut m = CoMoments::from_slices(&xs[..13], &ys[..13]);
        m.merge(&CoMoments::from_slices(&xs[13..], &ys[13..]));
        assert_eq!(m.n, whole.n);
        assert!(close(m.mean_x, whole.mean_x));
        assert!(close(m.mean_y, whole.mean_y));
        assert!(close(m.cxy, whole.cxy));
        assert!(close(m.m2x, whole.m2x));
        assert!(close(m.m2y, whole.m2y));
    }

    #[test]
    fn merge_with_empty() {
        let m = CoMoments::from_slices(&[1.0, 2.0], &[3.0, 4.0]);
        let mut a = m;
        a.merge(&CoMoments::new());
        assert_eq!(a, m);
        let mut b = CoMoments::new();
        b.merge(&m);
        assert_eq!(b, m);
    }

    #[test]
    fn degenerate_cases_return_none() {
        let m = CoMoments::from_slices(&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0]);
        assert!(m.correlation().is_none());
        assert!(m.linear_fit().is_none());
        let single = CoMoments::from_slices(&[1.0], &[2.0]);
        assert!(single.covariance().is_none());
    }
}
