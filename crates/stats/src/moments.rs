//! Single-pass centered-moment accumulators with exact pairwise merging.

use serde::{Deserialize, Serialize};

/// The primary statistical model of the `learn` stage: cardinality,
/// extremes, mean, and centered aggregates `M2..M4` for one variable.
///
/// `Mk = Σ (x_i − mean)^k` is maintained incrementally with the
/// numerically stable one-pass update of Pébay (2008), and two partial
/// models are merged *exactly* (up to floating-point rounding) with the
/// pairwise combination formulas — this is what makes `learn`
/// embarrassingly reducible across ranks and what the hybrid stats
/// pipeline ships over the network (48 bytes of payload per variable
/// instead of the raw block).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Moments {
    /// Number of observations.
    pub n: u64,
    /// Smallest observation (`+inf` when empty).
    pub min: f64,
    /// Largest observation (`-inf` when empty).
    pub max: f64,
    /// Arithmetic mean (0 when empty).
    pub mean: f64,
    /// Second centered aggregate `Σ (x−mean)²`.
    pub m2: f64,
    /// Third centered aggregate `Σ (x−mean)³`.
    pub m3: f64,
    /// Fourth centered aggregate `Σ (x−mean)⁴`.
    pub m4: f64,
}

impl Default for Moments {
    fn default() -> Self {
        Self::new()
    }
}

impl Moments {
    /// An empty model.
    pub fn new() -> Self {
        Self {
            n: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            mean: 0.0,
            m2: 0.0,
            m3: 0.0,
            m4: 0.0,
        }
    }

    /// Learn from a slice in one pass.
    pub fn from_slice(data: &[f64]) -> Self {
        let mut m = Self::new();
        for &x in data {
            m.push(x);
        }
        m
    }

    /// True if no observation has been seen.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Incorporate one observation (Pébay one-pass update).
    #[inline]
    pub fn push(&mut self, x: f64) {
        let n1 = self.n as f64;
        self.n += 1;
        let n = self.n as f64;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
        let delta = x - self.mean;
        let delta_n = delta / n;
        let delta_n2 = delta_n * delta_n;
        let term1 = delta * delta_n * n1;
        self.mean += delta_n;
        self.m4 += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * self.m2
            - 4.0 * delta_n * self.m3;
        self.m3 += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * self.m2;
        self.m2 += term1;
    }

    /// Merge another partial model into this one (pairwise combination).
    ///
    /// This operation is associative and commutative up to floating-point
    /// rounding, which is exactly the property that lets `learn` be
    /// reduced in any tree shape across ranks.
    pub fn merge(&mut self, other: &Moments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let na = self.n as f64;
        let nb = other.n as f64;
        let n = na + nb;
        let delta = other.mean - self.mean;
        let delta2 = delta * delta;
        let delta3 = delta2 * delta;
        let delta4 = delta3 * delta;

        let m2 = self.m2 + other.m2 + delta2 * na * nb / n;
        let m3 = self.m3
            + other.m3
            + delta3 * na * nb * (na - nb) / (n * n)
            + 3.0 * delta * (na * other.m2 - nb * self.m2) / n;
        let m4 = self.m4
            + other.m4
            + delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n)
            + 6.0 * delta2 * (na * na * other.m2 + nb * nb * self.m2) / (n * n)
            + 4.0 * delta * (na * other.m3 - nb * self.m3) / n;

        self.mean += delta * nb / n;
        self.m2 = m2;
        self.m3 = m3;
        self.m4 = m4;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// `merge` as a pure binary operator, convenient for reductions.
    pub fn combined(mut self, other: Moments) -> Moments {
        self.merge(&other);
        self
    }

    /// Serialized size of the model in bytes: 7 fields × 8 bytes. This is
    /// the per-variable payload the hybrid pipeline moves per rank.
    pub const WIRE_BYTES: usize = 56;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * (1.0 + a.abs().max(b.abs()))
    }

    /// Reference: two-pass textbook computation.
    fn reference(data: &[f64]) -> (f64, f64, f64, f64) {
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let mk = |k: i32| data.iter().map(|x| (x - mean).powi(k)).sum::<f64>();
        (mean, mk(2), mk(3), mk(4))
    }

    #[test]
    fn empty_model() {
        let m = Moments::new();
        assert!(m.is_empty());
        assert_eq!(m.n, 0);
        assert!(m.min.is_infinite() && m.min > 0.0);
        assert!(m.max.is_infinite() && m.max < 0.0);
    }

    #[test]
    fn single_observation() {
        let m = Moments::from_slice(&[42.0]);
        assert_eq!(m.n, 1);
        assert_eq!((m.min, m.max, m.mean), (42.0, 42.0, 42.0));
        assert_eq!((m.m2, m.m3, m.m4), (0.0, 0.0, 0.0));
    }

    #[test]
    fn matches_two_pass_reference() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let m = Moments::from_slice(&data);
        let (mean, m2, m3, m4) = reference(&data);
        assert!(close(m.mean, mean, 1e-14));
        assert!(close(m.m2, m2, 1e-13));
        assert!(close(m.m3, m3, 1e-13));
        assert!(close(m.m4, m4, 1e-13));
        assert_eq!((m.min, m.max), (2.0, 9.0));
    }

    #[test]
    fn merge_equals_sequential() {
        let a = [1.0, 2.5, -3.0, 8.0];
        let b = [0.5, 0.5, 11.0, -2.0, 4.0];
        let mut left = Moments::from_slice(&a);
        left.merge(&Moments::from_slice(&b));
        let whole: Vec<f64> = a.iter().chain(&b).copied().collect();
        let all = Moments::from_slice(&whole);
        assert_eq!(left.n, all.n);
        assert!(close(left.mean, all.mean, 1e-14));
        assert!(close(left.m2, all.m2, 1e-12));
        assert!(close(left.m3, all.m3, 1e-12));
        assert!(close(left.m4, all.m4, 1e-12));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let m = Moments::from_slice(&[3.0, 1.0, 4.0]);
        let mut a = m;
        a.merge(&Moments::new());
        assert_eq!(a, m);
        let mut b = Moments::new();
        b.merge(&m);
        assert_eq!(b, m);
    }

    #[test]
    fn merge_is_commutative() {
        let a = Moments::from_slice(&[1.0, 2.0, 3.0]);
        let b = Moments::from_slice(&[10.0, -4.0]);
        let ab = a.combined(b);
        let ba = b.combined(a);
        assert_eq!(ab.n, ba.n);
        assert!(close(ab.mean, ba.mean, 1e-14));
        assert!(close(ab.m2, ba.m2, 1e-12));
        assert!(close(ab.m3, ba.m3, 1e-12));
        assert!(close(ab.m4, ba.m4, 1e-12));
    }

    #[test]
    fn numerically_stable_under_large_offset() {
        // Catastrophic-cancellation stress: tiny variance on a huge mean.
        // A naive Σx²−(Σx)²/n formulation loses all precision here; the
        // one-pass update must not.
        let offset = 1.0e9;
        let data: Vec<f64> = (0..1000).map(|i| offset + (i % 7) as f64).collect();
        let m = Moments::from_slice(&data);
        let centered: Vec<f64> = data.iter().map(|x| x - offset).collect();
        let exact = Moments::from_slice(&centered);
        // The mean itself is stored at the 1e9 scale, so one ulp there is
        // ~1.2e-7; allow a few ulps.
        assert!((m.mean - offset - exact.mean).abs() < 1e-5);
        assert!(close(m.m2, exact.m2, 1e-6));
    }

    #[test]
    fn wire_size_matches_struct_payload() {
        assert_eq!(Moments::WIRE_BYTES, 7 * 8);
    }
}
