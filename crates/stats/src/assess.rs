//! The `assess` stage: annotate observations relative to a model.

use crate::Derived;
use serde::{Deserialize, Serialize};

/// Per-observation annotation produced by [`assess`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Assessment {
    /// The observation itself.
    pub value: f64,
    /// Signed deviation from the mean in standard deviations (z-score).
    /// 0 when the model is degenerate (zero variance).
    pub z_score: f64,
    /// True if `|z| > threshold` used at assess time.
    pub is_outlier: bool,
}

/// Annotate each observation with its z-score relative to `model`, marking
/// values beyond `outlier_sigma` standard deviations as outliers.
///
/// `assess` is embarrassingly data-parallel and needs no communication; in
/// the hybrid framework it can run in-situ against a model broadcast from
/// the in-transit `derive` stage (e.g. to flag ignition-kernel cells in
/// the timestep that produced them).
pub fn assess(data: &[f64], model: &Derived, outlier_sigma: f64) -> Vec<Assessment> {
    data.iter()
        .map(|&value| {
            let z_score = if model.std_dev > 0.0 {
                (value - model.mean) / model.std_dev
            } else {
                0.0
            };
            Assessment {
                value,
                z_score,
                is_outlier: z_score.abs() > outlier_sigma,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{derive, Moments};

    fn model_of(data: &[f64]) -> Derived {
        derive(&Moments::from_slice(data)).unwrap()
    }

    #[test]
    fn z_scores_standardize() {
        let data = [0.0, 10.0];
        let m = model_of(&data);
        let a = assess(&data, &m, 3.0);
        // Two symmetric points: z = ∓ 1/√2 · √2 = ∓ 0.707… with sample sd.
        assert!((a[0].z_score + a[1].z_score).abs() < 1e-12);
        assert!(a[0].z_score < 0.0 && a[1].z_score > 0.0);
    }

    #[test]
    fn outlier_flagging() {
        let mut data = vec![1.0; 99];
        data.push(50.0);
        let m = model_of(&data);
        let a = assess(&data, &m, 3.0);
        assert!(a[99].is_outlier);
        assert_eq!(a.iter().filter(|x| x.is_outlier).count(), 1);
    }

    #[test]
    fn degenerate_model_yields_zero_z() {
        let data = [7.0; 10];
        let m = model_of(&data);
        let a = assess(&[7.0, 100.0], &m, 3.0);
        assert_eq!(a[0].z_score, 0.0);
        assert_eq!(a[1].z_score, 0.0);
        assert!(!a[1].is_outlier);
    }

    #[test]
    fn assess_against_foreign_model() {
        // Assessing data against a model learned elsewhere (the hybrid
        // broadcast path).
        let m = model_of(&[0.0, 1.0, 2.0, 3.0, 4.0]);
        let a = assess(&[2.0], &m, 3.0);
        assert!((a[0].z_score).abs() < 1e-12); // 2.0 is the mean
    }
}
