//! # sitra-stats
//!
//! Numerically stable, single-pass, parallel descriptive statistics — the
//! Rust reimplementation of the VTK parallel-statistics toolkit used by
//! the SC'12 paper (Bennett/Pébay/Thompson: "Numerically stable,
//! single-pass, parallel statistics algorithms").
//!
//! The toolkit follows the paper's four-stage design (its Fig. 4):
//!
//! * **learn** — build a primary statistical model (centered moment
//!   aggregates up to order four, extremes, cardinality) from raw
//!   observations. This is the *only* stage that ever needs inter-process
//!   communication: partial models from different ranks are merged with
//!   the exact pairwise combination formulas in [`moments::Moments::merge`].
//! * **derive** — turn a primary model into descriptive quantities
//!   (variance, standard deviation, skewness, excess kurtosis, ...).
//! * **assess** — annotate individual observations relative to a model
//!   (z-scores / relative deviations).
//! * **test** — compute test statistics for hypothesis testing from a
//!   model (Jarque–Bera normality test, one-sample t).
//!
//! Because `learn` produces a tiny, mergeable, serializable model, the
//! split maps directly onto the hybrid framework: ranks run `learn`
//! in-situ on their local block and ship the partial models (a few dozen
//! bytes per variable) to the staging area, where a single in-transit
//! bucket merges them and runs `derive`.

pub mod assess;
pub mod comoments;
pub mod derive;
pub mod histogram;
pub mod moments;
pub mod parallel;
pub mod testing;

pub use assess::{assess, Assessment};
pub use comoments::CoMoments;
pub use derive::{derive, Derived};
pub use histogram::Histogram;
pub use moments::Moments;
pub use parallel::{learn_all_reduce, learn_parallel, learn_serial, MultiModel};
pub use testing::{jarque_bera, t_statistic};
