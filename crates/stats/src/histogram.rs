//! Fixed-bin histograms with exact merging.

use serde::{Deserialize, Serialize};

/// A fixed-range, fixed-width histogram that merges exactly across ranks.
///
/// Order statistics (quantiles) are not derivable from moments, so the
/// hybrid stats pipeline optionally ships one of these per variable
/// alongside the [`crate::Moments`] model. The payload is `bins + 2`
/// counters — still orders of magnitude smaller than the raw block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Observations below `lo`.
    pub underflow: u64,
    /// Observations at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Histogram over `[lo, hi)` with `bins` equal-width bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "empty range");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Reconstruct a histogram from raw parts (e.g. after receiving its
    /// wire encoding from another rank).
    pub fn from_parts(lo: f64, hi: f64, counts: Vec<u64>, underflow: u64, overflow: u64) -> Self {
        assert!(!counts.is_empty(), "need at least one bin");
        assert!(hi > lo, "empty range");
        Self {
            lo,
            hi,
            counts,
            underflow,
            overflow,
        }
    }

    /// Range lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Range upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of bins.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Record one observation. NaNs count as underflow (they compare false
    /// to everything, and silently dropping data would corrupt `total`).
    #[inline]
    pub fn push(&mut self, x: f64) {
        if x.is_nan() || x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let b = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
            self.counts[b] += 1;
        }
    }

    /// Record a whole slice.
    pub fn extend(&mut self, data: &[f64]) {
        for &x in data {
            self.push(x);
        }
    }

    /// Merge a histogram with identical binning. Panics on mismatched
    /// ranges or bin counts (merging different binnings is lossy and is
    /// deliberately not supported).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo, other.lo, "range mismatch");
        assert_eq!(self.hi, other.hi, "range mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
    }

    /// Approximate quantile `q ∈ [0,1]` assuming uniform density within a
    /// bin. Under/overflow mass is attributed to the range ends. Returns
    /// `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.total();
        if total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * total as f64;
        let mut acc = self.underflow as f64;
        if target <= acc {
            return Some(self.lo);
        }
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = acc + c as f64;
            if target <= next && c > 0 {
                let frac = (target - acc) / c as f64;
                return Some(self.lo + w * (i as f64 + frac));
            }
            acc = next;
        }
        Some(self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_boundaries() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.push(0.0); // first bin
        h.push(9.999); // last bin
        h.push(10.0); // overflow (half-open)
        h.push(-0.001); // underflow
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn nan_counts_as_underflow() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(f64::NAN);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37) % 10.0).collect();
        let mut whole = Histogram::new(0.0, 10.0, 20);
        whole.extend(&data);
        let mut a = Histogram::new(0.0, 10.0, 20);
        a.extend(&data[..200]);
        let mut b = Histogram::new(0.0, 10.0, 20);
        b.extend(&data[200..]);
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    #[should_panic]
    fn merge_mismatched_bins_panics() {
        let mut a = Histogram::new(0.0, 1.0, 4);
        let b = Histogram::new(0.0, 1.0, 8);
        a.merge(&b);
    }

    #[test]
    fn quantiles_of_uniform() {
        let mut h = Histogram::new(0.0, 1.0, 100);
        for i in 0..10_000 {
            h.push(i as f64 / 10_000.0);
        }
        assert!((h.quantile(0.5).unwrap() - 0.5).abs() < 0.02);
        assert!((h.quantile(0.9).unwrap() - 0.9).abs() < 0.02);
        assert_eq!(h.quantile(0.0).unwrap(), 0.0);
    }

    #[test]
    fn quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert!(h.quantile(0.5).is_none());
    }

    #[test]
    fn quantile_monotone() {
        let mut h = Histogram::new(-5.0, 5.0, 32);
        let data: Vec<f64> = (0..999)
            .map(|i| ((i * 7919) % 1000) as f64 / 100.0 - 5.0)
            .collect();
        h.extend(&data);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = h.quantile(i as f64 / 20.0).unwrap();
            assert!(q >= prev, "quantiles must be monotone");
            prev = q;
        }
    }
}
