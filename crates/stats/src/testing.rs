//! The `test` stage: test statistics for hypothesis testing.

use crate::Derived;

/// Jarque–Bera normality test statistic:
/// `JB = n/6 · (g1² + g2²/4)` where `g1` is skewness and `g2` excess
/// kurtosis. Under normality JB is asymptotically χ²(2); values ≫ 6
/// indicate strong departure from normality.
pub fn jarque_bera(model: &Derived) -> f64 {
    let n = model.count as f64;
    n / 6.0
        * (model.skewness * model.skewness + model.kurtosis_excess * model.kurtosis_excess / 4.0)
}

/// One-sample t statistic for the null hypothesis `mean == mu0`:
/// `t = (x̄ − μ₀) / (s / √n)`. Returns 0 for degenerate models where the
/// sample mean exactly equals `mu0`, and ±inf when variance is zero but
/// the means differ.
pub fn t_statistic(model: &Derived, mu0: f64) -> f64 {
    let n = model.count as f64;
    let diff = model.mean - mu0;
    if model.std_dev == 0.0 {
        return if diff == 0.0 {
            0.0
        } else {
            diff.signum() * f64::INFINITY
        };
    }
    diff / (model.std_dev / n.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{derive, Moments};

    fn model_of(data: &[f64]) -> Derived {
        derive(&Moments::from_slice(data)).unwrap()
    }

    #[test]
    fn jb_small_for_gaussian_like() {
        // Deterministic near-Gaussian data via inverse-CDF-ish sum of
        // uniforms (central limit): 12 uniforms per sample.
        let mut data = Vec::new();
        let mut state = 1u64;
        for _ in 0..5_000 {
            let mut s = 0.0;
            for _ in 0..12 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                s += (state >> 11) as f64 / (1u64 << 53) as f64;
            }
            data.push(s - 6.0);
        }
        let jb = jarque_bera(&model_of(&data));
        assert!(jb < 10.0, "JB = {jb}");
    }

    #[test]
    fn jb_large_for_skewed_data() {
        let data: Vec<f64> = (0..2_000)
            .map(|i| ((i % 100) as f64 / 10.0).exp())
            .collect();
        let jb = jarque_bera(&model_of(&data));
        assert!(jb > 100.0, "JB = {jb}");
    }

    #[test]
    fn t_zero_when_mean_matches() {
        let m = model_of(&[1.0, 2.0, 3.0]);
        assert_eq!(t_statistic(&m, 2.0), 0.0);
    }

    #[test]
    fn t_sign_follows_shift() {
        let m = model_of(&[1.0, 2.0, 3.0]);
        assert!(t_statistic(&m, 0.0) > 0.0);
        assert!(t_statistic(&m, 5.0) < 0.0);
    }

    #[test]
    fn t_grows_with_sample_size() {
        let small = model_of(&[0.9, 1.1, 1.0, 1.2, 0.8]);
        let big_data: Vec<f64> = (0..500)
            .map(|i| 1.0 + 0.2 * ((i % 5) as f64 - 2.0) / 2.0)
            .collect();
        let big = model_of(&big_data);
        assert!(t_statistic(&big, 0.5).abs() > t_statistic(&small, 0.5).abs());
    }

    #[test]
    fn t_degenerate_cases() {
        let m = model_of(&[4.0; 8]);
        assert_eq!(t_statistic(&m, 4.0), 0.0);
        assert_eq!(t_statistic(&m, 3.0), f64::INFINITY);
        assert_eq!(t_statistic(&m, 5.0), f64::NEG_INFINITY);
    }
}
