//! The `derive` stage: descriptive quantities from a primary model.

use crate::Moments;
use serde::{Deserialize, Serialize};

/// Descriptive statistics derived from a [`Moments`] model.
///
/// `derive` is pure local arithmetic — in the hybrid pipeline it runs on a
/// single in-transit bucket after the partial models are merged, which is
/// why the paper measures it at ~0.01 s against 1.69 s of in-situ `learn`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Derived {
    /// Number of observations.
    pub count: u64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Unbiased sample variance (n−1 denominator).
    pub variance: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Skewness `g1 = √n · M3 / M2^(3/2)`.
    pub skewness: f64,
    /// Excess kurtosis `g2 = n · M4 / M2² − 3`.
    pub kurtosis_excess: f64,
}

/// Derive descriptive statistics from a primary model.
///
/// Returns `None` for an empty model. For degenerate data (constant
/// values, `M2 == 0`) skewness and kurtosis are reported as 0.
pub fn derive(m: &Moments) -> Option<Derived> {
    if m.n == 0 {
        return None;
    }
    let n = m.n as f64;
    let variance = if m.n > 1 { m.m2 / (n - 1.0) } else { 0.0 };
    let (skewness, kurtosis_excess) = if m.m2 > 0.0 {
        (
            n.sqrt() * m.m3 / m.m2.powf(1.5),
            n * m.m4 / (m.m2 * m.m2) - 3.0,
        )
    } else {
        (0.0, 0.0)
    };
    Some(Derived {
        count: m.n,
        min: m.min,
        max: m.max,
        mean: m.mean,
        variance,
        std_dev: variance.sqrt(),
        skewness,
        kurtosis_excess,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_returns_none() {
        assert!(derive(&Moments::new()).is_none());
    }

    #[test]
    fn single_value_is_degenerate() {
        let d = derive(&Moments::from_slice(&[5.0])).unwrap();
        assert_eq!(d.variance, 0.0);
        assert_eq!(d.std_dev, 0.0);
        assert_eq!(d.skewness, 0.0);
        assert_eq!(d.kurtosis_excess, 0.0);
    }

    #[test]
    fn constant_data_is_degenerate() {
        let d = derive(&Moments::from_slice(&[3.0; 100])).unwrap();
        assert_eq!(d.mean, 3.0);
        assert_eq!(d.variance, 0.0);
        assert_eq!(d.skewness, 0.0);
    }

    #[test]
    fn known_values() {
        // Classic example data set.
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let d = derive(&Moments::from_slice(&data)).unwrap();
        assert!((d.mean - 5.0).abs() < 1e-12);
        // Population variance is 4 => sample variance 32/7.
        assert!((d.variance - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!((d.min, d.max), (2.0, 9.0));
    }

    #[test]
    fn symmetric_data_zero_skew() {
        let data = [-3.0, -1.0, 0.0, 1.0, 3.0];
        let d = derive(&Moments::from_slice(&data)).unwrap();
        assert!(d.skewness.abs() < 1e-12);
    }

    #[test]
    fn right_tailed_data_positive_skew() {
        let data = [1.0, 1.0, 1.0, 1.0, 100.0];
        let d = derive(&Moments::from_slice(&data)).unwrap();
        assert!(d.skewness > 1.0);
    }

    #[test]
    fn uniform_kurtosis_negative_gaussian_near_zero() {
        // Discrete uniform has excess kurtosis ≈ -1.2.
        let data: Vec<f64> = (0..10_000).map(|i| i as f64 / 10_000.0).collect();
        let d = derive(&Moments::from_slice(&data)).unwrap();
        assert!(
            (d.kurtosis_excess + 1.2).abs() < 0.05,
            "{}",
            d.kurtosis_excess
        );
    }
}
