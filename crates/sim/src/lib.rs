//! # sitra-sim
//!
//! A synthetic turbulent-combustion simulation proxy standing in for S3D
//! (the massively parallel DNS code of the paper's case study: a lifted
//! hydrogen jet flame in heated coflow).
//!
//! The proxy is *not* a Navier–Stokes solver — the analyses under study
//! never look at the solver, only at the fields it produces. What the
//! analyses do care about, and what this crate reproduces faithfully, is
//! the *structure* of the data:
//!
//! * **14 double-precision variables** on a block-decomposed structured
//!   grid (temperature, pressure, three velocity components, and nine
//!   H2/air species mass fractions), matching the paper's variable count
//!   and data volume per grid point.
//! * **Multi-scale smooth turbulence**: a superposition of solenoidal
//!   Fourier modes with a k^(-5/6) amplitude spectrum advected in time.
//! * **Intermittent, short-lived, advected features**: ignition kernels
//!   spawn stochastically near the flame base, are advected by the local
//!   velocity, grow and dissipate within ~10 simulation steps — the Fig. 1
//!   phenomenology that motivates high-frequency concurrent analysis.
//!
//! Any block of any variable at the current step can be generated
//! directly and deterministically (given the seed), so ranks fill their
//! blocks independently and in parallel exactly as S3D ranks own their
//! sub-domains.

pub mod chemistry;
pub mod kernels;
pub mod modes;
pub mod rng;
pub mod sim;

pub use chemistry::{species_mass_fractions, SPECIES_NAMES};
pub use kernels::IgnitionKernel;
pub use sim::{SimConfig, Simulation, Variable, ALL_VARIABLES};
