//! A tiny deterministic RNG for the simulation proxy.
//!
//! The proxy's requirements are reproducibility, cloneability (the whole
//! simulation state is `Clone` so experiments can fork timelines), and
//! speed — not statistical perfection. SplitMix64 satisfies all three in
//! a dozen lines and keeps the simulation free of external RNG state.

/// SplitMix64 (Steele, Lea, Flood 2014).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut r = SplitMix64::new(7);
        let mut sum = 0.0;
        let n = 10_000;
        for _ in 0..n {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let v = r.range(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&v));
        }
    }
}
