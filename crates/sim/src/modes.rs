//! Synthetic turbulence: a superposition of solenoidal Fourier modes.

use crate::rng::SplitMix64;

/// One traveling Fourier mode with a polarization chosen perpendicular to
/// its wave vector, so the velocity field it induces is divergence-free.
#[derive(Debug, Clone, Copy)]
pub struct Mode {
    /// Wave vector (radians per grid unit).
    pub k: [f64; 3],
    /// Polarization (unit, perpendicular to `k`).
    pub pol: [f64; 3],
    /// Amplitude.
    pub amp: f64,
    /// Temporal angular frequency.
    pub omega: f64,
    /// Phase offset.
    pub phase: f64,
}

fn cross(a: [f64; 3], b: [f64; 3]) -> [f64; 3] {
    [
        a[1] * b[2] - a[2] * b[1],
        a[2] * b[0] - a[0] * b[2],
        a[0] * b[1] - a[1] * b[0],
    ]
}

fn norm(a: [f64; 3]) -> f64 {
    (a[0] * a[0] + a[1] * a[1] + a[2] * a[2]).sqrt()
}

/// A bank of modes evaluated together.
#[derive(Debug, Clone)]
pub struct ModeBank {
    modes: Vec<Mode>,
    rms: f64,
}

impl ModeBank {
    /// Generate `n` modes with wavelengths between `min_wavelength` and
    /// `max_wavelength` grid units and a Kolmogorov-like amplitude decay
    /// (`amp ∝ |k|^(-5/6)`, the velocity scaling of a k^(-5/3) energy
    /// spectrum). Deterministic in `seed`.
    pub fn new(seed: u64, n: usize, min_wavelength: f64, max_wavelength: f64) -> Self {
        assert!(min_wavelength > 0.0 && max_wavelength > min_wavelength);
        let mut rng = SplitMix64::new(seed);
        let mut modes = Vec::with_capacity(n);
        while modes.len() < n {
            // Log-uniform wavelength, random direction.
            let lw = rng.next_f64();
            let wavelength = min_wavelength * (max_wavelength / min_wavelength).powf(lw);
            let kmag = std::f64::consts::TAU / wavelength;
            let dir = loop {
                let d = [
                    rng.range(-1.0, 1.0),
                    rng.range(-1.0, 1.0),
                    rng.range(-1.0, 1.0),
                ];
                let n = norm(d);
                if n > 1e-3 && n <= 1.0 {
                    break [d[0] / n, d[1] / n, d[2] / n];
                }
            };
            let k = [dir[0] * kmag, dir[1] * kmag, dir[2] * kmag];
            // Any vector not parallel to k, crossed with k, is a valid
            // solenoidal polarization.
            let helper = if dir[0].abs() < 0.9 {
                [1.0, 0.0, 0.0]
            } else {
                [0.0, 1.0, 0.0]
            };
            let mut pol = cross(k, helper);
            let pn = norm(pol);
            if pn < 1e-9 {
                continue;
            }
            pol = [pol[0] / pn, pol[1] / pn, pol[2] / pn];
            let amp = kmag.powf(-5.0 / 6.0);
            let omega = 0.2 * kmag; // sweep slowly with the large scales
            let phase = rng.next_f64() * std::f64::consts::TAU;
            modes.push(Mode {
                k,
                pol,
                amp,
                omega,
                phase,
            });
        }
        // RMS of the scalar sum (independent phases): sqrt(Σ amp²/2).
        let rms = (modes.iter().map(|m| m.amp * m.amp).sum::<f64>() / 2.0)
            .sqrt()
            .max(1e-12);
        Self { modes, rms }
    }

    /// RMS amplitude of [`ModeBank::scalar`] (and of each velocity
    /// component, approximately). Callers use it to normalize the
    /// fluctuation level independently of the mode count and bandwidth.
    pub fn rms(&self) -> f64 {
        self.rms
    }

    /// Velocity fluctuation at a position and time.
    pub fn velocity(&self, pos: [f64; 3], t: f64) -> [f64; 3] {
        let mut v = [0.0; 3];
        for m in &self.modes {
            let arg = m.k[0] * pos[0] + m.k[1] * pos[1] + m.k[2] * pos[2] + m.omega * t + m.phase;
            let c = m.amp * arg.cos();
            v[0] += c * m.pol[0];
            v[1] += c * m.pol[1];
            v[2] += c * m.pol[2];
        }
        v
    }

    /// A smooth scalar fluctuation field built from the same modes
    /// (projection onto a fixed direction), used to perturb temperature
    /// and mixture fraction.
    pub fn scalar(&self, pos: [f64; 3], t: f64) -> f64 {
        let mut s = 0.0;
        for m in &self.modes {
            let arg = m.k[0] * pos[0] + m.k[1] * pos[1] + m.k[2] * pos[2] + m.omega * t + m.phase;
            s += m.amp * arg.sin();
        }
        s
    }

    /// The modes themselves.
    pub fn modes(&self) -> &[Mode] {
        &self.modes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = ModeBank::new(7, 16, 4.0, 32.0);
        let b = ModeBank::new(7, 16, 4.0, 32.0);
        let c = ModeBank::new(8, 16, 4.0, 32.0);
        let p = [1.3, 2.7, 9.1];
        assert_eq!(a.velocity(p, 0.5), b.velocity(p, 0.5));
        assert_ne!(a.velocity(p, 0.5), c.velocity(p, 0.5));
    }

    #[test]
    fn polarizations_are_solenoidal() {
        let bank = ModeBank::new(3, 32, 2.0, 64.0);
        for m in bank.modes() {
            let dot = m.k[0] * m.pol[0] + m.k[1] * m.pol[1] + m.k[2] * m.pol[2];
            assert!(dot.abs() < 1e-9, "k·pol = {dot}");
            let pn = (m.pol[0].powi(2) + m.pol[1].powi(2) + m.pol[2].powi(2)).sqrt();
            assert!((pn - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn velocity_divergence_free_numerically() {
        // Central-difference divergence must vanish (to O(h²) of the
        // smallest wavelength) relative to the velocity magnitude.
        let bank = ModeBank::new(11, 24, 8.0, 64.0);
        let h = 1e-4;
        for &p in &[[3.0, 4.0, 5.0], [10.5, 0.2, 7.7], [0.0, 0.0, 0.0]] {
            let mut div = 0.0;
            for a in 0..3 {
                let mut pp = p;
                let mut pm = p;
                pp[a] += h;
                pm[a] -= h;
                div += (bank.velocity(pp, 1.0)[a] - bank.velocity(pm, 1.0)[a]) / (2.0 * h);
            }
            let mag = norm(bank.velocity(p, 1.0)).max(1e-9);
            assert!(div.abs() / mag < 1e-5, "div {div} mag {mag}");
        }
    }

    #[test]
    fn field_evolves_in_time() {
        let bank = ModeBank::new(5, 16, 4.0, 32.0);
        let p = [5.0, 5.0, 5.0];
        assert_ne!(bank.velocity(p, 0.0), bank.velocity(p, 3.0));
        assert_ne!(bank.scalar(p, 0.0), bank.scalar(p, 3.0));
    }

    #[test]
    fn amplitude_decays_with_wavenumber() {
        let bank = ModeBank::new(9, 64, 2.0, 128.0);
        let mut pairs: Vec<(f64, f64)> = bank.modes().iter().map(|m| (norm(m.k), m.amp)).collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // The smallest-wavenumber mode must have a larger amplitude than
        // the largest-wavenumber one.
        assert!(pairs.first().unwrap().1 > pairs.last().unwrap().1);
    }
}
