//! The simulation proxy proper: configuration, time stepping, and
//! per-block field generation.

use crate::chemistry::species_mass_fractions;
use crate::kernels::KernelPopulation;
use crate::modes::ModeBank;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use sitra_mesh::{BBox3, ScalarField};

/// The 14 simulation variables, in storage order (matching the paper's
/// variable count for the lifted H2 flame).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variable {
    /// Temperature (K).
    Temperature,
    /// Pressure (atm).
    Pressure,
    /// Velocity x.
    VelU,
    /// Velocity y.
    VelV,
    /// Velocity z.
    VelW,
    /// Species mass fraction by index into
    /// [`crate::chemistry::SPECIES_NAMES`].
    Species(usize),
}

/// All 14 variables in canonical order.
pub const ALL_VARIABLES: [Variable; 14] = [
    Variable::Temperature,
    Variable::Pressure,
    Variable::VelU,
    Variable::VelV,
    Variable::VelW,
    Variable::Species(0),
    Variable::Species(1),
    Variable::Species(2),
    Variable::Species(3),
    Variable::Species(4),
    Variable::Species(5),
    Variable::Species(6),
    Variable::Species(7),
    Variable::Species(8),
];

impl Variable {
    /// Canonical variable name (S3D-style).
    pub fn name(self) -> &'static str {
        match self {
            Variable::Temperature => "T",
            Variable::Pressure => "P",
            Variable::VelU => "U",
            Variable::VelV => "V",
            Variable::VelW => "W",
            Variable::Species(i) => crate::chemistry::SPECIES_NAMES[i],
        }
    }
}

/// Simulation configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Global grid dimensions.
    pub dims: [usize; 3],
    /// RNG seed: two runs with the same seed produce identical fields.
    pub seed: u64,
    /// Number of turbulence modes.
    pub n_modes: usize,
    /// Smallest resolved turbulent wavelength (grid units).
    pub min_wavelength: f64,
    /// Largest turbulent wavelength (grid units).
    pub max_wavelength: f64,
    /// Expected ignition-kernel spawns per step.
    pub kernel_spawn_rate: f64,
    /// Kernel lifetime in steps (the paper's intermittent features live
    /// ~10 steps).
    pub kernel_lifetime: u64,
    /// Kernel peak temperature excursion (K).
    pub kernel_amplitude: f64,
    /// Kernel Gaussian radius (grid units).
    pub kernel_radius: f64,
    /// Time step.
    pub dt: f64,
    /// Mean (jet) flow velocity.
    pub mean_flow: [f64; 3],
}

impl SimConfig {
    /// A small default suitable for tests and examples.
    pub fn small(dims: [usize; 3], seed: u64) -> Self {
        Self {
            dims,
            seed,
            n_modes: 16,
            // DNS resolves the smallest structures over many grid points;
            // keep the finest mode well above the grid spacing so gradients
            // (and hence the topological feature density) are grid-resolved.
            // Tiny test domains scale the band down so it stays non-empty.
            min_wavelength: (dims[0].max(dims[1]).max(dims[2]) as f64 / 4.0).clamp(4.0, 12.0),
            max_wavelength: {
                let maxdim = dims[0].max(dims[1]).max(dims[2]) as f64;
                let min_wl = (maxdim / 4.0).clamp(4.0, 12.0);
                maxdim.max(2.0 * min_wl)
            },
            kernel_spawn_rate: 0.5,
            kernel_lifetime: 10,
            kernel_amplitude: 800.0,
            kernel_radius: dims[0].max(8) as f64 * 0.06,
            dt: 0.5,
            mean_flow: [0.8, 0.0, 0.0],
        }
    }
}

/// The lifted-jet-flame proxy simulation.
///
/// Only the ignition-kernel population is stateful; every field is an
/// analytic function of (position, time, kernels), so any block of any
/// variable can be generated independently on any rank.
#[derive(Debug, Clone)]
pub struct Simulation {
    cfg: SimConfig,
    modes: ModeBank,
    kernels: KernelPopulation,
    step: u64,
}

impl Simulation {
    /// Create a simulation at step 0.
    pub fn new(cfg: SimConfig) -> Self {
        let modes = ModeBank::new(
            cfg.seed,
            cfg.n_modes,
            cfg.min_wavelength,
            cfg.max_wavelength,
        );
        let kernels = KernelPopulation::new(
            cfg.seed,
            cfg.kernel_spawn_rate,
            cfg.kernel_lifetime,
            cfg.kernel_amplitude,
            cfg.kernel_radius,
            cfg.dims,
            // Kernels form near the flame base: upstream third of x, in
            // the shear layer annulus of the jet.
            [0.05, 0.25, 0.25],
            [0.35, 0.75, 0.75],
        );
        Self {
            cfg,
            modes,
            kernels,
            step: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Current step number.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Current simulated time.
    pub fn time(&self) -> f64 {
        self.step as f64 * self.cfg.dt
    }

    /// The live ignition kernels.
    pub fn kernels(&self) -> &crate::kernels::KernelPopulation {
        &self.kernels
    }

    /// The global domain box.
    pub fn global(&self) -> BBox3 {
        BBox3::from_dims(self.cfg.dims)
    }

    /// Advance one time step.
    pub fn advance(&mut self) {
        self.step += 1;
        let (step, dt, mean) = (self.step, self.cfg.dt, self.cfg.mean_flow);
        let modes = self.modes.clone();
        self.kernels.advance(step, dt, &modes, mean);
    }

    /// Mixture fraction at a position: a round jet along x with a shear
    /// layer thickening downstream, wrinkled by the turbulence.
    fn mixture_fraction(&self, pos: [f64; 3], t: f64) -> f64 {
        let d = self.cfg.dims;
        let cy = d[1] as f64 / 2.0;
        let cz = d[2] as f64 / 2.0;
        let r2 = (pos[1] - cy).powi(2) + (pos[2] - cz).powi(2);
        // Jet core radius grows downstream; centerline value decays.
        let xfrac = (pos[0] / d[0] as f64).clamp(0.0, 1.0);
        let r_jet = d[1] as f64 * (0.12 + 0.18 * xfrac);
        let decay = 1.0 / (1.0 + 2.0 * xfrac);
        let base = decay * (-r2 / (2.0 * r_jet * r_jet)).exp();
        // Normalized wrinkling: ±8% of the profile at one RMS, so the
        // flame surface stays grid-resolved regardless of mode bandwidth.
        let wrinkle = 0.08 * self.modes.scalar(pos, t) / self.modes.rms();
        (base + wrinkle).clamp(0.0, 1.0)
    }

    /// Reaction progress from kernels and downstream position: the lifted
    /// flame burns downstream of the lift-off height, and ignition
    /// kernels ignite pockets upstream.
    fn progress(&self, pos: [f64; 3], t: f64) -> f64 {
        let xfrac = (pos[0] / self.cfg.dims[0] as f64).clamp(0.0, 1.0);
        // Smooth lift-off at 40% of the domain.
        let downstream = 1.0 / (1.0 + (-(xfrac - 0.4) * 20.0).exp());
        let kernel_boost = self.kernels.contribution(pos, self.step) / self.cfg.kernel_amplitude;
        let _ = t;
        (downstream + kernel_boost).clamp(0.0, 1.0)
    }

    /// Velocity fluctuation scaled to ~30% turbulence intensity of the
    /// mean flow.
    fn turbulence(&self, pos: [f64; 3], t: f64) -> [f64; 3] {
        let v = self.modes.velocity(pos, t);
        let scale = 0.3 * self.cfg.mean_flow[0].abs().max(0.5) / self.modes.rms();
        [v[0] * scale, v[1] * scale, v[2] * scale]
    }

    /// Point sample of one variable at the current step.
    pub fn sample(&self, var: Variable, pos: [f64; 3]) -> f64 {
        let t = self.time();
        match var {
            Variable::Temperature => {
                let z = self.mixture_fraction(pos, t);
                let c = self.progress(pos, t);
                // Flame temperature peaks near a stoichiometric mixture
                // fraction. The profile width is chosen so the front
                // spans several grid cells — DNS data is grid-resolved by
                // definition, and an under-resolved kink would alias into
                // spurious topological features. (Physical H2 has
                // z_st ≈ 0.028; the proxy uses a wider effective value.)
                let zst = 0.15;
                let w = 0.12;
                let flame = (-((z - zst) / w).powi(2)).exp();
                let coflow = 1100.0; // heated coflow
                let jet = 300.0;
                let unburnt = jet * z + coflow * (1.0 - z);
                let burnt = unburnt + 1300.0 * flame;
                let base = unburnt + (burnt - unburnt) * c;
                base + self.kernels.contribution(pos, self.step)
                    + 15.0 * self.modes.scalar(pos, t) / self.modes.rms()
            }
            Variable::Pressure => 1.0 + 0.002 * self.modes.scalar(pos, t * 1.3) / self.modes.rms(),
            Variable::VelU => self.cfg.mean_flow[0] + self.turbulence(pos, t)[0],
            Variable::VelV => self.cfg.mean_flow[1] + self.turbulence(pos, t)[1],
            Variable::VelW => self.cfg.mean_flow[2] + self.turbulence(pos, t)[2],
            Variable::Species(i) => {
                let z = self.mixture_fraction(pos, t);
                let c = self.progress(pos, t);
                species_mass_fractions(z, c)[i]
            }
        }
    }

    /// Fill a block of one variable (grid-point samples), in parallel.
    pub fn block_field(&self, var: Variable, bbox: &BBox3) -> ScalarField {
        let n = bbox.count();
        let data: Vec<f64> = (0..n)
            .into_par_iter()
            .map(|i| {
                let p = bbox.coord_of(i);
                self.sample(var, [p[0] as f64, p[1] as f64, p[2] as f64])
            })
            .collect();
        ScalarField::from_vec(*bbox, data)
    }

    /// Bytes of one full snapshot (all variables over the whole domain) —
    /// the quantity Table I calls "data size".
    pub fn snapshot_bytes(&self) -> usize {
        self.global().count() * ALL_VARIABLES.len() * sitra_mesh::BYTES_PER_VALUE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(dims: [usize; 3], seed: u64) -> Simulation {
        Simulation::new(SimConfig::small(dims, seed))
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = sim([16, 16, 16], 11);
        let mut b = sim([16, 16, 16], 11);
        for _ in 0..5 {
            a.advance();
            b.advance();
        }
        let g = a.global();
        for var in [Variable::Temperature, Variable::VelU, Variable::Species(2)] {
            assert_eq!(a.block_field(var, &g), b.block_field(var, &g));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = sim([12, 12, 12], 1);
        let b = sim([12, 12, 12], 2);
        let g = a.global();
        assert_ne!(
            a.block_field(Variable::Temperature, &g),
            b.block_field(Variable::Temperature, &g)
        );
    }

    #[test]
    fn temperature_in_physical_range() {
        let mut s = sim([20, 16, 16], 3);
        for _ in 0..12 {
            s.advance();
        }
        let f = s.block_field(Variable::Temperature, &s.global());
        let (mn, mx) = f.min_max().unwrap();
        assert!(mn > 150.0, "min temperature {mn}");
        assert!(mx < 3500.0, "max temperature {mx}");
        // The flame must actually be hot somewhere.
        assert!(mx > 1200.0, "no flame? max {mx}");
    }

    #[test]
    fn species_bounded_and_conservative() {
        let s = sim([10, 10, 10], 5);
        let g = s.global();
        let fields: Vec<ScalarField> = (0..9)
            .map(|i| s.block_field(Variable::Species(i), &g))
            .collect();
        for idx in 0..g.count() {
            let sum: f64 = fields.iter().map(|f| f.get_linear(idx)).sum();
            assert!((sum - 1.0).abs() < 1e-9, "mass not conserved: {sum}");
            for f in &fields {
                let v = f.get_linear(idx);
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn blocks_agree_with_global_field() {
        // Per-rank block generation must equal extracting from the global
        // field — ranks are independent.
        let s = sim([12, 10, 8], 7);
        let g = s.global();
        let whole = s.block_field(Variable::Temperature, &g);
        let d = sitra_mesh::Decomposition::new(g, [2, 2, 2]);
        for r in 0..d.rank_count() {
            let blk = s.block_field(Variable::Temperature, &d.block(r));
            assert_eq!(blk, whole.extract(&d.block(r)));
        }
    }

    #[test]
    fn fields_evolve_in_time() {
        let mut s = sim([12, 12, 12], 9);
        let g = s.global();
        let before = s.block_field(Variable::Temperature, &g);
        s.advance();
        let after = s.block_field(Variable::Temperature, &g);
        assert_ne!(before, after);
        assert_eq!(s.step(), 1);
    }

    #[test]
    fn kernels_create_transient_hotspots() {
        let mut s = Simulation::new(SimConfig {
            kernel_spawn_rate: 3.0,
            kernel_amplitude: 900.0,
            ..SimConfig::small([24, 24, 24], 13)
        });
        let mut saw_kernels = false;
        for _ in 0..15 {
            s.advance();
            if !s.kernels().kernels().is_empty() {
                saw_kernels = true;
                let k = s.kernels().kernels()[0];
                // The hotspot is visible in the temperature field.
                let at_center = s.sample(Variable::Temperature, k.center);
                let far = [
                    (k.center[0] + 10.0) % 24.0,
                    (k.center[1] + 10.0) % 24.0,
                    (k.center[2] + 10.0) % 24.0,
                ];
                let _ = far;
                assert!(at_center > 300.0);
            }
        }
        assert!(saw_kernels, "no kernels spawned in 15 steps at rate 3");
    }

    #[test]
    fn snapshot_bytes_matches_paper_formula() {
        // At paper scale: 1600×1372×430 × 14 vars × 8 B ≈ 98.5 GB.
        let s = Simulation::new(SimConfig::small([16, 16, 16], 1));
        assert_eq!(s.snapshot_bytes(), 16 * 16 * 16 * 14 * 8);
        let paper_points: usize = 1600 * 1372 * 430;
        let gb = (paper_points * 14 * 8) as f64 / 1e9;
        assert!((gb - 105.7).abs() < 1.0 || (98.0..107.0).contains(&gb));
    }

    #[test]
    fn smoothness_of_temperature() {
        // Neighboring grid points differ by a bounded amount (no noise).
        // Sharp jumps are allowed only at the (physical) flame front; the
        // bulk of the field must be smooth — i.e. this is structure, not
        // white noise.
        let s = sim([16, 16, 16], 21);
        let f = s.block_field(Variable::Temperature, &s.global());
        let b = f.bbox();
        let (mn, mx) = f.min_max().unwrap();
        let range = mx - mn;
        let mut jumps: Vec<f64> = Vec::new();
        for p in b.iter() {
            if p[0] + 1 < b.hi[0] {
                jumps.push((f.get(p) - f.get([p[0] + 1, p[1], p[2]])).abs());
            }
        }
        jumps.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = jumps[jumps.len() / 2];
        let max = *jumps.last().unwrap();
        assert!(
            median < 0.05 * range,
            "median jump {median} vs range {range}"
        );
        assert!(
            max < range,
            "max jump {max} exceeds the field range {range}"
        );
    }

    #[test]
    fn variable_names_and_count() {
        assert_eq!(ALL_VARIABLES.len(), 14);
        let names: Vec<&str> = ALL_VARIABLES.iter().map(|v| v.name()).collect();
        assert_eq!(names[0], "T");
        assert_eq!(names[5], "Y_H2");
        assert_eq!(names[13], "Y_N2");
        // Names are unique.
        let set: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(set.len(), 14);
    }
}
