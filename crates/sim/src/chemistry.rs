//! A reduced H2/air "chemistry": species mass fractions as smooth
//! functions of mixture fraction and temperature.
//!
//! The proxy does not integrate chemical kinetics; it needs species
//! fields that are plausible in structure (bounded, summing to one,
//! correlated with temperature and mixing) so that multi-variable
//! analyses exercise realistic data.

/// The nine species tracked by the lifted hydrogen flame case.
pub const SPECIES_NAMES: [&str; 9] = [
    "Y_H2", "Y_O2", "Y_H2O", "Y_H", "Y_O", "Y_OH", "Y_HO2", "Y_H2O2", "Y_N2",
];

/// Mass fractions of the nine species given mixture fraction `z ∈ [0,1]`
/// (1 = pure fuel stream) and a normalized reaction progress `c ∈ [0,1]`
/// (derived from temperature). Returns values in `[0,1]` summing to 1.
pub fn species_mass_fractions(z: f64, c: f64) -> [f64; 9] {
    let z = z.clamp(0.0, 1.0);
    let c = c.clamp(0.0, 1.0);
    // Unburnt mixture: fuel stream is pure H2, oxidizer stream is air
    // (23.3% O2, 76.7% N2 by mass).
    let h2_u = z;
    let o2_u = (1.0 - z) * 0.233;
    let n2 = (1.0 - z) * 0.767;
    // Burning consumes fuel and oxidizer stoichiometrically (8 kg O2 per
    // kg H2), limited by the lean side, producing H2O and a small pool of
    // radicals that peaks at intermediate progress.
    let burnable_h2 = h2_u.min(o2_u / 8.0);
    let reacted = burnable_h2 * c;
    let h2 = h2_u - reacted;
    let o2 = o2_u - 8.0 * reacted;
    let h2o_raw = 9.0 * reacted;
    // Radical pool: a few percent of the product mass, peaking mid-burn.
    let radical_frac = 0.06 * (std::f64::consts::PI * c).sin();
    let radicals = h2o_raw * radical_frac;
    let h2o = h2o_raw - radicals;
    // Distribute the radical pool with fixed ratios.
    let y_h = radicals * 0.08;
    let y_o = radicals * 0.12;
    let y_oh = radicals * 0.55;
    let y_ho2 = radicals * 0.17;
    let y_h2o2 = radicals * 0.08;
    [h2, o2, h2o, y_h, y_o, y_oh, y_ho2, y_h2o2, n2]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_sum(z: f64, c: f64) {
        let y = species_mass_fractions(z, c);
        let sum: f64 = y.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "z={z} c={c} sum={sum}");
        for (i, v) in y.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(v),
                "species {} = {v} out of range at z={z} c={c}",
                SPECIES_NAMES[i]
            );
        }
    }

    #[test]
    fn mass_conserved_over_parameter_space() {
        for zi in 0..=20 {
            for ci in 0..=20 {
                check_sum(zi as f64 / 20.0, ci as f64 / 20.0);
            }
        }
    }

    #[test]
    fn pure_streams_unburnt() {
        let fuel = species_mass_fractions(1.0, 0.0);
        assert!((fuel[0] - 1.0).abs() < 1e-12); // pure H2
        let air = species_mass_fractions(0.0, 0.0);
        assert!((air[1] - 0.233).abs() < 1e-12);
        assert!((air[8] - 0.767).abs() < 1e-12);
    }

    #[test]
    fn burning_produces_water_consumes_reactants() {
        let z = 0.05; // near-stoichiometric lean-ish mixture
        let unburnt = species_mass_fractions(z, 0.0);
        let burnt = species_mass_fractions(z, 1.0);
        assert!(burnt[2] > unburnt[2], "H2O must increase");
        assert!(burnt[0] < unburnt[0], "H2 must decrease");
        assert!(burnt[1] < unburnt[1], "O2 must decrease");
    }

    #[test]
    fn radicals_peak_mid_burn() {
        let z = 0.05;
        let oh = |c: f64| species_mass_fractions(z, c)[5];
        assert!(oh(0.5) > oh(0.05));
        assert!(oh(0.5) > oh(1.0));
        assert_eq!(oh(0.0), 0.0);
    }

    #[test]
    fn clamps_out_of_range_inputs() {
        let a = species_mass_fractions(-0.5, 2.0);
        let b = species_mass_fractions(0.0, 1.0);
        assert_eq!(a, b);
    }
}
