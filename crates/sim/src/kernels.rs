//! Intermittent ignition kernels: the short-lived, advected features
//! whose temporal length-scale motivates concurrent analysis (Fig. 1).

use crate::modes::ModeBank;
use crate::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// One ignition kernel: a localized Gaussian temperature excursion that
/// ramps up, peaks, and dissipates over `lifetime` steps while being
/// advected by the flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IgnitionKernel {
    /// Step at which the kernel was born.
    pub birth_step: u64,
    /// Total lifetime in steps.
    pub lifetime: u64,
    /// Current center position (grid units).
    pub center: [f64; 3],
    /// Peak temperature excursion (K) at mid-life.
    pub amplitude: f64,
    /// Gaussian radius (grid units).
    pub radius: f64,
}

impl IgnitionKernel {
    /// Age in steps at `step`.
    pub fn age(&self, step: u64) -> u64 {
        step.saturating_sub(self.birth_step)
    }

    /// True if the kernel still exists at `step`.
    pub fn alive(&self, step: u64) -> bool {
        step >= self.birth_step && self.age(step) < self.lifetime
    }

    /// Life-cycle envelope in [0, 1]: 0 at birth and death, 1 at mid-life.
    pub fn envelope(&self, step: u64) -> f64 {
        if !self.alive(step) {
            return 0.0;
        }
        let t = (self.age(step) as f64 + 0.5) / self.lifetime as f64;
        (std::f64::consts::PI * t).sin()
    }

    /// Temperature contribution at a position.
    pub fn contribution(&self, pos: [f64; 3], step: u64) -> f64 {
        let e = self.envelope(step);
        if e == 0.0 {
            return 0.0;
        }
        let mut r2 = 0.0;
        for (p, c) in pos.iter().zip(&self.center) {
            let d = p - c;
            r2 += d * d;
        }
        self.amplitude * e * (-r2 / (2.0 * self.radius * self.radius)).exp()
    }
}

/// Manages the kernel population: stochastic spawning near the flame
/// base, advection by the resolved velocity, and removal at end of life.
#[derive(Debug, Clone)]
pub struct KernelPopulation {
    kernels: Vec<IgnitionKernel>,
    rng: SplitMix64,
    /// Expected spawns per step.
    spawn_rate: f64,
    lifetime: u64,
    amplitude: f64,
    radius: f64,
    /// Region in which kernels are born (fractions of the domain).
    spawn_lo: [f64; 3],
    spawn_hi: [f64; 3],
    domain_dims: [f64; 3],
    total_spawned: u64,
}

impl KernelPopulation {
    /// Create an empty population.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        seed: u64,
        spawn_rate: f64,
        lifetime: u64,
        amplitude: f64,
        radius: f64,
        domain_dims: [usize; 3],
        spawn_lo: [f64; 3],
        spawn_hi: [f64; 3],
    ) -> Self {
        assert!(lifetime > 0);
        Self {
            kernels: Vec::new(),
            rng: SplitMix64::new(seed ^ 0xEE6B_2800),
            spawn_rate,
            lifetime,
            amplitude,
            radius,
            spawn_lo,
            spawn_hi,
            domain_dims: [
                domain_dims[0] as f64,
                domain_dims[1] as f64,
                domain_dims[2] as f64,
            ],
            total_spawned: 0,
        }
    }

    /// Currently alive kernels.
    pub fn kernels(&self) -> &[IgnitionKernel] {
        &self.kernels
    }

    /// Total kernels ever spawned.
    pub fn total_spawned(&self) -> u64 {
        self.total_spawned
    }

    /// Advance one step: spawn, advect (forward Euler on the resolved
    /// velocity), retire the dead.
    pub fn advance(&mut self, step: u64, dt: f64, modes: &ModeBank, mean_flow: [f64; 3]) {
        // Retire.
        self.kernels.retain(|k| k.alive(step));
        // Advect the survivors.
        let t = step as f64 * dt;
        for k in &mut self.kernels {
            let v = modes.velocity(k.center, t);
            for a in 0..3 {
                k.center[a] += (v[a] + mean_flow[a]) * dt;
                // Keep centers inside the domain (clamp; kernels dying at
                // walls is fine, leaving the array is not).
                k.center[a] = k.center[a].clamp(0.0, self.domain_dims[a] - 1.0);
            }
        }
        // Spawn: Bernoulli per sub-attempt approximating a Poisson rate.
        let attempts = self.spawn_rate.ceil().max(1.0) as usize;
        let p = self.spawn_rate / attempts as f64;
        for _ in 0..attempts {
            if self.rng.next_f64() < p {
                let mut center = [0.0; 3];
                for (a, c) in center.iter_mut().enumerate() {
                    let lo = self.spawn_lo[a] * self.domain_dims[a];
                    let hi = self.spawn_hi[a] * self.domain_dims[a];
                    *c = lo + self.rng.next_f64() * (hi - lo).max(1e-9);
                }
                let jitter = 0.75 + 0.5 * self.rng.next_f64();
                self.kernels.push(IgnitionKernel {
                    birth_step: step,
                    lifetime: self.lifetime,
                    center,
                    amplitude: self.amplitude * jitter,
                    radius: self.radius * jitter,
                });
                self.total_spawned += 1;
            }
        }
    }

    /// Total temperature contribution of all kernels at a position.
    pub fn contribution(&self, pos: [f64; 3], step: u64) -> f64 {
        self.kernels.iter().map(|k| k.contribution(pos, step)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop(seed: u64, rate: f64) -> KernelPopulation {
        KernelPopulation::new(
            seed,
            rate,
            10,
            800.0,
            3.0,
            [32, 32, 32],
            [0.1, 0.2, 0.2],
            [0.4, 0.8, 0.8],
        )
    }

    #[test]
    fn lifecycle_envelope_shape() {
        let k = IgnitionKernel {
            birth_step: 100,
            lifetime: 10,
            center: [0.0; 3],
            amplitude: 500.0,
            radius: 2.0,
        };
        assert!(!k.alive(99));
        assert!(k.alive(100));
        assert!(k.alive(109));
        assert!(!k.alive(110));
        assert_eq!(k.envelope(99), 0.0);
        assert_eq!(k.envelope(110), 0.0);
        // Mid-life peak.
        assert!(k.envelope(105) > k.envelope(100));
        assert!(k.envelope(105) > k.envelope(109));
        // Contribution decays with distance.
        let near = k.contribution([1.0, 0.0, 0.0], 105);
        let far = k.contribution([8.0, 0.0, 0.0], 105);
        assert!(near > far);
        assert!(far >= 0.0);
    }

    #[test]
    fn population_spawns_and_retires() {
        let modes = ModeBank::new(1, 8, 4.0, 16.0);
        let mut p = pop(42, 1.0);
        for step in 0..50 {
            p.advance(step, 0.5, &modes, [1.0, 0.0, 0.0]);
        }
        assert!(p.total_spawned() > 10, "spawned {}", p.total_spawned());
        // Every live kernel is within its lifetime.
        for k in p.kernels() {
            assert!(k.alive(49));
            assert!(k.age(49) < 10);
        }
        // After a long quiet period with rate 0... kernels all die.
        let mut p2 = pop(42, 1.0);
        for step in 0..20 {
            p2.advance(step, 0.5, &modes, [0.0; 3]);
        }
        p2.spawn_rate = 0.0;
        for step in 20..40 {
            p2.advance(step, 0.5, &modes, [0.0; 3]);
        }
        assert!(p2.kernels().is_empty());
    }

    #[test]
    fn kernels_are_advected() {
        let modes = ModeBank::new(1, 8, 4.0, 16.0);
        let mut p = pop(7, 5.0);
        p.advance(0, 0.5, &modes, [2.0, 0.0, 0.0]);
        assert!(!p.kernels().is_empty());
        let before: Vec<[f64; 3]> = p.kernels().iter().map(|k| k.center).collect();
        p.spawn_rate = 0.0;
        p.advance(1, 0.5, &modes, [2.0, 0.0, 0.0]);
        for (k, b) in p.kernels().iter().zip(&before) {
            assert!(k.center[0] > b[0], "kernel not advected downstream");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let modes = ModeBank::new(1, 8, 4.0, 16.0);
        let mut a = pop(5, 2.0);
        let mut b = pop(5, 2.0);
        for step in 0..10 {
            a.advance(step, 0.5, &modes, [1.0, 0.0, 0.0]);
            b.advance(step, 0.5, &modes, [1.0, 0.0, 0.0]);
        }
        assert_eq!(a.kernels(), b.kernels());
    }

    #[test]
    fn centers_stay_in_domain() {
        let modes = ModeBank::new(3, 8, 4.0, 16.0);
        let mut p = pop(9, 3.0);
        for step in 0..200 {
            p.advance(step, 1.0, &modes, [5.0, 0.0, 0.0]);
            for k in p.kernels() {
                for a in 0..3 {
                    assert!(k.center[a] >= 0.0 && k.center[a] <= 31.0);
                }
            }
        }
    }
}
