//! `sitra-staged` — the standalone staging service.
//!
//! Runs one staging instance: a sharded shared space + FCFS in-transit
//! task scheduler served over a socket, so a simulation driver and any
//! number of bucket-worker processes can stage through it:
//!
//! ```text
//! sitra-staged --listen tcp://0.0.0.0:7788 --servers 4
//! ```
//!
//! `--listen` accepts any `sitra-net` scheme: `tcp://host:port` for
//! cross-machine deployment, `shm://name` for the same-node
//! shared-memory fast path (clients must run on the same host), or
//! `inproc://name` for tests.
//!
//! `--servers N` controls the **in-process space shards inside this one
//! instance** (lock striping for put/get parallelism); it does not
//! create more cluster members. To form a **multi-instance cluster**,
//! start several `sitra-staged` processes and either seed them with the
//! same full member list or have late ones join through any live
//! member:
//!
//! ```text
//! sitra-staged --listen tcp://a:7788 --cluster-seed tcp://a:7788,tcp://b:7788
//! sitra-staged --listen tcp://b:7788 --cluster-seed tcp://a:7788,tcp://b:7788
//! sitra-staged --listen tcp://c:7788 --cluster-join tcp://a:7788   # late joiner
//! ```
//!
//! The driver side points `PipelineConfig::with_staging_endpoint` at a
//! single instance (selecting the remote staging backend) or
//! `with_staging_cluster` at the full member list (consistent-hash
//! shard routing); workers call `run_bucket_worker` or
//! `run_cluster_bucket_worker` respectively. The process runs until the
//! scheduler is closed by a client (the driver does this when its run
//! finishes) or it receives SIGINT.
//!
//! Observability: `--metrics-listen host:port` exposes the live
//! [`sitra_obs`] registry (net/scheduler/space metrics) as a
//! Prometheus-style text snapshot over HTTP, and `--journal PATH`
//! appends every span event as one JSON line (replayable with
//! `obs_report`).

use bytes::Bytes;
use sitra_cluster::{Bootstrap, ClusterNode, ClusterNodeOpts};
use sitra_dataspaces::{
    AdmissionPolicy, AutoscaleConfig, Autoscaler, DataSpaces, LocalityPlacement, RemoteSpace,
    ScaleDecision, SchedStats, Scheduler, SpaceServer, SteerPublisher, SteerServer, TenantSpec,
};
use sitra_net::{Addr, Backoff};
use sitra_testkit::{CrashPlan, FaultPlan, PlanInjector};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// How this instance relates to other `sitra-staged` processes.
enum ClusterRole {
    /// Standalone: a single-instance staging service.
    None,
    /// Founding member: `--cluster-seed` carries the full member list
    /// (which must include our own `--listen` address).
    Seed(Vec<String>),
    /// Late joiner: `--cluster-join` names any live member to join
    /// through.
    Join(String),
}

struct Opts {
    listen: Addr,
    servers: usize,
    /// Print space/scheduler counters every this many seconds (0 = off).
    stats_every: u64,
    /// Serve a metrics snapshot over HTTP at this address.
    metrics_listen: Option<SocketAddr>,
    /// Append span events as JSONL to this path.
    journal: Option<PathBuf>,
    /// Bound on the task queue (None = unbounded).
    queue_capacity: Option<usize>,
    /// What to do with a submission arriving at a full queue.
    admission: AdmissionPolicy,
    /// Deterministic fault injection for chaos testing (see
    /// `sitra-testkit`).
    fault_plan: Option<FaultPlan>,
    /// Multi-instance membership role.
    cluster: ClusterRole,
    /// Tenants registered at start (weighted-fair scheduling + quotas).
    tenants: Vec<TenantSpec>,
    /// Task placement policy: `false` = FCFS (default), `true` =
    /// locality-aware (prefer the bucket co-located with the shard
    /// holding the most input bytes).
    locality_placement: bool,
    /// Bucket-pool capacity bounds for the autoscale controller
    /// (min, max); `None` leaves capacity entirely to the workers.
    buckets: Option<(usize, usize)>,
    /// p99 queue-wait SLO driving the autoscaler.
    bucket_slo: Duration,
    /// Serve steerable visualization to subscribers on this endpoint.
    steer_listen: Option<Addr>,
    /// Analysis label whose stored outputs feed the steering endpoint.
    steer_source: String,
}

fn usage(program: &str, code: i32) -> ! {
    eprintln!(
        "usage: {program} [--listen ADDR] [--servers N] [--stats-every SECS]\n\
         \x20                  [--metrics-listen HOST:PORT] [--journal PATH]\n\
         \x20                  [--queue-capacity N] [--admission POLICY] [--admission-wait-ms T]\n\
         \x20                  [--tenant SPEC]... [--cluster-seed LIST | --cluster-join ADDR]\n\
         \x20                  [--placement POLICY] [--buckets-min N --buckets-max N]\n\
         \x20                  [--bucket-slo-ms T] [--fault-plan SPEC]\n\
         \n\
         --listen ADDR         tcp://host:port, shm://name (same-node shared memory), or\n\
         \x20                      inproc://name (default tcp://127.0.0.1:7788)\n\
         --servers N           in-process space shards within THIS instance (lock striping;\n\
         \x20                      default 4). Cluster members are separate processes — see\n\
         \x20                      --cluster-seed / --cluster-join\n\
         --stats-every SECS    periodically print counters (default 0 = quiet)\n\
         --metrics-listen A    serve a Prometheus-style metrics snapshot over HTTP\n\
         --journal PATH        append span events as JSON lines to PATH\n\
         --queue-capacity N    bound the task queue at N entries (default unbounded)\n\
         --admission POLICY    full-queue behaviour: block | shed-oldest | reject-new\n\
         \x20                      (default reject-new; only meaningful with --queue-capacity)\n\
         --admission-wait-ms T how long `block` admissions may wait (default 1000)\n\
         --tenant SPEC         register a tenant for weighted-fair scheduling; repeatable.\n\
         \x20                      SPEC is NAME[:WEIGHT[:BYTE_QUOTA[:TASK_QUOTA[:POLICY]]]]\n\
         \x20                      (0 = unlimited quota; POLICY overrides --admission for\n\
         \x20                      that tenant: block=MS | shed | reject). Clients bind with\n\
         \x20                      a matching tenant declaration; unknown tenants register\n\
         \x20                      on first contact with weight 1 and no quotas\n\
         --cluster-seed LIST   found a multi-instance cluster; LIST is the comma-separated\n\
         \x20                      full member list and must include our --listen address\n\
         --cluster-join ADDR   join a running cluster through the member at ADDR\n\
         \x20                      (shards rebalance to us via handoff)\n\
         --placement POLICY    task placement: fcfs (default, byte-identical to the\n\
         \x20                      classic scheduler) | locality (prefer the bucket\n\
         \x20                      co-located with the most resident input bytes; workers\n\
         \x20                      declare a location, producers a residency hint)\n\
         --buckets-min N       autoscale floor: the capacity controller never drains the\n\
         \x20                      pool below N live buckets (requires --buckets-max)\n\
         --buckets-max N       autoscale ceiling: desired capacity never exceeds N. The\n\
         \x20                      controller drains-then-retires excess buckets itself and\n\
         \x20                      publishes the desired count via pool stats for the worker\n\
         \x20                      fleet to grow toward\n\
         --bucket-slo-ms T     p99 queue-wait SLO driving the autoscaler (default 100)\n\
         --steer-listen ADDR   serve steerable visualization on ADDR (any sitra-net\n\
         \x20                      scheme): subscribers pull frames reduced by their own\n\
         \x20                      downsample rate and steer it with feedback messages\n\
         --steer-source LABEL  analysis label whose stored outputs feed the steering\n\
         \x20                      endpoint (default viz-hybrid)\n\
         --fault-plan SPEC     inject deterministic faults on every server-side frame\n\
         \x20                      (chaos testing; SPEC as printed by the sitra-testkit\n\
         \x20                      chaos binary, e.g. seed=0x2a,drop=8,crash=at:400)"
    );
    std::process::exit(code);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        listen: "tcp://127.0.0.1:7788".parse().expect("default addr"),
        servers: 4,
        stats_every: 0,
        metrics_listen: None,
        journal: None,
        queue_capacity: None,
        admission: AdmissionPolicy::RejectNew,
        fault_plan: None,
        cluster: ClusterRole::None,
        tenants: Vec::new(),
        locality_placement: false,
        buckets: None,
        bucket_slo: Duration::from_millis(100),
        steer_listen: None,
        steer_source: "viz-hybrid".to_string(),
    };
    let mut admission_wait = Duration::from_millis(1000);
    let mut buckets_min: Option<usize> = None;
    let mut buckets_max: Option<usize> = None;
    let argv: Vec<String> = std::env::args().collect();
    let program = argv.first().map(String::as_str).unwrap_or("sitra-staged");
    let mut it = argv.iter().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{program}: missing value for {name}");
                usage(program, 2)
            })
        };
        match flag.as_str() {
            "--listen" => match value("--listen").parse() {
                Ok(a) => opts.listen = a,
                Err(e) => {
                    eprintln!("{program}: {e}");
                    usage(program, 2);
                }
            },
            "--servers" => match value("--servers").parse() {
                Ok(n) if n > 0 => opts.servers = n,
                _ => {
                    eprintln!("{program}: --servers must be a positive integer");
                    usage(program, 2);
                }
            },
            "--stats-every" => match value("--stats-every").parse() {
                Ok(n) => opts.stats_every = n,
                Err(_) => {
                    eprintln!("{program}: --stats-every must be an integer");
                    usage(program, 2);
                }
            },
            "--metrics-listen" => match value("--metrics-listen").parse() {
                Ok(a) => opts.metrics_listen = Some(a),
                Err(_) => {
                    eprintln!("{program}: --metrics-listen must be host:port");
                    usage(program, 2);
                }
            },
            "--journal" => opts.journal = Some(PathBuf::from(value("--journal"))),
            "--queue-capacity" => match value("--queue-capacity").parse() {
                Ok(n) if n > 0 => opts.queue_capacity = Some(n),
                _ => {
                    eprintln!("{program}: --queue-capacity must be a positive integer");
                    usage(program, 2);
                }
            },
            "--admission" => match value("--admission").as_str() {
                "block" => {
                    opts.admission = AdmissionPolicy::Block {
                        max_wait: admission_wait,
                    }
                }
                "shed-oldest" => opts.admission = AdmissionPolicy::ShedOldest,
                "reject-new" => opts.admission = AdmissionPolicy::RejectNew,
                other => {
                    eprintln!("{program}: unknown admission policy `{other}`");
                    usage(program, 2);
                }
            },
            "--admission-wait-ms" => match value("--admission-wait-ms").parse::<u64>() {
                Ok(ms) => {
                    admission_wait = Duration::from_millis(ms);
                    if let AdmissionPolicy::Block { max_wait } = &mut opts.admission {
                        *max_wait = admission_wait;
                    }
                }
                Err(_) => {
                    eprintln!("{program}: --admission-wait-ms must be an integer");
                    usage(program, 2);
                }
            },
            "--tenant" => match TenantSpec::parse(&value("--tenant")) {
                Ok(spec) => {
                    if opts.tenants.iter().any(|t| t.name == spec.name) {
                        eprintln!("{program}: duplicate --tenant `{}`", spec.name);
                        usage(program, 2);
                    }
                    opts.tenants.push(spec);
                }
                Err(e) => {
                    eprintln!("{program}: bad --tenant: {e}");
                    usage(program, 2);
                }
            },
            "--cluster-seed" => {
                if !matches!(opts.cluster, ClusterRole::None) {
                    eprintln!(
                        "{program}: --cluster-seed and --cluster-join are mutually exclusive"
                    );
                    usage(program, 2);
                }
                let list = value("--cluster-seed");
                let members: Vec<String> = list
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
                if members.is_empty() {
                    eprintln!("{program}: --cluster-seed needs a comma-separated member list");
                    usage(program, 2);
                }
                for m in &members {
                    if let Err(e) = m.parse::<Addr>() {
                        eprintln!("{program}: bad --cluster-seed member `{m}`: {e}");
                        usage(program, 2);
                    }
                }
                opts.cluster = ClusterRole::Seed(members);
            }
            "--cluster-join" => {
                if !matches!(opts.cluster, ClusterRole::None) {
                    eprintln!(
                        "{program}: --cluster-seed and --cluster-join are mutually exclusive"
                    );
                    usage(program, 2);
                }
                match value("--cluster-join").parse::<Addr>() {
                    Ok(a) => opts.cluster = ClusterRole::Join(a.to_string()),
                    Err(e) => {
                        eprintln!("{program}: bad --cluster-join address: {e}");
                        usage(program, 2);
                    }
                }
            }
            "--placement" => match value("--placement").as_str() {
                "fcfs" => opts.locality_placement = false,
                "locality" => opts.locality_placement = true,
                other => {
                    eprintln!("{program}: unknown placement policy `{other}`");
                    usage(program, 2);
                }
            },
            "--buckets-min" => match value("--buckets-min").parse() {
                Ok(n) if n > 0 => buckets_min = Some(n),
                _ => {
                    eprintln!("{program}: --buckets-min must be a positive integer");
                    usage(program, 2);
                }
            },
            "--buckets-max" => match value("--buckets-max").parse() {
                Ok(n) if n > 0 => buckets_max = Some(n),
                _ => {
                    eprintln!("{program}: --buckets-max must be a positive integer");
                    usage(program, 2);
                }
            },
            "--bucket-slo-ms" => match value("--bucket-slo-ms").parse::<u64>() {
                Ok(ms) if ms > 0 => opts.bucket_slo = Duration::from_millis(ms),
                _ => {
                    eprintln!("{program}: --bucket-slo-ms must be a positive integer");
                    usage(program, 2);
                }
            },
            "--steer-listen" => match value("--steer-listen").parse() {
                Ok(a) => opts.steer_listen = Some(a),
                Err(e) => {
                    eprintln!("{program}: bad --steer-listen address: {e}");
                    usage(program, 2);
                }
            },
            "--steer-source" => opts.steer_source = value("--steer-source"),
            "--fault-plan" => match FaultPlan::parse(&value("--fault-plan")) {
                Ok(p) => opts.fault_plan = Some(p),
                Err(e) => {
                    eprintln!("{program}: bad --fault-plan: {e}");
                    usage(program, 2);
                }
            },
            "--help" | "-h" => usage(program, 0),
            other => {
                eprintln!("{program}: unknown flag {other}");
                usage(program, 2);
            }
        }
    }
    match (buckets_min, buckets_max) {
        (None, None) => {}
        (Some(min), Some(max)) if min <= max => opts.buckets = Some((min, max)),
        (Some(_), Some(_)) => {
            eprintln!("{program}: --buckets-min must not exceed --buckets-max");
            usage(program, 2);
        }
        _ => {
            eprintln!("{program}: --buckets-min and --buckets-max must be given together");
            usage(program, 2);
        }
    }
    opts
}

/// The service behind the stats loop: one bare [`SpaceServer`], or a
/// [`ClusterNode`] wrapping one plus the membership plane.
enum Service {
    Single(SpaceServer),
    Member(ClusterNode),
}

impl Service {
    fn sched_stats(&self) -> SchedStats {
        match self {
            Service::Single(s) => s.sched_stats(),
            Service::Member(n) => n.sched_stats(),
        }
    }
    fn space(&self) -> &DataSpaces {
        match self {
            Service::Single(s) => s.space(),
            Service::Member(n) => n.space(),
        }
    }
    fn closed(&self) -> bool {
        match self {
            Service::Single(s) => s.closed(),
            Service::Member(n) => n.closed(),
        }
    }
    fn scheduler(&self) -> Scheduler<Bytes> {
        match self {
            Service::Single(s) => s.scheduler(),
            Service::Member(n) => n.scheduler().clone(),
        }
    }
    fn shutdown(self) {
        match self {
            Service::Single(s) => s.shutdown(),
            Service::Member(n) => n.shutdown(),
        }
    }
}

/// Bridge this instance's stored analysis outputs to the steering
/// endpoint: poll the space (through the public client protocol, so
/// the bridge works unchanged for standalone and cluster members) for
/// new versions of `label`'s output variable and publish every image
/// as a steerable frame.
fn steer_bridge(service: &Addr, publisher: &SteerPublisher, label: &str) {
    let var = sitra_core::remote::output_var(label);
    let bbox = sitra_core::remote::output_bbox();
    let Ok(space) = RemoteSpace::connect_retry(service, &Backoff::default()) else {
        eprintln!("sitra-staged: steer bridge cannot reach the space — steering disabled");
        return;
    };
    let mut last = 0u64;
    loop {
        match space.latest_version(&var) {
            Ok(Some(latest)) if latest > last => {
                // Publish in version order; a version whose pieces were
                // already evicted is skipped, not retried.
                for version in (last + 1)..=latest {
                    let Ok(pieces) = space.get(&var, version, &bbox) else {
                        return;
                    };
                    for (_, data) in pieces {
                        if let Ok(sitra_core::AnalysisOutput::Image(img)) =
                            sitra_core::wire::decode_analysis_output(data)
                        {
                            publisher.publish(&img);
                        }
                    }
                }
                last = latest;
            }
            Ok(_) => {}
            // The service is gone (shutdown or crash): stop bridging.
            Err(e) if !e.is_retryable() => return,
            Err(_) => {}
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn main() {
    let opts = parse_opts();
    if let Some(plan) = opts.fault_plan.clone() {
        println!("sitra-staged: FAULT INJECTION ACTIVE: {plan}");
        let inj = Arc::new(PlanInjector::new(plan.clone()));
        sitra_net::install_fault_injector(Some(inj.clone()));
        match plan.crash {
            Some(CrashPlan::AtTick { tick }) => {
                // Crash watchdog on the virtual clock: exit abruptly
                // (no scheduler close, no drain) once `tick` frames
                // have crossed the service, so clients exercise their
                // reconnect paths exactly as against a real crash.
                std::thread::spawn(move || loop {
                    if inj.tick() >= tick {
                        eprintln!("sitra-staged: fault-plan crash at tick {tick}");
                        std::process::exit(42);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                });
            }
            Some(CrashPlan::AfterOutputs { .. }) => {
                eprintln!(
                    "sitra-staged: crash=after:N counts driver-side outputs and only \
                     applies to the in-process harness; use crash=at:TICK here — ignoring"
                );
            }
            None => {}
        }
    }
    let journal = opts.journal.as_ref().map(|path| {
        sitra_obs::set_journal_path(path).unwrap_or_else(|e| {
            eprintln!("sitra-staged: cannot open journal {}: {e}", path.display());
            std::process::exit(1);
        })
    });
    let metrics = opts.metrics_listen.map(|addr| {
        let srv = sitra_obs::serve_metrics(addr).unwrap_or_else(|e| {
            eprintln!("sitra-staged: cannot serve metrics on {addr}: {e}");
            std::process::exit(1);
        });
        println!("sitra-staged: metrics on http://{}/metrics", srv.addr());
        srv
    });
    let server = match &opts.cluster {
        ClusterRole::None => {
            match SpaceServer::start_with(
                &opts.listen,
                opts.servers,
                opts.queue_capacity,
                opts.admission,
            ) {
                Ok(s) => {
                    for spec in &opts.tenants {
                        s.scheduler().register_tenant(spec);
                        s.space().set_tenant_byte_quota(&spec.name, spec.byte_quota);
                    }
                    Service::Single(s)
                }
                Err(e) => {
                    eprintln!("sitra-staged: cannot listen on {}: {e}", opts.listen);
                    std::process::exit(1);
                }
            }
        }
        role => {
            let bootstrap = match role {
                ClusterRole::Seed(list) => Bootstrap::Seeds(list.clone()),
                ClusterRole::Join(via) => Bootstrap::Join(via.clone()),
                ClusterRole::None => unreachable!(),
            };
            let node_opts = ClusterNodeOpts {
                shards: opts.servers,
                capacity: opts.queue_capacity,
                policy: opts.admission,
                tenants: opts.tenants.clone(),
                ..ClusterNodeOpts::default()
            };
            match ClusterNode::start(&opts.listen, bootstrap, node_opts) {
                Ok(n) => Service::Member(n),
                Err(e) => {
                    eprintln!(
                        "sitra-staged: cannot start cluster member on {}: {e}",
                        opts.listen
                    );
                    std::process::exit(1);
                }
            }
        }
    };
    match &server {
        Service::Single(s) => println!(
            "sitra-staged: serving {} space shard(s) on {}",
            opts.servers,
            s.addr()
        ),
        Service::Member(n) => {
            let view = n.view();
            println!(
                "sitra-staged: cluster member {} ({} in-process shard(s)); view epoch {} with {} member(s)",
                n.addr(),
                opts.servers,
                view.epoch,
                view.members.len()
            );
        }
    }
    if let Some(cap) = opts.queue_capacity {
        println!(
            "sitra-staged: task queue bounded at {cap}, admission {:?}",
            opts.admission
        );
    }
    for t in &opts.tenants {
        println!(
            "sitra-staged: tenant `{}` weight {} byte_quota {:?} task_quota {:?} policy {:?}",
            t.name, t.weight, t.byte_quota, t.task_quota, t.policy
        );
    }
    if opts.locality_placement {
        server
            .scheduler()
            .set_placement(Arc::new(LocalityPlacement));
        println!("sitra-staged: locality-aware task placement active");
    }
    if let Some((min, max)) = opts.buckets {
        // The service cannot spawn worker processes, so the controller
        // splits the autoscaler's verdict: shrinkage is enacted here
        // (drain-then-retire the most dispensable bucket; its worker
        // exits on the retire lease), while growth only raises the
        // desired capacity published via pool stats — the worker fleet
        // (or its supervisor) reconciles toward it.
        let cfg = AutoscaleConfig::new(min, max, opts.bucket_slo);
        let sched = server.scheduler();
        println!(
            "sitra-staged: bucket autoscale {}..{} buckets, p99 SLO {:?}",
            cfg.min_buckets, cfg.max_buckets, cfg.slo
        );
        std::thread::spawn(move || {
            let mut scaler = Autoscaler::new(cfg);
            loop {
                std::thread::sleep(Duration::from_millis(20));
                let snap = sched.pool_snapshot();
                match scaler.decide(&snap) {
                    ScaleDecision::Hold => {}
                    ScaleDecision::Grow(k) => {
                        sched.set_pool_target(Some((snap.buckets + k).min(cfg.max_buckets)));
                        sitra_obs::emit(
                            "sched",
                            "pool.scale",
                            &[
                                ("action", "grow".to_string()),
                                ("delta", k.to_string()),
                                ("buckets", (snap.buckets + k).to_string()),
                                ("queue_depth", snap.queue_depth.to_string()),
                                ("p99_us", snap.p99_wait.as_micros().to_string()),
                            ],
                        );
                    }
                    ScaleDecision::Shrink(k) => {
                        let mut drained = 0usize;
                        for _ in 0..k {
                            if sched.drain_one_bucket().is_some() {
                                drained += 1;
                            }
                        }
                        if drained > 0 {
                            sched.set_pool_target(Some(snap.buckets.saturating_sub(drained)));
                            sitra_obs::emit(
                                "sched",
                                "pool.scale",
                                &[
                                    ("action", "shrink".to_string()),
                                    ("delta", drained.to_string()),
                                    ("buckets", snap.buckets.saturating_sub(drained).to_string()),
                                    ("queue_depth", snap.queue_depth.to_string()),
                                    ("p99_us", snap.p99_wait.as_micros().to_string()),
                                ],
                            );
                        }
                    }
                }
            }
        });
    }

    let steer = opts.steer_listen.as_ref().map(|addr| {
        let server = SteerServer::start(addr).unwrap_or_else(|e| {
            eprintln!("sitra-staged: cannot serve steering on {addr}: {e}");
            std::process::exit(1);
        });
        println!(
            "sitra-staged: steerable viz on {} (source `{}`)",
            server.addr(),
            opts.steer_source
        );
        let service = opts.listen.clone();
        let publisher = server.publisher();
        let label = opts.steer_source.clone();
        std::thread::spawn(move || steer_bridge(&service, &publisher, &label));
        server
    });

    // Run until the driver closes the scheduler, then give in-flight
    // connections a moment to drain before exiting.
    loop {
        let stats = server.sched_stats();
        if opts.stats_every > 0 {
            let space = server.space().stats();
            println!(
                "sitra-staged: submitted={} assigned={} requeued={} shed={} rejected={} objects={} bytes={}",
                stats.tasks_submitted,
                stats.tasks_assigned,
                stats.tasks_requeued,
                stats.tasks_shed,
                stats.tasks_rejected,
                space.objects_per_server.iter().sum::<u64>(),
                space.resident_bytes,
            );
        }
        if server.closed() {
            break;
        }
        std::thread::sleep(Duration::from_secs(opts.stats_every.clamp(1, 10)));
    }
    std::thread::sleep(Duration::from_millis(200));
    let stats = server.sched_stats();
    println!(
        "sitra-staged: scheduler closed; {} task(s) assigned, {} requeued — shutting down",
        stats.tasks_assigned, stats.tasks_requeued
    );
    if let Some(s) = steer {
        s.shutdown();
    }
    server.shutdown();
    if let Some(m) = metrics {
        m.shutdown();
    }
    if let Some(j) = journal {
        j.flush();
    }
}
