//! The canonical seeded-simulation fixture shared by the workspace
//! integration tests and the chaos scenario runner.
//!
//! Every staging-path test in `tests/` used to carry its own copy of
//! this setup (same dims, same analysis roster, same encoders); it now
//! lives here once, parameterized only by the per-test seed.

use sitra_core::wire::encode_analysis_output;
use sitra_core::{
    run_pipeline, AnalysisSpec, FeatureStats, HybridStats, HybridViz, PipelineConfig,
    PipelineResult, Placement,
};
use sitra_mesh::BBox3;
use sitra_obs::{ObsEvent, VecSink};
use sitra_sim::{SimConfig, Simulation};
use sitra_topology::distributed::BoundaryPolicy;
use sitra_topology::Connectivity;
use sitra_viz::{TransferFunction, View, ViewAxis};
use std::sync::Arc;

/// Grid dimensions every staging-path test runs on.
pub const DIMS: [usize; 3] = [16, 12, 8];
/// Simulated steps.
pub const STEPS: usize = 4;

/// A small seeded simulation on the canonical grid.
pub fn sim(seed: u64) -> Simulation {
    sim_with(DIMS, seed)
}

/// A small seeded simulation on an arbitrary grid (for tests that need
/// their own dims but the same construction).
pub fn sim_with(dims: [usize; 3], seed: u64) -> Simulation {
    Simulation::new(SimConfig::small(dims, seed))
}

/// The canonical analysis roster: two hybrid analyses (one every step,
/// one every other step) plus an in-situ one that must behave
/// identically in every staging mode. Both hybrid analyses use
/// buffered (rank-ordered) aggregation, so local and remote runs see
/// identical part lists.
pub fn specs() -> Vec<AnalysisSpec> {
    vec![
        AnalysisSpec::new(
            Arc::new(HybridViz {
                stride: 2,
                view: View::full_res(BBox3::from_dims(DIMS), ViewAxis::Z, false),
                tf: TransferFunction::hot(250.0, 2500.0),
            }),
            Placement::Hybrid,
            1,
        ),
        AnalysisSpec::new(
            Arc::new(FeatureStats {
                threshold: 1500.0,
                conn: Connectivity::Six,
                policy: BoundaryPolicy::BoundaryMaxima,
            }),
            Placement::Hybrid,
            2,
        ),
        AnalysisSpec::new(Arc::new(HybridStats::default()), Placement::InSitu, 1),
    ]
}

/// The canonical pipeline config over [`specs`]: a 2×2×1 decomposition
/// with `buckets` staging buckets and [`STEPS`] steps.
pub fn config(buckets: usize) -> PipelineConfig {
    let mut cfg = PipelineConfig::new([2, 2, 1], buckets, STEPS);
    cfg.analyses = specs();
    cfg
}

/// Number of hybrid tasks the canonical roster stages over a full run:
/// each hybrid spec contributes one task per due step.
pub fn expected_hybrid_tasks() -> usize {
    specs()
        .iter()
        .filter(|s| s.placement == Placement::Hybrid)
        .map(|s| (1..=STEPS as u64).filter(|&step| s.due(step)).count())
        .sum()
}

/// Outputs of a run, encoded and sorted by `(label, step)` — the
/// byte-identity currency every equivalence assertion trades in.
pub fn sorted_encoded_outputs(result: &PipelineResult) -> Vec<(String, u64, Vec<u8>)> {
    let mut v: Vec<(String, u64, Vec<u8>)> = result
        .outputs
        .iter()
        .map(|(label, step, out)| (label.clone(), *step, encode_analysis_output(out).to_vec()))
        .collect();
    v.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
    v
}

/// Pre-stage a competing tenant's copy of the `specs()[0]` workload:
/// for each due step, two ranks' in-situ payloads go through `put` and
/// one task descriptor through `submit` — both of which must act
/// inside the rival's namespace (i.e. over a tenant-bound connection
/// or client). The workload deliberately reuses the sim tenant's
/// labels and steps with a *different* decomposition and field, so any
/// namespace leak surfaces hard: as a conflicting-duplicate protocol
/// error in the worker, or as a corrupted output in the golden-output
/// oracle. Returns the expected encoded output per step.
pub fn stage_rival_workload(
    mut put: impl FnMut(&str, u64, BBox3, bytes::Bytes) -> Result<(), String>,
    mut submit: impl FnMut(bytes::Bytes) -> Result<(), String>,
) -> Result<Vec<(u64, Vec<u8>)>, String> {
    use sitra_core::remote::{encode_task, intermediate_var, rank_bbox, RemoteTask};
    use sitra_core::InSituCtx;
    use sitra_mesh::{Decomposition, ScalarField};

    let specs = specs();
    let spec = &specs[0];
    let grid = BBox3::from_dims(DIMS);
    let decomp = Decomposition::new(grid, [2, 1, 1]);
    let mut expected = Vec::new();
    for step in 1..=STEPS as u64 {
        if !spec.due(step) {
            continue;
        }
        let whole = ScalarField::from_fn(grid, |p| {
            (p[0] * 7 + p[1] * 3 + p[2] + step as usize) as f64 * 11.5
        });
        let mut parts = Vec::new();
        for r in 0..2 {
            let block = whole.extract(&decomp.block(r));
            let ghosted = block.clone();
            let vars = vec![("T".to_string(), block)];
            let ctx = InSituCtx {
                rank: r,
                step,
                decomp: &decomp,
                ghosted: &ghosted,
                vars: &vars,
            };
            let payload = spec.analysis.in_situ(&ctx);
            put(
                &intermediate_var(&spec.label),
                step,
                rank_bbox(r),
                payload.clone(),
            )?;
            parts.push((r, payload));
        }
        submit(encode_task(&RemoteTask {
            analysis_idx: 0,
            step,
            n_ranks: 2,
        }))?;
        let out = spec.analysis.aggregate(step, &parts);
        expected.push((step, encode_analysis_output(&out).to_vec()));
    }
    Ok(expected)
}

/// Run one pipeline configuration on a fresh `sim(seed)` with a
/// private journal sink, returning the result and the captured events.
pub fn run_journaled(seed: u64, cfg: PipelineConfig) -> (PipelineResult, Vec<ObsEvent>) {
    let sink = Arc::new(VecSink::new());
    let previous = sitra_obs::install_sink(Some(sink.clone()));
    let result = run_pipeline(&mut sim(seed), &cfg).expect("valid config");
    let events = sink.take();
    sitra_obs::install_sink(previous);
    (result, events)
}

/// Compare a journal replay against the live run's accounting,
/// returning one message per disagreement (empty = bit-identical).
///
/// The replay must contain the same `(analysis, step)` row set; the
/// in-situ half of every row must agree bit-identically; degradation
/// flags must match per row and per step. When `driver_aggregates`
/// (the aggregation half was journaled by this process, not an
/// external worker), the aggregation half must agree bit-identically
/// too — and it always must for degraded rows, whose re-aggregation
/// the driver owns.
pub fn replay_violations(
    name: &str,
    result: &PipelineResult,
    events: &[ObsEvent],
    hybrid_placement: &str,
    driver_aggregates: bool,
) -> Vec<String> {
    let mut out = Vec::new();
    let r = sitra_bench::replay::replay(events);
    if r.stages.len() != result.metrics.analyses.len() {
        out.push(format!(
            "{name}: replay has {} stage rows, live run has {}",
            r.stages.len(),
            result.metrics.analyses.len()
        ));
    }
    for want in &result.metrics.analyses {
        let Some(got) = r
            .stages
            .iter()
            .find(|s| s.analysis == want.analysis && s.step == want.step)
        else {
            out.push(format!(
                "{name}: no replayed row for {}@{}",
                want.analysis, want.step
            ));
            continue;
        };
        let row = format!("{name}: {}@{}", want.analysis, want.step);
        let placement = if want.analysis == "stats" {
            "insitu"
        } else {
            hybrid_placement
        };
        if got.placement != placement {
            out.push(format!(
                "{row}: placement `{}` != `{placement}`",
                got.placement
            ));
        }
        if got.insitu_secs != want.insitu_secs {
            out.push(format!("{row}: insitu_secs diverge"));
        }
        if got.insitu_core_secs != want.insitu_core_secs {
            out.push(format!("{row}: insitu_core_secs diverge"));
        }
        if got.movement_bytes != want.movement_bytes {
            out.push(format!(
                "{row}: movement_bytes {} != {}",
                got.movement_bytes, want.movement_bytes
            ));
        }
        if got.degraded != want.degraded {
            out.push(format!(
                "{row}: degraded {} != {}",
                got.degraded, want.degraded
            ));
        }
        if driver_aggregates || want.degraded {
            if got.aggregate_secs != want.aggregate_secs {
                out.push(format!("{row}: aggregate_secs diverge"));
            }
            if got.latency_secs != want.completion_latency_secs {
                out.push(format!("{row}: latency_secs diverge"));
            }
            if got.bucket != want.bucket {
                out.push(format!(
                    "{row}: bucket {:?} != {:?}",
                    got.bucket, want.bucket
                ));
            }
            if got.streamed != want.streamed {
                out.push(format!("{row}: streamed flag diverges"));
            }
        }
    }
    if r.steps.len() != result.metrics.steps.len() {
        out.push(format!(
            "{name}: replay has {} step rows, live run has {}",
            r.steps.len(),
            result.metrics.steps.len()
        ));
    }
    for (got, want) in r.steps.iter().zip(&result.metrics.steps) {
        if got.step != want.step {
            out.push(format!("{name}: step id {} != {}", got.step, want.step));
        }
        if got.degraded != want.degraded {
            out.push(format!(
                "{name}: step {} degraded flag {} != {}",
                want.step, got.degraded, want.degraded
            ));
        }
    }
    out
}

/// Panic unless the journal replay reproduces the live accounting (the
/// assertion form the integration tests use; the chaos runner collects
/// [`replay_violations`] instead).
pub fn assert_replay_agrees(
    name: &str,
    result: &PipelineResult,
    events: &[ObsEvent],
    hybrid_placement: &str,
    driver_aggregates: bool,
) {
    let violations = replay_violations(name, result, events, hybrid_placement, driver_aggregates);
    assert!(
        violations.is_empty(),
        "journal replay disagrees with the live run:\n  {}",
        violations.join("\n  ")
    );
}
