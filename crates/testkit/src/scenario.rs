//! The scenario runner: one seeded simulation, one staging backend,
//! one fault plan — and four invariant oracles checked afterwards.
//!
//! Every scenario follows the same shape:
//!
//! 1. A **golden run** (fully in-situ, fault-free, before any injector
//!    is installed) establishes the reference output set.
//! 2. The [`PlanInjector`] and a private journal sink are installed and
//!    the same seeded simulation is run through the backend under test
//!    — for `Remote`, against a live [`SpaceServer`] with an external
//!    bucket-worker thread and (when the plan says so) a scheduled
//!    server crash, optionally with a restart on the same endpoint.
//! 3. The oracles:
//!    * **conservation** — every due hybrid task was submitted exactly
//!      once and retired exactly once (`submitted == outputs + dropped`,
//!      no duplicate `(label, step)`, nothing staged off-schedule);
//!    * **no-loss** — nothing was dropped, and under
//!      `AdmissionPolicy::Block` nothing was shed either;
//!    * **golden-output** — when nothing was dropped, the output set is
//!      byte-identical to the fault-free golden run (degraded tasks are
//!      re-aggregated in-situ from the retained parts, so faults may
//!      slow a run down but never change what it computes);
//!    * **replay-identity** — an `obs_report`-style journal replay
//!      reproduces the live run's accounting bit-identically.

use crate::fixture;
use crate::injector::{PlanInjector, ScheduleEntry};
use crate::plan::{splitmix64, CrashPlan, FaultPlan};
use sitra_cluster::{Bootstrap, ClusterClient, ClusterNode, ClusterNodeOpts};
use sitra_core::{
    run_bucket_worker, run_cluster_bucket_worker, run_pipeline, BucketWorkerOpts, StagingMode,
};
use sitra_dataspaces::remote::RemoteSpace;
use sitra_dataspaces::{AdmissionPolicy, SpaceServer, TenantSpec};
use sitra_net::{Addr, Backoff};
use sitra_obs::{ObsEvent, VecSink};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which `StagingBackend` a scenario drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Synchronous in-situ aggregation (`StagingMode::InSitu`).
    InSitu,
    /// In-process staging buckets (`StagingMode::Local`).
    Local,
    /// Remote staging over the socket transport (`StagingMode::Remote`).
    Remote,
    /// A three-member `sitra-cluster` of staging instances
    /// (`StagingMode::Cluster`), with shard routing and handoff.
    Cluster,
}

impl Backend {
    /// The three single-space backends, in the order the chaos suite
    /// runs them. `Cluster` stays out of this list on purpose: the
    /// pinned chaos corpus predates it, and its seeds must keep mapping
    /// to the exact same `(backend, plan)` pairs. Cluster scenarios opt
    /// in explicitly (`--backend cluster`, `tests/cluster.rs`).
    pub const ALL: [Backend; 3] = [Backend::InSitu, Backend::Local, Backend::Remote];

    /// Stable name (CLI `--backend` values, artifact file names).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::InSitu => "insitu",
            Backend::Local => "local",
            Backend::Remote => "remote",
            Backend::Cluster => "cluster",
        }
    }

    /// Parse a `--backend` value.
    pub fn parse(s: &str) -> Option<Backend> {
        match s {
            "insitu" => Some(Backend::InSitu),
            "local" => Some(Backend::Local),
            "remote" => Some(Backend::Remote),
            "cluster" => Some(Backend::Cluster),
            _ => None,
        }
    }
}

/// Everything a scenario run produced, oracles included.
pub struct ScenarioOutcome {
    /// Backend the scenario drove.
    pub backend: Backend,
    /// Plan it executed.
    pub plan: FaultPlan,
    /// Oracle violations — empty means the scenario passed.
    pub violations: Vec<String>,
    /// Tasks submitted to the staging backend.
    pub staged_tasks: usize,
    /// Tasks dropped (must stay 0 in this fixture).
    pub dropped_tasks: usize,
    /// Tasks that degraded to in-situ re-aggregation.
    pub degraded_tasks: usize,
    /// Total outputs produced.
    pub outputs: usize,
    /// The fault schedule the injector actually executed.
    pub schedule: Vec<ScheduleEntry>,
    /// The run's journal (for artifact upload on failure).
    pub events: Vec<ObsEvent>,
}

impl ScenarioOutcome {
    /// Did every oracle hold?
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Process-unique suffix for remote endpoints, so concurrent or
/// repeated scenarios never collide on an inproc name.
pub(crate) fn unique_endpoint(seed: u64) -> Addr {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    format!("inproc://chaos-{seed:x}-{n}")
        .parse()
        .expect("addr")
}

/// One resilient external bucket worker on `bucket_id` against a
/// single staging server: reconnects through transient faults while
/// the scenario is live, exits once the scheduler closes or the
/// bucket is drained and retired.
fn spawn_remote_worker(
    endpoint: &Addr,
    bucket_id: u32,
    stop: &Arc<AtomicBool>,
) -> std::thread::JoinHandle<usize> {
    spawn_remote_worker_with(endpoint, fixture::specs(), bucket_id, stop)
}

/// [`spawn_remote_worker`] over an explicit analysis roster (the
/// scenario matrix runs a larger roster than the frozen chaos
/// fixture; task descriptors index into the driver's list, so the
/// worker must hold the same list in the same order).
pub(crate) fn spawn_remote_worker_with(
    endpoint: &Addr,
    specs: Vec<sitra_core::AnalysisSpec>,
    bucket_id: u32,
    stop: &Arc<AtomicBool>,
) -> std::thread::JoinHandle<usize> {
    let ep = endpoint.clone();
    let stop = Arc::clone(stop);
    std::thread::Builder::new()
        .name(format!("chaos-bucket-{bucket_id}"))
        .spawn(move || {
            let opts = BucketWorkerOpts {
                backoff: Backoff {
                    initial: Duration::from_millis(5),
                    max: Duration::from_millis(40),
                    attempts: 4,
                },
                request_timeout: Duration::from_millis(100),
                drop_connection_after: None,
                location: None,
            };
            let mut completed = 0usize;
            loop {
                match run_bucket_worker(&ep, &specs, bucket_id, &opts) {
                    Ok(n) => {
                        completed += n;
                        break; // scheduler closed or bucket retired
                    }
                    Err(e) if e.is_retryable() && !stop.load(Ordering::SeqCst) => {
                        continue; // server crash/partition: redial
                    }
                    Err(_) => break,
                }
            }
            completed
        })
        .expect("spawn worker")
}

/// The cluster flavour of [`spawn_remote_worker`]: one resilient
/// worker round-robining over every member, exiting once every
/// surviving scheduler closes or any member retires the bucket.
fn spawn_cluster_worker(
    endpoints: &[String],
    bucket_id: u32,
    stop: &Arc<AtomicBool>,
) -> std::thread::JoinHandle<usize> {
    let eps = endpoints.to_vec();
    let stop = Arc::clone(stop);
    let specs = fixture::specs();
    std::thread::Builder::new()
        .name(format!("chaos-cluster-bucket-{bucket_id}"))
        .spawn(move || {
            let opts = BucketWorkerOpts {
                backoff: Backoff {
                    initial: Duration::from_millis(5),
                    max: Duration::from_millis(40),
                    attempts: 4,
                },
                request_timeout: Duration::from_millis(100),
                drop_connection_after: None,
                location: None,
            };
            let mut completed = 0usize;
            loop {
                match run_cluster_bucket_worker(&eps, &specs, bucket_id, &opts) {
                    Ok(n) => {
                        completed += n;
                        break;
                    }
                    Err(e) if e.is_retryable() && !stop.load(Ordering::SeqCst) => {
                        continue;
                    }
                    Err(_) => break,
                }
            }
            completed
        })
        .expect("spawn worker")
}

/// Bucket ids for workers a [`ScaleEvent`](crate::ScaleEvent) spawns
/// mid-run, offset so they never collide with the scenario's primary
/// worker (bucket 0).
const SCALE_BUCKET_BASE: u32 = 100;

/// The admission policy a plan's seed selects for its `SpaceServer`
/// (kept out of `FaultPlan` itself: admission is server configuration,
/// not a network fault — but varying it across seeds is free coverage).
pub fn admission_for(plan: &FaultPlan) -> (Option<usize>, AdmissionPolicy) {
    match splitmix64(plan.seed ^ 0xAD15_510A) % 3 {
        0 => (
            Some(4),
            AdmissionPolicy::Block {
                max_wait: Duration::from_millis(500),
            },
        ),
        1 => (Some(3), AdmissionPolicy::RejectNew),
        _ => (Some(3), AdmissionPolicy::ShedOldest),
    }
}

/// Run one scenario: `sim(seed)` through `backend` under `plan`, then
/// check every oracle. Panics never encode oracle failures — those
/// come back in [`ScenarioOutcome::violations`].
pub fn run_scenario(seed: u64, plan: &FaultPlan, backend: Backend) -> ScenarioOutcome {
    let obs = sitra_obs::isolate();

    // Golden run: fault-free, fully in-situ, before the injector or the
    // journal sink exist.
    let golden = run_pipeline(
        &mut fixture::sim(seed),
        &fixture::config(2).with_staging_mode(StagingMode::InSitu),
    )
    .expect("golden run config");
    let golden_outputs = fixture::sorted_encoded_outputs(&golden);

    // Arm the harness.
    let sink = Arc::new(VecSink::new());
    let prev_sink = sitra_obs::install_sink(Some(sink.clone()));
    let injector = Arc::new(PlanInjector::new(plan.clone()));
    let prev_injector = sitra_net::install_fault_injector(Some(injector.clone()));

    let mut violations = Vec::new();
    let result = match backend {
        Backend::InSitu => run_pipeline(
            &mut fixture::sim(seed),
            &fixture::config(2).with_staging_mode(StagingMode::InSitu),
        )
        .expect("insitu config"),
        Backend::Local => {
            run_pipeline(&mut fixture::sim(seed), &fixture::config(2)).expect("local config")
        }
        Backend::Remote => {
            let addr = unique_endpoint(seed);
            let (capacity, policy) = admission_for(plan);
            let server =
                SpaceServer::start_with(&addr, 1, capacity, policy).expect("start staging server");
            let endpoint = server.addr();
            let server_slot = Arc::new(parking_lot::Mutex::new(Some(server)));

            // One resilient external bucket worker: reconnects through
            // transient faults, retires when the scheduler closes (or
            // on a protocol error, after which the driver degrades the
            // remainder).
            let stop = Arc::new(AtomicBool::new(false));
            let worker = spawn_remote_worker(&endpoint, 0, &stop);

            // Scheduled pool resize: a watchdog polls the injector's
            // virtual clock and, at the planned tick, either spawns
            // extra resilient workers on fresh bucket ids or drains
            // and retires live buckets through the scheduler — the
            // same elastic path the autoscaler drives in production,
            // here exercised under fault injection.
            let extra_workers: Arc<parking_lot::Mutex<Vec<std::thread::JoinHandle<usize>>>> =
                Arc::new(parking_lot::Mutex::new(Vec::new()));
            let scale_watchdog = plan.scale.map(|ev| {
                let injector = Arc::clone(&injector);
                let slot = Arc::clone(&server_slot);
                let stop = Arc::clone(&stop);
                let extras = Arc::clone(&extra_workers);
                let ep = endpoint.clone();
                std::thread::Builder::new()
                    .name("chaos-scale".into())
                    .spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            if injector.tick() >= ev.at_tick {
                                if ev.delta > 0 {
                                    let mut handles = extras.lock();
                                    for i in 0..ev.delta as u32 {
                                        handles.push(spawn_remote_worker(
                                            &ep,
                                            SCALE_BUCKET_BASE + i,
                                            &stop,
                                        ));
                                    }
                                } else {
                                    let guard = slot.lock();
                                    if let Some(s) = guard.as_ref() {
                                        let sched = s.scheduler();
                                        for _ in 0..-ev.delta {
                                            sched.drain_one_bucket();
                                        }
                                    }
                                }
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    })
                    .expect("spawn scale watchdog")
            });

            // Scheduled crash: from inside the driver's collection path
            // after N collected outputs, kill the server — and when the
            // plan says restart, bring a fresh one up on the same
            // endpoint so the driver and worker reconnect to it.
            let mut cfg = fixture::config(2)
                .with_staging_endpoint(endpoint.to_string())
                .with_staging_deadline(Duration::from_millis(700))
                .with_staging_max_inflight(2);
            if let Some(CrashPlan::AfterOutputs { outputs, restart }) = plan.crash {
                let slot = Arc::clone(&server_slot);
                let collected = Arc::new(AtomicUsize::new(0));
                let addr = addr.clone();
                cfg = cfg.with_staging_output_hook(Arc::new(move |_label, _step| {
                    if collected.fetch_add(1, Ordering::SeqCst) + 1 == outputs {
                        if let Some(s) = slot.lock().take() {
                            s.shutdown();
                        }
                        if restart {
                            let (capacity, policy) = (None, AdmissionPolicy::RejectNew);
                            if let Ok(s) = SpaceServer::start_with(&addr, 1, capacity, policy) {
                                *slot.lock() = Some(s);
                            }
                        }
                    }
                }));
            }

            let result = run_pipeline(&mut fixture::sim(seed), &cfg).expect("remote config");

            // Tear down: close whatever server is still alive (closing
            // its scheduler retires the workers), then join them.
            stop.store(true, Ordering::SeqCst);
            if let Some(w) = scale_watchdog {
                let _ = w.join();
            }
            if let Some(s) = server_slot.lock().take() {
                s.shutdown();
            }
            match worker.join() {
                Ok(_) => {}
                Err(_) => violations.push("remote: bucket worker panicked".into()),
            }
            let extras: Vec<_> = extra_workers.lock().drain(..).collect();
            for w in extras {
                if w.join().is_err() {
                    violations.push("remote: scale-up worker panicked".into());
                }
            }
            result
        }
        Backend::Cluster => {
            // A three-member cluster on unique inproc endpoints, every
            // member configured with the plan's admission policy. The
            // seed list is static: clients route over it regardless of
            // how the live view evolves, so a mid-run kill degrades
            // tasks but never mis-routes them.
            let addrs: Vec<Addr> = (0..3).map(|_| unique_endpoint(seed)).collect();
            let endpoints: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
            let (capacity, policy) = admission_for(plan);
            let node_opts = move || ClusterNodeOpts {
                capacity,
                policy,
                heartbeat_every: Duration::from_millis(10),
                suspect_after: 3,
                ..ClusterNodeOpts::default()
            };
            let nodes: Vec<Option<ClusterNode>> = addrs
                .iter()
                .map(|a| {
                    Some(
                        ClusterNode::start(a, Bootstrap::Seeds(endpoints.clone()), node_opts())
                            .expect("start cluster member"),
                    )
                })
                .collect();
            let node_slots = Arc::new(parking_lot::Mutex::new(nodes));

            // One resilient external bucket worker over the whole
            // cluster: it round-robins task requests across members,
            // writes a member off after repeated connection failures,
            // and retires once every surviving scheduler closes.
            let stop = Arc::new(AtomicBool::new(false));
            let worker = spawn_cluster_worker(&endpoints, 0, &stop);

            // Scheduled pool resize, cluster flavour: grow spawns
            // extra cluster-wide workers; shrink drains buckets on the
            // first surviving member — one member's Retire lease
            // retires the whole round-robin worker, exactly the
            // cross-member retirement path worth pinning under faults.
            let extra_workers: Arc<parking_lot::Mutex<Vec<std::thread::JoinHandle<usize>>>> =
                Arc::new(parking_lot::Mutex::new(Vec::new()));
            let scale_watchdog = plan.scale.map(|ev| {
                let injector = Arc::clone(&injector);
                let slots = Arc::clone(&node_slots);
                let stop = Arc::clone(&stop);
                let extras = Arc::clone(&extra_workers);
                let eps = endpoints.clone();
                std::thread::Builder::new()
                    .name("chaos-scale".into())
                    .spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            if injector.tick() >= ev.at_tick {
                                if ev.delta > 0 {
                                    let mut handles = extras.lock();
                                    for i in 0..ev.delta as u32 {
                                        handles.push(spawn_cluster_worker(
                                            &eps,
                                            SCALE_BUCKET_BASE + i,
                                            &stop,
                                        ));
                                    }
                                } else {
                                    let sched = slots
                                        .lock()
                                        .iter()
                                        .flatten()
                                        .next()
                                        .map(|n| n.scheduler().clone());
                                    if let Some(sched) = sched {
                                        for _ in 0..-ev.delta {
                                            sched.drain_one_bucket();
                                        }
                                    }
                                }
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    })
                    .expect("spawn scale watchdog")
            });

            // Instance loss: a watchdog polls the injector's virtual
            // clock and kills the planned member at its tick — an
            // abrupt crash (queued tasks dropped on the floor), not a
            // graceful leave.
            let watchdog = plan.instance_loss.map(|loss| {
                let injector = Arc::clone(&injector);
                let slots = Arc::clone(&node_slots);
                let stop = Arc::clone(&stop);
                std::thread::Builder::new()
                    .name("chaos-instance-loss".into())
                    .spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            if injector.tick() >= loss.at_tick {
                                if let Some(n) = slots.lock()[loss.member as usize % 3].take() {
                                    n.kill();
                                }
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(1));
                        }
                    })
                    .expect("spawn watchdog")
            });

            let mut cfg = fixture::config(2)
                .with_staging_cluster(endpoints.clone())
                .with_staging_deadline(Duration::from_millis(700))
                .with_staging_max_inflight(2);
            // A scheduled crash maps onto member 1; a restart maps onto
            // a rejoin through member 0, which re-shards the ring and
            // hands the rejoiner its shards back.
            if let Some(CrashPlan::AfterOutputs { outputs, restart }) = plan.crash {
                let slots = Arc::clone(&node_slots);
                let collected = Arc::new(AtomicUsize::new(0));
                let victim = addrs[1].clone();
                let rejoin_via = endpoints[0].clone();
                cfg = cfg.with_staging_output_hook(Arc::new(move |_label, _step| {
                    if collected.fetch_add(1, Ordering::SeqCst) + 1 == outputs {
                        if let Some(n) = slots.lock()[1].take() {
                            n.kill();
                        }
                        if restart {
                            if let Ok(n) = ClusterNode::start(
                                &victim,
                                Bootstrap::Join(rejoin_via.clone()),
                                node_opts(),
                            ) {
                                slots.lock()[1] = Some(n);
                            }
                        }
                    }
                }));
            }

            let result = run_pipeline(&mut fixture::sim(seed), &cfg).expect("cluster config");

            // Tear down: stop the watchdog, shut every surviving member
            // down (closing their schedulers retires the worker), then
            // join the helper threads.
            stop.store(true, Ordering::SeqCst);
            if let Some(w) = watchdog {
                let _ = w.join();
            }
            if let Some(w) = scale_watchdog {
                let _ = w.join();
            }
            for slot in node_slots.lock().iter_mut() {
                if let Some(n) = slot.take() {
                    n.shutdown();
                }
            }
            match worker.join() {
                Ok(_) => {}
                Err(_) => violations.push("cluster: bucket worker panicked".into()),
            }
            let extras: Vec<_> = extra_workers.lock().drain(..).collect();
            for w in extras {
                if w.join().is_err() {
                    violations.push("cluster: scale-up worker panicked".into());
                }
            }
            result
        }
    };

    // Disarm before judging.
    sitra_net::install_fault_injector(prev_injector);
    let events = sink.take();
    sitra_obs::install_sink(prev_sink);

    // Oracle 1 — conservation. Every due hybrid task is submitted to
    // the backend exactly once; every submitted task retires exactly
    // once, and every retirement except Dropped leaves exactly one
    // output behind.
    let expected = fixture::expected_hybrid_tasks();
    if result.staged_tasks != expected {
        violations.push(format!(
            "conservation: staged {} tasks, roster is due {expected}",
            result.staged_tasks
        ));
    }
    let specs = fixture::specs();
    let mut hybrid_outputs = 0usize;
    let mut seen: Vec<(String, u64)> = Vec::new();
    for (label, step, _) in &result.outputs {
        if seen.contains(&(label.clone(), *step)) {
            violations.push(format!("conservation: duplicate output for {label}@{step}"));
        }
        seen.push((label.clone(), *step));
        let Some(spec) = specs.iter().find(|s| &s.label == label) else {
            violations.push(format!("conservation: output for unknown label `{label}`"));
            continue;
        };
        if !spec.due(*step) {
            violations.push(format!(
                "conservation: {label}@{step} is off the interval schedule"
            ));
        }
        if spec.placement == sitra_core::Placement::Hybrid {
            hybrid_outputs += 1;
        }
    }
    if hybrid_outputs + result.dropped_tasks != result.staged_tasks {
        violations.push(format!(
            "conservation: {} hybrid outputs + {} dropped != {} staged",
            hybrid_outputs, result.dropped_tasks, result.staged_tasks
        ));
    }
    if result.degraded_tasks > result.staged_tasks {
        violations.push(format!(
            "conservation: {} degraded > {} staged",
            result.degraded_tasks, result.staged_tasks
        ));
    }

    // Oracle 2 — no-loss. This fixture's buffer depth exceeds anything
    // the run can queue, so nothing may ever be dropped; and when the
    // server admits under `Block`, nothing may be shed either.
    if result.dropped_tasks != 0 {
        violations.push(format!("no-loss: {} tasks dropped", result.dropped_tasks));
    }
    if backend == Backend::Remote || backend == Backend::Cluster {
        if let (_, AdmissionPolicy::Block { .. }) = admission_for(plan) {
            let shed = obs.registry().snapshot().counter("sched.tasks.shed");
            if shed != 0 {
                violations.push(format!(
                    "no-loss: {shed} tasks shed under AdmissionPolicy::Block"
                ));
            }
        }
    }

    // Oracle 3 — golden output. When no task was dropped, the output
    // set must be byte-identical to the fault-free golden run: degraded
    // tasks re-aggregate in-situ from the retained parts, so the
    // answer cannot change, only its latency.
    if result.dropped_tasks == 0 {
        let got = fixture::sorted_encoded_outputs(&result);
        if got != golden_outputs {
            let detail = golden_outputs
                .iter()
                .zip(&got)
                .find(|(g, r)| g != r)
                .map(|(g, _)| format!("first divergence at {}@{}", g.0, g.1))
                .unwrap_or_else(|| {
                    format!(
                        "output count {} != golden {}",
                        got.len(),
                        golden_outputs.len()
                    )
                });
            violations.push(format!("golden-output: outputs diverge ({detail})"));
        }
    }

    // Oracle 4 — replay identity.
    let (placement, driver_aggregates) = match backend {
        Backend::InSitu => ("insitu", true),
        Backend::Local => ("hybrid", true),
        Backend::Remote | Backend::Cluster => ("hybrid-remote", false),
    };
    violations.extend(fixture::replay_violations(
        backend.name(),
        &result,
        &events,
        placement,
        driver_aggregates,
    ));

    ScenarioOutcome {
        backend,
        plan: plan.clone(),
        violations,
        staged_tasks: result.staged_tasks,
        dropped_tasks: result.dropped_tasks,
        degraded_tasks: result.degraded_tasks,
        outputs: result.outputs.len(),
        schedule: injector.schedule(),
        events,
    }
}

/// The driver pipeline's tenant in a multi-tenant scenario.
pub const SIM_TENANT: &str = "sim";
/// The competing producer's tenant in a multi-tenant scenario.
pub const RIVAL_TENANT: &str = "rival";

/// One tenant's scheduler counters, normalized across the single-space
/// and cluster stats surfaces for the per-tenant oracle.
struct TenantCounters {
    name: String,
    weight: u32,
    queued: u64,
    submitted: u64,
    assigned: u64,
    requeued: u64,
    shed: u64,
}

/// The per-tenant conservation oracle: every tenant's counters must
/// satisfy `submitted + requeued - assigned - shed == queued` (the
/// identity every scheduler transition preserves atomically), the
/// driver's traffic must all be attributed to [`SIM_TENANT`], the
/// rival's to [`RIVAL_TENANT`], none to the default tenant, and the
/// configured DRR weights must survive the run.
fn tenant_violations(
    rows: &[TenantCounters],
    sim_staged: usize,
    rival_staged: usize,
    violations: &mut Vec<String>,
) {
    for t in rows {
        let balance = t.submitted + t.requeued;
        let retired = t.assigned + t.shed + t.queued;
        if balance != retired {
            violations.push(format!(
                "tenant-conservation[{}]: {} submitted + {} requeued != {} assigned + {} shed + {} queued",
                t.name, t.submitted, t.requeued, t.assigned, t.shed, t.queued
            ));
        }
    }
    let find = |name: &str| rows.iter().find(|t| t.name == name);
    match find(SIM_TENANT) {
        Some(t) => {
            if t.submitted != sim_staged as u64 {
                violations.push(format!(
                    "tenant-attribution[{SIM_TENANT}]: {} submitted != {sim_staged} staged by driver",
                    t.submitted
                ));
            }
            if t.weight != 3 {
                violations.push(format!(
                    "tenant-attribution[{SIM_TENANT}]: weight {} != configured 3",
                    t.weight
                ));
            }
        }
        None => violations.push(format!("tenant-attribution: no `{SIM_TENANT}` row")),
    }
    match find(RIVAL_TENANT) {
        Some(t) => {
            if t.submitted != rival_staged as u64 {
                violations.push(format!(
                    "tenant-attribution[{RIVAL_TENANT}]: {} submitted != {rival_staged} staged",
                    t.submitted
                ));
            }
            if t.weight != 1 {
                violations.push(format!(
                    "tenant-attribution[{RIVAL_TENANT}]: weight {} != configured 1",
                    t.weight
                ));
            }
        }
        None => violations.push(format!("tenant-attribution: no `{RIVAL_TENANT}` row")),
    }
    if let Some(t) = find(sitra_dataspaces::DEFAULT_TENANT) {
        if t.submitted != 0 || t.queued != 0 {
            violations.push(format!(
                "tenant-attribution[default]: {} submitted / {} queued on the default tenant, all traffic is tenant-bound",
                t.submitted, t.queued
            ));
        }
    }
}

/// Run one **multi-tenant** scenario: the canonical driver pipeline
/// bound to [`SIM_TENANT`] (weight 3) shares the staging service with a
/// [`RIVAL_TENANT`] (weight 1) producer whose workload deliberately
/// reuses the sim tenant's labels and steps (see
/// [`fixture::stage_rival_workload`]). On top of the four standard
/// oracles this checks, per tenant: the conservation identity
/// `submitted + requeued == assigned + shed + queued`, traffic
/// attribution (driver → sim, rival → rival, nothing on default), DRR
/// weight survival, and byte-identity of the rival's outputs — which
/// doubles as the namespace-isolation proof, since a leak corrupts one
/// side or the other.
///
/// Only the staging backends carry tenants, and the scenario keeps the
/// scheduler unbounded (admission chaos is the untenanted corpus's
/// job), so: `backend` must be `Remote` or `Cluster`, and the plan
/// must not schedule crashes, instance loss, or pool resizes (a dead
/// member's counters would vanish from the attribution ledger).
pub fn run_tenanted_scenario(seed: u64, plan: &FaultPlan, backend: Backend) -> ScenarioOutcome {
    assert!(
        matches!(backend, Backend::Remote | Backend::Cluster),
        "tenancy is a staging-service concern; {backend:?} has no server to bind to"
    );
    assert!(
        plan.crash.is_none() && plan.instance_loss.is_none() && plan.scale.is_none(),
        "tenanted scenarios model network faults only"
    );
    let obs = sitra_obs::isolate();
    let _keep = &obs;

    let golden = run_pipeline(
        &mut fixture::sim(seed),
        &fixture::config(2).with_staging_mode(StagingMode::InSitu),
    )
    .expect("golden run config");
    let golden_outputs = fixture::sorted_encoded_outputs(&golden);

    let sim_spec = TenantSpec::new(SIM_TENANT).with_weight(3);
    let rival_spec = TenantSpec::new(RIVAL_TENANT);
    let mut violations = Vec::new();

    // Bring the staging service up and pre-stage the rival workload on
    // a clean network (the injector only arms for the run under test;
    // the rival's *competition* is scheduler-side, not network-side).
    enum Service {
        Remote {
            server: SpaceServer,
        },
        Cluster {
            nodes: Vec<ClusterNode>,
            endpoints: Vec<String>,
        },
    }
    let service = match backend {
        Backend::Remote => {
            let addr = unique_endpoint(seed);
            let server =
                SpaceServer::start_with(&addr, 1, None, AdmissionPolicy::RejectNew).expect("start");
            server.scheduler().register_tenant(&sim_spec);
            server.scheduler().register_tenant(&rival_spec);
            Service::Remote { server }
        }
        Backend::Cluster => {
            let addrs: Vec<Addr> = (0..3).map(|_| unique_endpoint(seed)).collect();
            let endpoints: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
            let nodes = addrs
                .iter()
                .map(|a| {
                    ClusterNode::start(
                        a,
                        Bootstrap::Seeds(endpoints.clone()),
                        ClusterNodeOpts {
                            heartbeat_every: Duration::from_millis(10),
                            suspect_after: 3,
                            tenants: vec![sim_spec.clone(), rival_spec.clone()],
                            ..ClusterNodeOpts::default()
                        },
                    )
                    .expect("start cluster member")
                })
                .collect();
            Service::Cluster { nodes, endpoints }
        }
        _ => unreachable!(),
    };

    let backoff = Backoff {
        initial: Duration::from_millis(5),
        max: Duration::from_millis(40),
        attempts: 4,
    };
    let rival_cluster = match &service {
        Service::Remote { .. } => None,
        Service::Cluster { endpoints, .. } => Some(
            ClusterClient::new(
                sitra_cluster::DEFAULT_SEED,
                sitra_cluster::DEFAULT_VNODES,
                endpoints.iter().cloned(),
                backoff,
            )
            .expect("rival cluster client")
            .with_tenant(rival_spec.clone()),
        ),
    };
    let rival_expected = match &service {
        Service::Remote { server } => {
            let conn = RemoteSpace::connect(&server.addr()).expect("rival dial");
            conn.set_tenant(&rival_spec).expect("rival bind");
            fixture::stage_rival_workload(
                |var, step, bbox, data| conn.put(var, step, bbox, data).map_err(|e| e.to_string()),
                |data| {
                    conn.submit_task(data)
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                },
            )
        }
        Service::Cluster { .. } => {
            let client = rival_cluster.as_ref().unwrap();
            fixture::stage_rival_workload(
                |var, step, bbox, data| {
                    client.put(var, step, bbox, data).map_err(|e| e.to_string())
                },
                |data| {
                    client
                        .submit_task_routed("rival-route", 0, data)
                        .map(|_| ())
                        .map_err(|e| e.to_string())
                },
            )
        }
    }
    .expect("rival staging on a clean network");

    // Arm the harness and run the sim tenant's pipeline, with one
    // shared external worker serving both tenants' tasks.
    let sink = Arc::new(VecSink::new());
    let prev_sink = sitra_obs::install_sink(Some(sink.clone()));
    let injector = Arc::new(PlanInjector::new(plan.clone()));
    let prev_injector = sitra_net::install_fault_injector(Some(injector.clone()));

    let stop = Arc::new(AtomicBool::new(false));
    let worker = {
        let stop = Arc::clone(&stop);
        let specs = fixture::specs();
        let eps: Vec<String> = match &service {
            Service::Remote { server } => vec![server.addr().to_string()],
            Service::Cluster { endpoints, .. } => endpoints.clone(),
        };
        let cluster = matches!(service, Service::Cluster { .. });
        std::thread::Builder::new()
            .name("tenant-bucket".into())
            .spawn(move || {
                let opts = BucketWorkerOpts {
                    backoff,
                    request_timeout: Duration::from_millis(100),
                    drop_connection_after: None,
                    location: None,
                };
                loop {
                    let r = if cluster {
                        run_cluster_bucket_worker(&eps, &specs, 0, &opts)
                    } else {
                        let ep: Addr = eps[0].parse().expect("addr");
                        run_bucket_worker(&ep, &specs, 0, &opts)
                    };
                    match r {
                        Ok(_) => break,
                        Err(e) if e.is_retryable() && !stop.load(Ordering::SeqCst) => continue,
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn worker")
    };

    let cfg = match &service {
        Service::Remote { server } => {
            fixture::config(2).with_staging_endpoint(server.addr().to_string())
        }
        Service::Cluster { endpoints, .. } => {
            fixture::config(2).with_staging_cluster(endpoints.clone())
        }
    }
    .with_tenant(sim_spec.clone())
    .with_staging_deadline(Duration::from_millis(700))
    .with_staging_max_inflight(2);
    let result = run_pipeline(&mut fixture::sim(seed), &cfg).expect("tenanted config");

    // Disarm before the rival collects: the competition we're judging
    // happened during the run; the collection is bookkeeping.
    sitra_net::install_fault_injector(prev_injector);
    let events = sink.take();
    sitra_obs::install_sink(prev_sink);

    // The rival's outputs must appear, byte-identical to its own
    // golden aggregation, in its own namespace.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let label = fixture::specs()[0].label.clone();
    for (step, expect) in &rival_expected {
        let got = match &service {
            Service::Remote { server } => {
                // Re-dial per await: a mid-run cut may have severed the
                // original rival connection.
                let conn = RemoteSpace::connect_retry(&server.addr(), &backoff)
                    .and_then(|c| c.set_tenant(&rival_spec).map(|_| c));
                conn.and_then(|c| sitra_core::remote::await_output(&c, &label, *step, deadline))
            }
            Service::Cluster { .. } => sitra_core::remote::await_output_cluster(
                rival_cluster.as_ref().unwrap(),
                &label,
                *step,
                deadline,
            ),
        };
        match got {
            Ok(out) => {
                if sitra_core::wire::encode_analysis_output(&out).as_ref() != expect.as_slice() {
                    violations.push(format!(
                        "rival-output: {label}@{step} diverges from the rival's own aggregation"
                    ));
                }
            }
            Err(e) => violations.push(format!("rival-output: {label}@{step} never appeared: {e}")),
        }
    }

    // Per-tenant ledger, snapshotted while the service is still up.
    let rows: Vec<TenantCounters> = match &service {
        Service::Remote { server } => server
            .scheduler()
            .tenant_stats()
            .into_iter()
            .map(|t| TenantCounters {
                name: t.name,
                weight: t.weight,
                queued: t.queued,
                submitted: t.stats.tasks_submitted,
                assigned: t.stats.tasks_assigned,
                requeued: t.stats.tasks_requeued,
                shed: t.stats.tasks_shed,
            })
            .collect(),
        Service::Cluster { .. } => rival_cluster
            .as_ref()
            .unwrap()
            .tenant_stats()
            .into_iter()
            .map(|t| TenantCounters {
                name: t.name,
                weight: t.weight,
                queued: t.queued,
                submitted: t.tasks_submitted,
                assigned: t.tasks_assigned,
                requeued: t.tasks_requeued,
                shed: t.tasks_shed,
            })
            .collect(),
    };
    tenant_violations(
        &rows,
        result.staged_tasks,
        rival_expected.len(),
        &mut violations,
    );

    // Tear down.
    stop.store(true, Ordering::SeqCst);
    match service {
        Service::Remote { server } => server.shutdown(),
        Service::Cluster { nodes, .. } => {
            for n in nodes {
                n.shutdown();
            }
        }
    }
    match worker.join() {
        Ok(()) => {}
        Err(_) => violations.push("tenanted: bucket worker panicked".into()),
    }

    // The standard oracles on the sim tenant's run: the rival's
    // presence must not change what the pipeline computes.
    let expected = fixture::expected_hybrid_tasks();
    if result.staged_tasks != expected {
        violations.push(format!(
            "conservation: staged {} tasks, roster is due {expected}",
            result.staged_tasks
        ));
    }
    if result.dropped_tasks != 0 {
        violations.push(format!("no-loss: {} tasks dropped", result.dropped_tasks));
    }
    if result.dropped_tasks == 0 {
        let got = fixture::sorted_encoded_outputs(&result);
        if got != golden_outputs {
            violations.push("golden-output: sim outputs diverge under rival load".into());
        }
    }
    violations.extend(fixture::replay_violations(
        backend.name(),
        &result,
        &events,
        "hybrid-remote",
        false,
    ));

    ScenarioOutcome {
        backend,
        plan: plan.clone(),
        violations,
        staged_tasks: result.staged_tasks,
        dropped_tasks: result.dropped_tasks,
        degraded_tasks: result.degraded_tasks,
        outputs: result.outputs.len(),
        schedule: injector.schedule(),
        events,
    }
}
