//! chaos — run fault-injection scenarios from the command line.
//!
//! ```text
//! chaos                         # run the pinned seed corpus, all backends
//! chaos --random 5              # 5 fresh time-derived seeds on top
//! chaos --seed 0x2a             # one seed, plan derived from it
//! chaos --seed 0x2a --plan 'seed=0x2a,drop=8' --backend remote
//! chaos --list                  # print the pinned corpus and exit
//! ```
//!
//! On an oracle failure the harness shrinks the plan to a (locally)
//! minimal reproduction, prints the report with a paste-ready repro
//! command, and writes the failing run's journal to
//! `target/chaos/seed-<seed>-<backend>.jsonl` (override with `--out`).
//! Exit code 1 if any scenario failed.

use sitra_testkit::{run_scenario, shrink, Backend, FaultPlan, PINNED_SEEDS};
use std::path::PathBuf;

struct Opts {
    seeds: Vec<u64>,
    plan: Option<FaultPlan>,
    backends: Vec<Backend>,
    out: PathBuf,
    shrink_budget: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--seed S]... [--plan SPEC] [--random N] \
         [--backend insitu|local|remote|cluster|all] [--out DIR] [--shrink-budget N] [--list]"
    );
    std::process::exit(2);
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        seeds: Vec::new(),
        plan: None,
        backends: Backend::ALL.to_vec(),
        out: PathBuf::from("target/chaos"),
        shrink_budget: 24,
    };
    let mut random = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--seed" => {
                let v = value("--seed");
                opts.seeds.push(parse_u64(&v).unwrap_or_else(|| {
                    eprintln!("bad seed `{v}`");
                    usage()
                }));
            }
            "--plan" => {
                let v = value("--plan");
                match FaultPlan::parse(&v) {
                    Ok(p) => opts.plan = Some(p),
                    Err(e) => {
                        eprintln!("bad --plan: {e}");
                        usage()
                    }
                }
            }
            "--random" => {
                let v = value("--random");
                random = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --random `{v}`");
                    usage()
                });
            }
            "--backend" => {
                let v = value("--backend");
                opts.backends = match v.as_str() {
                    "all" => Backend::ALL.to_vec(),
                    other => match Backend::parse(other) {
                        Some(b) => vec![b],
                        None => {
                            eprintln!("unknown backend `{other}`");
                            usage()
                        }
                    },
                };
            }
            "--out" => opts.out = PathBuf::from(value("--out")),
            "--shrink-budget" => {
                let v = value("--shrink-budget");
                opts.shrink_budget = v.parse().unwrap_or_else(|_| {
                    eprintln!("bad --shrink-budget `{v}`");
                    usage()
                });
            }
            "--list" => {
                for seed in PINNED_SEEDS {
                    println!("{seed:#x}  {}", FaultPlan::from_seed(seed));
                }
                std::process::exit(0);
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage()
            }
        }
    }
    if opts.seeds.is_empty() && random == 0 {
        opts.seeds = PINNED_SEEDS.to_vec();
    }
    if random > 0 {
        // Fresh seeds from the wall clock: printed below, so a failing
        // one can be pinned.
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        for i in 0..random {
            let mut x = now ^ ((i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            x ^= x >> 33;
            x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            x ^= x >> 33;
            opts.seeds.push(x);
        }
    }
    if opts.plan.is_some() && opts.seeds.len() != 1 {
        eprintln!("--plan requires exactly one --seed");
        usage();
    }
    opts
}

fn main() {
    let opts = parse_opts();
    let mut failures = 0usize;
    let total = opts.seeds.len() * opts.backends.len();
    let mut ran = 0usize;
    for &seed in &opts.seeds {
        let plan = opts
            .plan
            .clone()
            .unwrap_or_else(|| FaultPlan::from_seed(seed));
        for &backend in &opts.backends {
            ran += 1;
            let outcome = run_scenario(seed, &plan, backend);
            if outcome.passed() {
                println!(
                    "[{ran}/{total}] ok   seed={seed:#x} backend={} (staged={} degraded={} faults={})",
                    backend.name(),
                    outcome.staged_tasks,
                    outcome.degraded_tasks,
                    outcome.schedule.len(),
                );
                continue;
            }
            failures += 1;
            println!(
                "[{ran}/{total}] FAIL seed={seed:#x} backend={}",
                backend.name()
            );
            let minimal = shrink::minimize(
                &plan,
                |candidate| !run_scenario(seed, candidate, backend).passed(),
                opts.shrink_budget,
            );
            eprint!("{}", shrink::report(seed, &outcome, &minimal));
            if let Err(e) = std::fs::create_dir_all(&opts.out) {
                eprintln!("cannot create {}: {e}", opts.out.display());
                continue;
            }
            let path = opts
                .out
                .join(format!("seed-{seed:x}-{}.jsonl", backend.name()));
            let mut body = String::new();
            for event in &outcome.events {
                if let Ok(line) = serde_json::to_string(event) {
                    body.push_str(&line);
                    body.push('\n');
                }
            }
            match std::fs::write(&path, body) {
                Ok(()) => eprintln!("  journal:      {}", path.display()),
                Err(e) => eprintln!("  journal write failed: {e}"),
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures}/{total} scenarios failed");
        std::process::exit(1);
    }
    println!("all {total} scenarios passed");
}
