//! Greedy plan minimization: given a failing [`FaultPlan`], find a
//! simpler plan that still fails, so the reproduction in the report is
//! as small as possible.
//!
//! The vendored proptest stand-in has no shrinking of its own, so the
//! harness does it here: structural simplifications first (drop the
//! crash, clear the partitions), then zeroing whole fault classes, then
//! halving the surviving rates — rerunning the failure predicate after
//! each candidate and keeping it only if the failure persists. The
//! predicate is typically a full scenario run, so the budget caps how
//! many reruns a shrink may spend.

use crate::plan::FaultPlan;
use crate::scenario::ScenarioOutcome;

/// One simplification step strictly smaller than `plan`, or `None` if
/// the plan is already minimal along every axis this shrinker knows.
fn candidates(plan: &FaultPlan) -> Vec<FaultPlan> {
    let mut out = Vec::new();
    if plan.crash.is_some() {
        out.push(FaultPlan {
            crash: None,
            ..plan.clone()
        });
    }
    if !plan.partitions.is_empty() {
        out.push(FaultPlan {
            partitions: Vec::new(),
            ..plan.clone()
        });
    }
    if plan.instance_loss.is_some() {
        out.push(FaultPlan {
            instance_loss: None,
            ..plan.clone()
        });
    }
    if plan.scale.is_some() {
        out.push(FaultPlan {
            scale: None,
            ..plan.clone()
        });
    }
    // Zero one whole fault class at a time...
    for i in 0..5 {
        let mut c = plan.clone();
        let rate = match i {
            0 => &mut c.drop_per_mille,
            1 => &mut c.dup_per_mille,
            2 => &mut c.delay_per_mille,
            3 => &mut c.reorder_per_mille,
            _ => &mut c.cut_per_mille,
        };
        if *rate != 0 {
            *rate = 0;
            out.push(c);
        }
    }
    // ...then halve what refuses to disappear.
    for i in 0..5 {
        let mut c = plan.clone();
        let rate = match i {
            0 => &mut c.drop_per_mille,
            1 => &mut c.dup_per_mille,
            2 => &mut c.delay_per_mille,
            3 => &mut c.reorder_per_mille,
            _ => &mut c.cut_per_mille,
        };
        if *rate > 1 {
            *rate /= 2;
            out.push(c);
        }
    }
    if plan.max_delay_ms > 1 && (plan.delay_per_mille > 0 || plan.reorder_per_mille > 0) {
        out.push(FaultPlan {
            max_delay_ms: plan.max_delay_ms / 2,
            ..plan.clone()
        });
    }
    out
}

/// Greedily minimize `plan` under `still_fails`, spending at most
/// `budget` predicate evaluations. The input plan is assumed failing;
/// the result is a (locally) minimal plan that still fails.
pub fn minimize<F>(plan: &FaultPlan, mut still_fails: F, budget: usize) -> FaultPlan
where
    F: FnMut(&FaultPlan) -> bool,
{
    let mut current = plan.clone();
    let mut evals = 0usize;
    'outer: loop {
        for candidate in candidates(&current) {
            if evals >= budget {
                break 'outer;
            }
            evals += 1;
            if still_fails(&candidate) {
                current = candidate;
                continue 'outer; // restart from the simpler plan
            }
        }
        break; // fixpoint: no candidate still fails
    }
    current
}

/// The human-facing failure report: what broke, under which plan, and
/// the exact command that reproduces it.
pub fn report(seed: u64, outcome: &ScenarioOutcome, minimal: &FaultPlan) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "chaos scenario FAILED: seed={seed:#x} backend={}\n",
        outcome.backend.name()
    ));
    s.push_str(&format!(
        "  staged={} dropped={} degraded={} outputs={} faults-injected={}\n",
        outcome.staged_tasks,
        outcome.dropped_tasks,
        outcome.degraded_tasks,
        outcome.outputs,
        outcome.schedule.len(),
    ));
    s.push_str("  oracle violations:\n");
    for v in &outcome.violations {
        s.push_str(&format!("    - {v}\n"));
    }
    s.push_str(&format!("  plan:         {}\n", outcome.plan));
    s.push_str(&format!("  minimal plan: {minimal}\n"));
    s.push_str(&format!(
        "  reproduce:    cargo run -p sitra-testkit --bin chaos -- --seed {seed:#x} --plan '{minimal}' --backend {}\n",
        outcome.backend.name()
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{CrashPlan, PartitionWindow};

    #[test]
    fn minimize_converges_to_the_one_guilty_class() {
        // A busy plan where only `drop` matters: the minimizer must
        // strip the crash, the partitions, and every other class, and
        // walk drop down to 1‰.
        let busy = FaultPlan {
            seed: 9,
            drop_per_mille: 16,
            dup_per_mille: 12,
            delay_per_mille: 20,
            max_delay_ms: 10,
            reorder_per_mille: 14,
            cut_per_mille: 6,
            partitions: vec![PartitionWindow {
                from_tick: 0,
                until_tick: 50,
            }],
            crash: Some(CrashPlan::AfterOutputs {
                outputs: 1,
                restart: false,
            }),
            instance_loss: Some(crate::plan::InstanceLoss {
                member: 0,
                at_tick: 30,
            }),
            scale: Some(crate::plan::ScaleEvent {
                delta: 1,
                at_tick: 40,
            }),
        };
        let mut evals = 0;
        let minimal = minimize(
            &busy,
            |p| {
                evals += 1;
                p.drop_per_mille > 0
            },
            200,
        );
        assert!(minimal.drop_per_mille >= 1);
        assert_eq!(minimal.dup_per_mille, 0);
        assert_eq!(minimal.delay_per_mille, 0);
        assert_eq!(minimal.reorder_per_mille, 0);
        assert_eq!(minimal.cut_per_mille, 0);
        assert!(minimal.partitions.is_empty());
        assert!(minimal.crash.is_none());
        assert!(minimal.instance_loss.is_none());
        assert!(minimal.scale.is_none());
        assert_eq!(minimal.drop_per_mille, 1, "halving should reach the floor");
        assert!(evals <= 200);
    }

    #[test]
    fn minimize_respects_the_budget() {
        let busy = FaultPlan {
            drop_per_mille: 1000,
            ..FaultPlan::fault_free(1)
        };
        let mut evals = 0usize;
        let _ = minimize(
            &busy,
            |p| {
                evals += 1;
                p.drop_per_mille > 0
            },
            3,
        );
        assert!(evals <= 3);
    }
}
