//! The bridge from a [`FaultPlan`] to the `sitra-net` fault seam: a
//! [`PlanInjector`] implements [`sitra_net::FaultInjector`], tracking a
//! virtual clock (one tick per observed frame) and a per-connection
//! frame index, and recording every non-`Deliver` decision so a test
//! can assert that identical seed + plan reproduce an identical fault
//! schedule.
//!
//! Raw connection ids are process-global and monotonically increasing,
//! so they differ from run to run; the injector therefore numbers
//! connections *densely in order of first frame*. Given the same
//! traffic trace, the dense numbering — and hence the schedule — is
//! identical across runs and processes.

use crate::plan::FaultPlan;
use parking_lot::Mutex;
use sitra_net::{FaultAction, FaultInjector};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// One recorded fault decision: frame `op` of dense connection `conn`
/// got `action`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Dense connection index (order of first observed frame).
    pub conn: u64,
    /// Per-connection frame index.
    pub op: u64,
    /// What happened to the frame.
    pub action: FaultAction,
}

struct ConnState {
    dense: u64,
    ops: u64,
}

/// A [`FaultInjector`] executing a [`FaultPlan`].
pub struct PlanInjector {
    plan: FaultPlan,
    tick: AtomicU64,
    conns: Mutex<HashMap<u64, ConnState>>,
    schedule: Mutex<Vec<ScheduleEntry>>,
}

impl PlanInjector {
    /// An injector executing `plan`, starting at tick 0.
    pub fn new(plan: FaultPlan) -> PlanInjector {
        PlanInjector {
            plan,
            tick: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            schedule: Mutex::new(Vec::new()),
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Current virtual-clock value (frames observed so far).
    pub fn tick(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    /// Every non-`Deliver` decision taken so far, in decision order.
    pub fn schedule(&self) -> Vec<ScheduleEntry> {
        self.schedule.lock().clone()
    }
}

impl FaultInjector for PlanInjector {
    fn on_frame(&self, conn: u64, _peer: &str, _len: usize) -> FaultAction {
        self.tick.fetch_add(1, Ordering::Relaxed);
        let (dense, op) = {
            let mut conns = self.conns.lock();
            let next_dense = conns.len() as u64;
            let state = conns.entry(conn).or_insert(ConnState {
                dense: next_dense,
                ops: 0,
            });
            let op = state.ops;
            state.ops += 1;
            (state.dense, op)
        };
        let action = self.plan.decide(dense, op);
        if action != FaultAction::Deliver {
            self.schedule.lock().push(ScheduleEntry {
                conn: dense,
                op,
                action,
            });
        }
        action
    }

    fn allow_connect(&self, _addr: &str) -> bool {
        !self.plan.partitioned_at(self.tick())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reproducibility contract the chaos suite leans on: two
    /// injectors for the same plan, fed the same traffic trace, take
    /// identical decisions — even though the raw connection ids differ
    /// between the two runs (as they do between real runs).
    #[test]
    fn identical_plan_and_trace_reproduce_identical_schedule() {
        let plan = FaultPlan::from_seed(0x5EED);
        let run = |conn_base: u64| {
            let inj = PlanInjector::new(plan.clone());
            let mut actions = Vec::new();
            // Three interleaved connections, 120 frames each, in a
            // fixed round-robin trace.
            for op in 0..120u64 {
                for c in 0..3u64 {
                    actions.push(inj.on_frame(conn_base + c, "peer", 64));
                }
                let _ = op;
            }
            (actions, inj.schedule())
        };
        let (actions_a, schedule_a) = run(1);
        let (actions_b, schedule_b) = run(901); // different raw ids
        assert_eq!(actions_a, actions_b);
        assert_eq!(schedule_a, schedule_b);
        assert!(
            !schedule_a.is_empty(),
            "from_seed(0x5EED) should fault at least once in 360 frames"
        );
    }

    #[test]
    fn partition_follows_the_virtual_clock() {
        let plan = FaultPlan {
            partitions: vec![crate::plan::PartitionWindow {
                from_tick: 2,
                until_tick: 4,
            }],
            ..FaultPlan::fault_free(3)
        };
        let inj = PlanInjector::new(plan);
        assert!(inj.allow_connect("inproc://x"));
        inj.on_frame(1, "p", 1);
        inj.on_frame(1, "p", 1);
        assert!(!inj.allow_connect("inproc://x")); // tick 2: partitioned
        inj.on_frame(1, "p", 1);
        inj.on_frame(1, "p", 1);
        assert!(inj.allow_connect("inproc://x")); // tick 4: healed
    }
}
