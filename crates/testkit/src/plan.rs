//! Seeded fault plans: a compact, pure description of everything the
//! chaos harness will do to a run.
//!
//! A [`FaultPlan`] is deliberately *stateless*: the fate of a frame is
//! a pure function of `(plan, connection index, per-connection frame
//! index)`, and partitions/crashes are expressed against a virtual
//! clock of observed frames. Identical plan + identical traffic trace
//! ⇒ identical fault schedule, which is what makes a failing seed
//! replayable (and shrinkable) after the fact.

use proptest::prelude::*;
use proptest::BoxedStrategy;
use sitra_net::FaultAction;
use std::fmt;
use std::time::Duration;

/// splitmix64: the tiny, high-quality mixer every decision runs
/// through. Public-domain algorithm (Steele et al.).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A half-open window `[from_tick, until_tick)` of the virtual clock
/// during which every new connection attempt is refused — a network
/// partition. The virtual clock advances by one per frame the injector
/// observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartitionWindow {
    /// First tick at which dials are refused.
    pub from_tick: u64,
    /// First tick at which dials succeed again.
    pub until_tick: u64,
}

/// When (and whether) the staging server is killed, and whether a
/// replacement comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPlan {
    /// Kill the server from inside the driver's collection path after
    /// this many staged outputs were collected; optionally restart a
    /// fresh server on the same endpoint immediately.
    AfterOutputs {
        /// Collected outputs before the kill.
        outputs: usize,
        /// Start a replacement server on the same address.
        restart: bool,
    },
    /// Kill the process once the virtual clock reaches this tick
    /// (used by `sitra-staged --fault-plan`; the scenario runner has no
    /// process to kill and ignores it).
    AtTick {
        /// Virtual-clock tick of the kill.
        tick: u64,
    },
}

/// Whole-instance loss in a cluster scenario: the member at `member`
/// (an index into the sorted cluster endpoint list, wrapped modulo the
/// member count) is killed outright — no handoff, queued tasks dropped
/// — once the virtual clock reaches `at_tick`. Single-server backends
/// have no second instance to lose and ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceLoss {
    /// Index of the doomed member.
    pub member: u32,
    /// Virtual-clock tick of the kill.
    pub at_tick: u64,
}

/// A scheduled elastic resize of the bucket-worker pool: once the
/// virtual clock reaches `at_tick`, `delta` additional workers are
/// spawned (positive) or `|delta|` live buckets are drained and
/// retired (negative). This is an *event*, not a fault — the oracles
/// must hold across it either way, which is exactly what makes it
/// worth scheduling next to the faults: a bucket retired mid-drain
/// while the network is cutting frames must still lose nothing.
/// In-situ and local backends have no externally scalable pool and
/// ignore it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// Workers to add (positive) or buckets to drain-then-retire
    /// (negative). Zero is rejected by `parse`.
    pub delta: i32,
    /// Virtual-clock tick at which the resize fires.
    pub at_tick: u64,
}

/// A seeded, self-describing fault plan. Rates are per-mille per
/// frame; the remaining mass delivers the frame untouched.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed every per-frame decision is derived from.
    pub seed: u64,
    /// ‰ of frames discarded (severing the link — see `sitra_net::fault`).
    pub drop_per_mille: u16,
    /// ‰ of frames delivered twice.
    pub dup_per_mille: u16,
    /// ‰ of frames delayed before delivery.
    pub delay_per_mille: u16,
    /// Upper bound on an injected delay, in milliseconds.
    pub max_delay_ms: u64,
    /// ‰ of frames held back so concurrent traffic overtakes.
    pub reorder_per_mille: u16,
    /// ‰ of frames on which the link is cut (send fails).
    pub cut_per_mille: u16,
    /// Windows of the virtual clock during which dials are refused.
    pub partitions: Vec<PartitionWindow>,
    /// Scheduled server crash, if any.
    pub crash: Option<CrashPlan>,
    /// Scheduled whole-instance loss (cluster scenarios), if any.
    pub instance_loss: Option<InstanceLoss>,
    /// Scheduled bucket-pool resize (staging scenarios), if any.
    pub scale: Option<ScaleEvent>,
}

impl FaultPlan {
    /// A plan that injects nothing (useful as a shrinking floor and for
    /// golden runs driven through the same machinery).
    pub fn fault_free(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            drop_per_mille: 0,
            dup_per_mille: 0,
            delay_per_mille: 0,
            max_delay_ms: 0,
            reorder_per_mille: 0,
            cut_per_mille: 0,
            partitions: Vec::new(),
            crash: None,
            instance_loss: None,
            scale: None,
        }
    }

    /// Derive a moderately hostile plan from a seed alone — what the
    /// pinned corpus and the `--random` smoke runs use. Rates are kept
    /// low enough that most traffic flows (so remote runs make
    /// progress) but high enough that every fault class fires across a
    /// handful of seeds.
    pub fn from_seed(seed: u64) -> FaultPlan {
        let h = |i: u64| splitmix64(seed ^ splitmix64(i));
        let mut plan = FaultPlan {
            seed,
            drop_per_mille: (h(1) % 12) as u16,
            dup_per_mille: (h(2) % 10) as u16,
            delay_per_mille: (h(3) % 25) as u16,
            max_delay_ms: 1 + h(4) % 15,
            reorder_per_mille: (h(5) % 20) as u16,
            cut_per_mille: (h(6) % 8) as u16,
            partitions: Vec::new(),
            crash: None,
            // Never set here: the pinned corpus predates instance loss
            // and must keep deriving the exact same plans. Cluster
            // plans opt in via `iloss=` specs or `arb_fault_plan`.
            instance_loss: None,
            // Same deal: pool resizes postdate the corpus and opt in
            // via `scale=` specs or `arb_fault_plan`.
            scale: None,
        };
        if h(7) % 4 == 0 {
            let from = h(8) % 200;
            plan.partitions.push(PartitionWindow {
                from_tick: from,
                until_tick: from + 10 + h(9) % 50,
            });
        }
        if h(10) % 3 == 0 {
            plan.crash = Some(CrashPlan::AfterOutputs {
                outputs: 1 + (h(11) % 3) as usize,
                restart: h(12) % 2 == 0,
            });
        }
        plan
    }

    /// The fate of frame number `op` on (dense) connection `conn` — a
    /// pure function: calling this twice with the same arguments always
    /// returns the same action.
    pub fn decide(&self, conn: u64, op: u64) -> FaultAction {
        let mut h = splitmix64(self.seed ^ splitmix64(conn.wrapping_add(0x00C0_FFEE)));
        h = splitmix64(h ^ op);
        let roll = (h % 1000) as u16;
        let mut bound = self.drop_per_mille;
        if roll < bound {
            return FaultAction::Drop;
        }
        bound = bound.saturating_add(self.dup_per_mille);
        if roll < bound {
            return FaultAction::Duplicate;
        }
        bound = bound.saturating_add(self.delay_per_mille);
        if roll < bound {
            return FaultAction::Delay(self.jitter(h));
        }
        bound = bound.saturating_add(self.reorder_per_mille);
        if roll < bound {
            return FaultAction::Reorder(self.jitter(h));
        }
        bound = bound.saturating_add(self.cut_per_mille);
        if roll < bound {
            return FaultAction::Cut;
        }
        FaultAction::Deliver
    }

    fn jitter(&self, h: u64) -> Duration {
        Duration::from_millis(1 + splitmix64(h) % self.max_delay_ms.max(1))
    }

    /// Whether dials are refused at virtual-clock `tick`.
    pub fn partitioned_at(&self, tick: u64) -> bool {
        self.partitions
            .iter()
            .any(|w| tick >= w.from_tick && tick < w.until_tick)
    }

    /// Whether the plan can do anything at all.
    pub fn is_fault_free(&self) -> bool {
        self.drop_per_mille == 0
            && self.dup_per_mille == 0
            && self.delay_per_mille == 0
            && self.reorder_per_mille == 0
            && self.cut_per_mille == 0
            && self.partitions.is_empty()
            && self.crash.is_none()
            && self.instance_loss.is_none()
            && self.scale.is_none()
    }

    /// Parse the spec format produced by `Display`:
    /// `seed=42,drop=8,dup=5,delay=10,delaymax=12,reorder=6,cut=3,part=10..40,crash=after:2:restart,iloss=1:120,scale=-1:80`
    ///
    /// Every field is optional except `seed`; `crash` is
    /// `after:N[:restart]` or `at:TICK`; `iloss` is `MEMBER:TICK`;
    /// `scale` is `DELTA:TICK` with a signed, non-zero `DELTA`. This
    /// is what `sitra-staged --fault-plan` and the chaos binary's
    /// `--plan` accept, so a shrink report pastes straight back in.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut seed = None;
        let mut plan = FaultPlan::fault_free(0);
        for field in spec.split(',').filter(|f| !f.trim().is_empty()) {
            let (key, value) = field
                .trim()
                .split_once('=')
                .ok_or_else(|| format!("field `{field}` is not key=value"))?;
            let uint = |v: &str| -> Result<u64, String> {
                let parsed = if let Some(hex) = v.strip_prefix("0x") {
                    u64::from_str_radix(hex, 16)
                } else {
                    v.parse()
                };
                parsed.map_err(|_| format!("`{v}` is not a number (in `{field}`)"))
            };
            match key {
                "seed" => seed = Some(uint(value)?),
                "drop" => plan.drop_per_mille = uint(value)? as u16,
                "dup" => plan.dup_per_mille = uint(value)? as u16,
                "delay" => plan.delay_per_mille = uint(value)? as u16,
                "delaymax" => plan.max_delay_ms = uint(value)?,
                "reorder" => plan.reorder_per_mille = uint(value)? as u16,
                "cut" => plan.cut_per_mille = uint(value)? as u16,
                "part" => {
                    let (from, until) = value
                        .split_once("..")
                        .ok_or_else(|| format!("`{value}` is not FROM..UNTIL"))?;
                    plan.partitions.push(PartitionWindow {
                        from_tick: uint(from)?,
                        until_tick: uint(until)?,
                    });
                }
                "crash" => {
                    let mut parts = value.split(':');
                    match parts.next() {
                        Some("after") => {
                            let outputs = uint(
                                parts
                                    .next()
                                    .ok_or_else(|| "crash=after needs :N".to_string())?,
                            )? as usize;
                            let restart = match parts.next() {
                                None => false,
                                Some("restart") => true,
                                Some(other) => return Err(format!("unknown crash flag `{other}`")),
                            };
                            plan.crash = Some(CrashPlan::AfterOutputs { outputs, restart });
                        }
                        Some("at") => {
                            let tick = uint(
                                parts
                                    .next()
                                    .ok_or_else(|| "crash=at needs :TICK".to_string())?,
                            )?;
                            plan.crash = Some(CrashPlan::AtTick { tick });
                        }
                        _ => return Err(format!("unknown crash spec `{value}`")),
                    }
                }
                "iloss" => {
                    let (member, tick) = value
                        .split_once(':')
                        .ok_or_else(|| format!("`{value}` is not MEMBER:TICK"))?;
                    plan.instance_loss = Some(InstanceLoss {
                        member: uint(member)? as u32,
                        at_tick: uint(tick)?,
                    });
                }
                "scale" => {
                    let (delta, tick) = value
                        .split_once(':')
                        .ok_or_else(|| format!("`{value}` is not DELTA:TICK"))?;
                    let delta: i32 = delta
                        .parse()
                        .map_err(|_| format!("`{delta}` is not a signed delta (in `{field}`)"))?;
                    if delta == 0 {
                        return Err("scale delta must be non-zero".to_string());
                    }
                    plan.scale = Some(ScaleEvent {
                        delta,
                        at_tick: uint(tick)?,
                    });
                }
                other => return Err(format!("unknown field `{other}`")),
            }
        }
        plan.seed = seed.ok_or_else(|| "spec is missing seed=".to_string())?;
        Ok(plan)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={:#x}", self.seed)?;
        for (key, value) in [
            ("drop", self.drop_per_mille as u64),
            ("dup", self.dup_per_mille as u64),
            ("delay", self.delay_per_mille as u64),
            ("delaymax", self.max_delay_ms),
            ("reorder", self.reorder_per_mille as u64),
            ("cut", self.cut_per_mille as u64),
        ] {
            if value != 0 {
                write!(f, ",{key}={value}")?;
            }
        }
        for w in &self.partitions {
            write!(f, ",part={}..{}", w.from_tick, w.until_tick)?;
        }
        match self.crash {
            Some(CrashPlan::AfterOutputs { outputs, restart }) => {
                write!(f, ",crash=after:{outputs}")?;
                if restart {
                    write!(f, ":restart")?;
                }
            }
            Some(CrashPlan::AtTick { tick }) => write!(f, ",crash=at:{tick}")?,
            None => {}
        }
        if let Some(loss) = self.instance_loss {
            write!(f, ",iloss={}:{}", loss.member, loss.at_tick)?;
        }
        if let Some(scale) = self.scale {
            write!(f, ",scale={}:{}", scale.delta, scale.at_tick)?;
        }
        Ok(())
    }
}

/// Proptest strategy over arbitrary (bounded-hostility) fault plans.
pub fn arb_fault_plan() -> BoxedStrategy<FaultPlan> {
    let window = (0u64..300, 1u64..80)
        .prop_map(|(from, len)| PartitionWindow {
            from_tick: from,
            until_tick: from + len,
        })
        .boxed();
    let crash = prop_oneof![
        Just(None),
        (1usize..4, any::<bool>())
            .prop_map(|(outputs, restart)| Some(CrashPlan::AfterOutputs { outputs, restart })),
        (0u64..500).prop_map(|tick| Some(CrashPlan::AtTick { tick })),
    ]
    .boxed();
    let instance_loss = prop_oneof![
        Just(None),
        (0u32..4, 0u64..500).prop_map(|(member, at_tick)| Some(InstanceLoss { member, at_tick })),
    ]
    .boxed();
    let scale = prop_oneof![
        Just(None),
        (1i32..=2, any::<bool>(), 0u64..300).prop_map(|(mag, grow, at_tick)| {
            Some(ScaleEvent {
                delta: if grow { mag } else { -mag },
                at_tick,
            })
        }),
    ]
    .boxed();
    (
        any::<u64>(),
        (0u16..40, 0u16..40, 0u16..40),
        (0u16..40, 0u16..40, 1u64..30),
        prop::collection::vec(window, 0..3),
        crash,
        instance_loss,
        scale,
    )
        .prop_map(
            |(
                seed,
                (drop, dup, delay),
                (reorder, cut, delaymax),
                partitions,
                crash,
                instance_loss,
                scale,
            )| {
                FaultPlan {
                    seed,
                    drop_per_mille: drop,
                    dup_per_mille: dup,
                    delay_per_mille: delay,
                    max_delay_ms: delaymax,
                    reorder_per_mille: reorder,
                    cut_per_mille: cut,
                    partitions,
                    crash,
                    instance_loss,
                    scale,
                }
            },
        )
        .boxed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrip_covers_every_field() {
        let plan = FaultPlan {
            seed: 0xDEAD_BEEF,
            drop_per_mille: 8,
            dup_per_mille: 5,
            delay_per_mille: 10,
            max_delay_ms: 12,
            reorder_per_mille: 6,
            cut_per_mille: 3,
            partitions: vec![
                PartitionWindow {
                    from_tick: 10,
                    until_tick: 40,
                },
                PartitionWindow {
                    from_tick: 90,
                    until_tick: 95,
                },
            ],
            crash: Some(CrashPlan::AfterOutputs {
                outputs: 2,
                restart: true,
            }),
            instance_loss: Some(InstanceLoss {
                member: 1,
                at_tick: 120,
            }),
            scale: Some(ScaleEvent {
                delta: -2,
                at_tick: 80,
            }),
        };
        let spec = plan.to_string();
        assert_eq!(FaultPlan::parse(&spec).unwrap(), plan);
        // The other crash form, and the minimal form.
        let at = FaultPlan {
            crash: Some(CrashPlan::AtTick { tick: 77 }),
            ..plan.clone()
        };
        assert_eq!(FaultPlan::parse(&at.to_string()).unwrap(), at);
        let bare = FaultPlan::fault_free(7);
        assert_eq!(FaultPlan::parse(&bare.to_string()).unwrap(), bare);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("drop=5").is_err()); // no seed
        assert!(FaultPlan::parse("seed=1,wat=2").is_err());
        assert!(FaultPlan::parse("seed=1,part=5").is_err());
        assert!(FaultPlan::parse("seed=1,crash=never").is_err());
        assert!(FaultPlan::parse("seed=1,iloss=2").is_err());
        assert!(FaultPlan::parse("seed=1,scale=2").is_err());
        assert!(FaultPlan::parse("seed=1,scale=0:50").is_err());
        assert!(FaultPlan::parse("seed=banana").is_err());
    }

    #[test]
    fn decide_is_deterministic_and_rate_bounded() {
        let plan = FaultPlan::from_seed(42);
        let mut faults = 0usize;
        for conn in 0..4u64 {
            for op in 0..500u64 {
                let a = plan.decide(conn, op);
                assert_eq!(a, plan.decide(conn, op));
                if a != FaultAction::Deliver {
                    faults += 1;
                }
            }
        }
        // Total fault mass is < 75‰ by construction of from_seed; the
        // observed rate over 2000 frames must be in the same ballpark
        // (this is a sanity bound, not a statistical test).
        assert!(faults < 2000 * 150 / 1000, "fault rate implausibly high");
    }

    #[test]
    fn fault_free_plan_always_delivers() {
        let plan = FaultPlan::fault_free(999);
        assert!(plan.is_fault_free());
        for op in 0..200 {
            assert_eq!(plan.decide(0, op), FaultAction::Deliver);
        }
        assert!(!plan.partitioned_at(0));
    }

    #[test]
    fn partition_windows_are_half_open() {
        let plan = FaultPlan {
            partitions: vec![PartitionWindow {
                from_tick: 5,
                until_tick: 8,
            }],
            ..FaultPlan::fault_free(1)
        };
        assert!(!plan.partitioned_at(4));
        assert!(plan.partitioned_at(5));
        assert!(plan.partitioned_at(7));
        assert!(!plan.partitioned_at(8));
    }
}
