//! The scenario matrix: every registered analysis × every staging
//! backend × every admission policy × a pinned fault-plan subset, each
//! combination judged by the invariant oracles.
//!
//! Where `tests/chaos.rs` explores *depth* (one fixture roster under an
//! open-ended fault corpus, with shrinking), the matrix pins *breadth*:
//! the full five-analysis roster — the frozen chaos fixture plus the
//! Lagrangian flow map and the steerable visualization workload — runs
//! under every backend/policy combination, and every cell must hold
//! the four chaos oracles plus two workload-specific ones:
//!
//! * **flow-map golden endpoints** — the decoded flow-map termination
//!   records of every backend run are identical, record for record, to
//!   the fault-free fully-in-situ golden run (communication-free
//!   extraction means the backend cannot change a single endpoint);
//! * **steer-ack monotonicity** — once the subscriber's feedback is
//!   acknowledged, every frame it receives afterwards must be reduced
//!   under the new rate (frames are reduced at delivery time, so an
//!   acked rate can never be overtaken by an older frame).
//!
//! The matrix keeps its plans **out of the frozen chaos corpus**: plans
//! here are normalized to transport faults only (drops, delays,
//! duplicates, reorders, partitions) — crash/restart and elasticity
//! schedules remain `tests/chaos.rs` territory, so the pinned seeds
//! there keep mapping to the exact same schedules.

use crate::fixture;
use crate::injector::PlanInjector;
use crate::plan::FaultPlan;
use crate::scenario::{self, Backend};
use sitra_core::{
    run_pipeline, AnalysisSpec, HybridViz, LagrangianFlowMap, PipelineConfig, PipelineResult,
    Placement, StagingMode,
};
use sitra_dataspaces::{AdmissionPolicy, SpaceServer, SteerClient, SteerFrame};
use sitra_flowmap::FlowRecord;
use sitra_mesh::BBox3;
use sitra_net::Backoff;
use sitra_obs::VecSink;
use sitra_sim::Variable;
use sitra_viz::{TransferFunction, View, ViewAxis};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Label of the flow-map registration in the matrix roster.
pub const FLOWMAP_LABEL: &str = "flow-map";
/// Label of the steerable-visualization registration.
pub const STEER_LABEL: &str = "viz-steer";
/// Subscriber name the matrix's steering client declares.
pub const STEER_SUBSCRIBER: &str = "matrix-viewer";
/// Initial downsample rate the subscriber declares.
pub const STEER_RATE_INITIAL: u32 = 2;
/// Rate the subscriber steers to after its first frame.
pub const STEER_RATE_STEERED: u32 = 3;

/// The matrix roster: the frozen chaos fixture (`fixture::specs`)
/// plus the two new workloads. Both additions are `Placement::Hybrid`
/// — the fixture's replay checker maps only the `stats` label to
/// in-situ placement — and both aggregate deterministically from any
/// part arrival order, so golden-output byte-identity holds across
/// backends.
pub fn matrix_specs() -> Vec<AnalysisSpec> {
    let mut specs = fixture::specs();
    specs.push(AnalysisSpec::new(
        Arc::new(LagrangianFlowMap::default()),
        Placement::Hybrid,
        2,
    ));
    specs.push(
        AnalysisSpec::new(
            Arc::new(HybridViz {
                stride: 4,
                view: View::full_res(BBox3::from_dims(fixture::DIMS), ViewAxis::Z, false),
                tf: TransferFunction::hot(250.0, 2500.0),
            }),
            Placement::Hybrid,
            1,
        )
        .with_label(STEER_LABEL),
    );
    specs
}

/// The matrix pipeline configuration: the fixture geometry with the
/// matrix roster and the velocity components materialized per block
/// (the flow map advects through them).
pub fn matrix_config(buckets: usize, specs: Vec<AnalysisSpec>) -> PipelineConfig {
    let mut cfg = PipelineConfig::new([2, 2, 1], buckets, fixture::STEPS);
    cfg.analyses = specs;
    cfg.extra_variables = vec![Variable::VelU, Variable::VelV, Variable::VelW];
    cfg
}

/// The admission-policy axis: `(name, queue capacity, policy)`.
pub fn admission_policies() -> Vec<(&'static str, Option<usize>, AdmissionPolicy)> {
    vec![
        (
            "block",
            Some(4),
            AdmissionPolicy::Block {
                max_wait: Duration::from_millis(500),
            },
        ),
        ("reject-new", Some(3), AdmissionPolicy::RejectNew),
        ("shed-oldest", Some(3), AdmissionPolicy::ShedOldest),
    ]
}

/// The pinned fault-plan axis: one fault-free plan (the control row)
/// and one seeded transport-fault plan. [`scenario_matrix`] normalizes
/// whatever it is given to transport faults only.
pub fn pinned_fault_subset() -> Vec<FaultPlan> {
    vec![FaultPlan::fault_free(1), FaultPlan::from_seed(42)]
}

/// What the matrix's steering subscriber observed, judged by the
/// steer-ack monotonicity oracle.
#[derive(Debug, Clone, Default)]
pub struct SteerObservation {
    /// `(version, rate, received after the steer ack)` per frame.
    pub frames: Vec<(u64, u32, bool)>,
    /// The newest published version the steer ack reported.
    pub ack_latest_version: Option<u64>,
}

/// One matrix cell: a single analysis judged within one
/// `(backend, policy, plan)` run.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Analysis label.
    pub analysis: String,
    /// Backend name ([`Backend::name`]).
    pub backend: &'static str,
    /// Admission-policy name.
    pub policy: &'static str,
    /// Fault-plan spec string.
    pub plan: String,
    /// Oracle violations attributed to this analysis (run-wide
    /// violations are attributed to every cell of the run).
    pub violations: Vec<String>,
    /// Median completion latency over the analysis's rows (seconds).
    /// Exactly `0.0` means "not measured at the driver": in-situ
    /// placements aggregate synchronously inside the step, and on the
    /// remote backend the aggregation half lives in the bucket worker,
    /// which has no issue timestamp to measure from. Rendered as `–`
    /// in the markdown table.
    pub p50_latency_secs: f64,
    /// p99 (max, at matrix sample sizes) completion latency. Same
    /// `0.0` = unmeasured convention as `p50_latency_secs`.
    pub p99_latency_secs: f64,
}

impl MatrixCell {
    /// Did every oracle hold for this cell?
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The full matrix report.
#[derive(Debug, Clone, Default)]
pub struct MatrixReport {
    /// Every executed cell.
    pub cells: Vec<MatrixCell>,
    /// `(backend, policy, plan)` runs executed.
    pub runs: usize,
}

impl MatrixReport {
    /// Did every cell pass?
    pub fn passed(&self) -> bool {
        self.cells.iter().all(MatrixCell::passed)
    }

    /// Cells that failed at least one oracle.
    pub fn failures(&self) -> Vec<&MatrixCell> {
        self.cells.iter().filter(|c| !c.passed()).collect()
    }

    /// The matrix as a markdown table (EXPERIMENTS.md currency).
    pub fn markdown(&self) -> String {
        let mut s = String::from(
            "| analysis | backend | policy | plan | result | p50 latency | p99 latency |\n\
             |---|---|---|---|---|---|---|\n",
        );
        let ms = |secs: f64| {
            if secs == 0.0 {
                "–".to_string()
            } else {
                format!("{:.1} ms", secs * 1e3)
            }
        };
        for c in &self.cells {
            s.push_str(&format!(
                "| {} | {} | {} | `{}` | {} | {} | {} |\n",
                c.analysis,
                c.backend,
                c.policy,
                c.plan,
                if c.passed() { "pass" } else { "FAIL" },
                ms(c.p50_latency_secs),
                ms(c.p99_latency_secs),
            ));
        }
        s
    }

    /// The matrix as JSON lines (one object per cell), the
    /// machine-readable `BENCH_*.json` currency.
    pub fn json_lines(&self) -> String {
        let jstr = |s: &str| serde_json::to_string(s).expect("string serializes");
        let mut out = String::new();
        for c in &self.cells {
            let id = format!("{}/{}/{}/{}", c.backend, c.policy, c.analysis, c.plan);
            let violations = c
                .violations
                .iter()
                .map(|v| jstr(v))
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&format!(
                "{{\"group\":\"matrix\",\"id\":{},\"passed\":{},\"violations\":[{}],\
                 \"p50_latency_ns\":{},\"p99_latency_ns\":{}}}\n",
                jstr(&id),
                c.passed(),
                violations,
                (c.p50_latency_secs * 1e9) as u64,
                (c.p99_latency_secs * 1e9) as u64,
            ));
        }
        out
    }
}

/// Strip everything but transport faults from a plan: the matrix pins
/// drop/delay/dup/reorder/partition behaviour; crash and elasticity
/// schedules stay in the chaos corpus.
fn transport_only(plan: &FaultPlan) -> FaultPlan {
    let mut p = plan.clone();
    p.crash = None;
    p.scale = None;
    p.instance_loss = None;
    p
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run the full matrix: `backends` × [`admission_policies`] × `plans`
/// (normalized to transport faults), one pipeline run per combination
/// over the given roster, every run judged by all six oracles.
pub fn scenario_matrix(
    backends: &[Backend],
    plans: &[FaultPlan],
    specs_fn: impl Fn() -> Vec<AnalysisSpec>,
) -> MatrixReport {
    let mut report = MatrixReport::default();
    for backend in backends {
        for (policy_name, capacity, policy) in admission_policies() {
            for plan in plans {
                let plan = transport_only(plan);
                let outcome =
                    run_matrix_scenario(*backend, policy_name, capacity, policy, &plan, &specs_fn);
                report.runs += 1;
                report.cells.extend(outcome);
            }
        }
    }
    report
}

/// One matrix run: golden fully-in-situ reference, then the backend
/// under the plan with the policy, then the oracles. Returns one cell
/// per analysis in the roster.
fn run_matrix_scenario(
    backend: Backend,
    policy_name: &'static str,
    capacity: Option<usize>,
    policy: AdmissionPolicy,
    plan: &FaultPlan,
    specs_fn: &impl Fn() -> Vec<AnalysisSpec>,
) -> Vec<MatrixCell> {
    let _obs = sitra_obs::isolate();
    let seed = plan.seed;
    let specs = specs_fn();

    // Golden run: fault-free, fully in-situ, before the injector or
    // journal sink exist. The reference for both the byte-identity and
    // the flow-map endpoint oracles.
    let mut golden_cfg = matrix_config(2, specs_fn());
    golden_cfg.staging = StagingMode::InSitu;
    let golden = run_pipeline(&mut fixture::sim(seed), &golden_cfg).expect("golden matrix config");
    let golden_outputs = fixture::sorted_encoded_outputs(&golden);
    let golden_flow = flow_records(&golden);

    // Arm the harness. The injector sits under *every* sitra-net
    // connection, including the steering subscriber's — which is
    // exactly the point.
    let sink = Arc::new(VecSink::new());
    let prev_sink = sitra_obs::install_sink(Some(sink.clone()));
    let injector = Arc::new(PlanInjector::new(plan.clone()));
    let prev_injector = sitra_net::install_fault_injector(Some(injector.clone()));

    let mut violations = Vec::new();

    // A steering subscriber rides along on every backend that stages
    // (a fully in-situ pipeline rejects the endpoint by design).
    let steer_addr = (backend != Backend::InSitu).then(|| scenario::unique_endpoint(seed));
    let steer_stop = Arc::new(AtomicBool::new(false));
    let subscriber = steer_addr.as_ref().map(|addr| {
        let addr = addr.clone();
        let stop = Arc::clone(&steer_stop);
        std::thread::Builder::new()
            .name("matrix-steer-subscriber".into())
            .spawn(move || {
                let backoff = Backoff {
                    initial: Duration::from_millis(2),
                    max: Duration::from_millis(20),
                    attempts: 25,
                };
                let mut obs = SteerObservation::default();
                let Ok(mut client) =
                    SteerClient::connect(&addr, STEER_SUBSCRIBER, STEER_RATE_INITIAL, backoff)
                else {
                    return obs;
                };
                loop {
                    match client.next_frame(Duration::from_millis(300)) {
                        Ok(Some(SteerFrame { version, rate, .. })) => {
                            obs.frames
                                .push((version, rate, obs.ack_latest_version.is_some()));
                            // Steer once, right after the first frame.
                            if obs.ack_latest_version.is_none() {
                                if let Ok(latest) =
                                    client.steer(STEER_RATE_STEERED, Duration::from_millis(300))
                                {
                                    obs.ack_latest_version = Some(latest);
                                }
                            }
                        }
                        Ok(None) => break, // server drained: run is over
                        Err(_) if stop.load(Ordering::SeqCst) => break,
                        Err(_) => continue, // transient fault: re-pull
                    }
                }
                obs
            })
            .expect("spawn steering subscriber")
    });

    let result = match backend {
        Backend::InSitu => {
            let mut cfg = matrix_config(2, specs_fn());
            cfg.staging = StagingMode::InSitu;
            run_pipeline(&mut fixture::sim(seed), &cfg).expect("matrix insitu config")
        }
        Backend::Local => {
            let mut cfg = matrix_config(2, specs_fn());
            cfg.steering = steer_addr.as_ref().map(|a| a.to_string());
            run_pipeline(&mut fixture::sim(seed), &cfg).expect("matrix local config")
        }
        Backend::Remote | Backend::Cluster => {
            // The matrix drives the single-server remote path; the
            // cluster backend stays in its dedicated suite.
            let addr = scenario::unique_endpoint(seed);
            let server =
                SpaceServer::start_with(&addr, 1, capacity, policy).expect("start staging server");
            let endpoint = server.addr();
            let stop = Arc::new(AtomicBool::new(false));
            let worker = scenario::spawn_remote_worker_with(&endpoint, specs_fn(), 0, &stop);

            let mut cfg = matrix_config(2, specs_fn())
                .with_staging_endpoint(endpoint.to_string())
                .with_staging_deadline(Duration::from_millis(700))
                .with_staging_max_inflight(2);
            cfg.steering = steer_addr.as_ref().map(|a| a.to_string());
            let result = run_pipeline(&mut fixture::sim(seed), &cfg).expect("matrix remote config");

            stop.store(true, Ordering::SeqCst);
            server.shutdown();
            if worker.join().is_err() {
                violations.push("matrix: bucket worker panicked".into());
            }
            result
        }
    };

    // Join the subscriber before disarming: its reconnects must stop
    // generating events first.
    steer_stop.store(true, Ordering::SeqCst);
    let steer_obs = subscriber.map(|h| h.join().expect("join steering subscriber"));

    // Disarm before judging.
    sitra_net::install_fault_injector(prev_injector);
    let events = sink.take();
    sitra_obs::install_sink(prev_sink);

    // Oracle 1 — conservation (matrix roster flavour).
    let expected: usize = specs
        .iter()
        .filter(|s| s.placement == Placement::Hybrid)
        .map(|s| {
            (1..=fixture::STEPS as u64)
                .filter(|&step| s.due(step))
                .count()
        })
        .sum();
    if result.staged_tasks != expected {
        violations.push(format!(
            "conservation: staged {} tasks, roster is due {expected}",
            result.staged_tasks
        ));
    }
    let mut hybrid_outputs = 0usize;
    let mut seen: Vec<(String, u64)> = Vec::new();
    for (label, step, _) in &result.outputs {
        if seen.contains(&(label.clone(), *step)) {
            violations.push(format!("conservation: duplicate output for {label}@{step}"));
        }
        seen.push((label.clone(), *step));
        let Some(spec) = specs.iter().find(|s| &s.label == label) else {
            violations.push(format!("conservation: output for unknown label `{label}`"));
            continue;
        };
        if !spec.due(*step) {
            violations.push(format!(
                "conservation: {label}@{step} is off the interval schedule"
            ));
        }
        if spec.placement == Placement::Hybrid {
            hybrid_outputs += 1;
        }
    }
    if hybrid_outputs + result.dropped_tasks != result.staged_tasks {
        violations.push(format!(
            "conservation: {} hybrid outputs + {} dropped != {} staged",
            hybrid_outputs, result.dropped_tasks, result.staged_tasks
        ));
    }

    // Oracle 2 — no-loss. The fixture's buffers and queue bounds are
    // sized so nothing may be dropped under any matrix policy.
    if result.dropped_tasks != 0 {
        violations.push(format!("no-loss: {} tasks dropped", result.dropped_tasks));
    }

    // Oracle 3 — golden output (byte identity across the whole roster).
    if result.dropped_tasks == 0 {
        let got = fixture::sorted_encoded_outputs(&result);
        if got != golden_outputs {
            let detail = golden_outputs
                .iter()
                .zip(&got)
                .find(|(g, r)| g != r)
                .map(|(g, _)| format!("first divergence at {}@{}", g.0, g.1))
                .unwrap_or_else(|| {
                    format!(
                        "output count {} != golden {}",
                        got.len(),
                        golden_outputs.len()
                    )
                });
            violations.push(format!("golden-output: outputs diverge ({detail})"));
        }
    }

    // Oracle 4 — replay identity.
    let (placement, driver_aggregates) = match backend {
        Backend::InSitu => ("insitu", true),
        Backend::Local => ("hybrid", true),
        Backend::Remote | Backend::Cluster => ("hybrid-remote", false),
    };
    violations.extend(fixture::replay_violations(
        backend.name(),
        &result,
        &events,
        placement,
        driver_aggregates,
    ));

    // Oracle 5 — flow-map golden endpoints. Decoded termination
    // records, not just bytes: every record must match the golden run
    // exactly, stay strictly seed-sorted, and carry finite endpoints.
    let flow = flow_records(&result);
    if flow.len() != golden_flow.len() {
        violations.push(format!(
            "flow-map: {} outputs != golden {}",
            flow.len(),
            golden_flow.len()
        ));
    }
    for (step, recs) in &flow {
        match golden_flow.iter().find(|(s, _)| s == step) {
            None => violations.push(format!("flow-map: step {step} missing from golden run")),
            Some((_, golden_recs)) if recs != golden_recs => violations.push(format!(
                "flow-map: records diverge from golden at step {step}"
            )),
            _ => {}
        }
        if !recs.windows(2).all(|w| w[0].seed < w[1].seed) {
            violations.push(format!("flow-map: step {step} records not seed-sorted"));
        }
        if recs.iter().any(|r| r.end.iter().any(|c| !c.is_finite())) {
            violations.push(format!("flow-map: non-finite endpoint at step {step}"));
        }
    }

    // Oracle 6 — steer-ack monotonicity. Every frame the subscriber
    // received after its acknowledged feedback must be reduced under
    // the steered rate; the journal must account for at least as many
    // delivered frames as the client saw (replies can be lost to
    // injected faults, never invented).
    if let Some(obs) = &steer_obs {
        if obs.frames.is_empty() {
            violations.push("steer: subscriber received no frames".into());
        }
        for (version, rate, after_ack) in &obs.frames {
            if *after_ack && *rate != STEER_RATE_STEERED {
                violations.push(format!(
                    "steer: frame v{version} delivered at rate {rate} after rate-{} ack",
                    STEER_RATE_STEERED
                ));
            }
        }
        let replayed = sitra_dataspaces::replay_steer(&events);
        let journal_frames = replayed
            .get(STEER_SUBSCRIBER)
            .map(|a| a.frames_sent)
            .unwrap_or(0);
        if journal_frames < obs.frames.len() as u64 {
            violations.push(format!(
                "steer: journal accounts {journal_frames} frames, subscriber received {}",
                obs.frames.len()
            ));
        }
        if obs.ack_latest_version.is_some() {
            let journal_acks = replayed
                .get(STEER_SUBSCRIBER)
                .map(|a| a.steers_acked)
                .unwrap_or(0);
            if journal_acks == 0 {
                violations.push("steer: ack received but not journaled".into());
            }
        }
    }

    // Cells: run-wide violations land on every analysis of the run;
    // latency percentiles come from each analysis's metric rows.
    specs
        .iter()
        .map(|spec| {
            let mut lat: Vec<f64> = result
                .metrics
                .analyses
                .iter()
                .filter(|m| m.analysis == spec.label)
                .map(|m| m.completion_latency_secs)
                .collect();
            lat.sort_by(f64::total_cmp);
            MatrixCell {
                analysis: spec.label.clone(),
                backend: backend.name(),
                policy: policy_name,
                plan: plan.to_string(),
                violations: violations.clone(),
                p50_latency_secs: percentile(&lat, 0.50),
                p99_latency_secs: percentile(&lat, 0.99),
            }
        })
        .collect()
}

fn flow_records(result: &PipelineResult) -> Vec<(u64, Vec<FlowRecord>)> {
    result
        .outputs
        .iter()
        .filter(|(label, _, _)| label == FLOWMAP_LABEL)
        .filter_map(|(_, step, out)| out.as_flow_map().map(|r| (*step, r.to_vec())))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_five_analyses_with_unique_labels() {
        let specs = matrix_specs();
        assert_eq!(specs.len(), 5);
        let mut labels: Vec<&str> = specs.iter().map(|s| s.label.as_str()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 5);
        assert!(labels.contains(&FLOWMAP_LABEL));
        assert!(labels.contains(&STEER_LABEL));
        // Only `stats` may be in-situ placed: the replay checker maps
        // every other label to the backend's hybrid placement.
        for s in &specs {
            if s.label == "stats" {
                assert_eq!(s.placement, Placement::InSitu);
            } else {
                assert_eq!(s.placement, Placement::Hybrid);
            }
        }
    }

    #[test]
    fn transport_only_strips_structural_faults() {
        let mut plan = FaultPlan::from_seed(0xDEAD_BEEF);
        plan.drop_per_mille = 5;
        let p = transport_only(&plan);
        assert!(p.crash.is_none());
        assert!(p.scale.is_none());
        assert!(p.instance_loss.is_none());
        assert_eq!(p.drop_per_mille, plan.drop_per_mille);
    }

    #[test]
    fn single_cell_local_backend_passes() {
        let report = scenario_matrix(&[Backend::Local], &[FaultPlan::fault_free(7)], matrix_specs);
        assert_eq!(report.runs, 3); // one per admission policy
        assert_eq!(report.cells.len(), 15);
        assert!(
            report.passed(),
            "violations: {:?}",
            report
                .failures()
                .iter()
                .map(|c| &c.violations)
                .collect::<Vec<_>>()
        );
    }
}
