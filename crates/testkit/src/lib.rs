//! # sitra-testkit
//!
//! Deterministic fault-injection harness for the staging pipeline, in
//! the deterministic-simulation-testing tradition: every failure is
//! replayable from a seed.
//!
//! The pieces:
//!
//! * [`FaultPlan`] — a seeded, self-describing plan of drops, delays,
//!   duplicates, reorders, link cuts, partitions, and server crashes.
//!   Every per-frame decision is a pure function of
//!   `(plan, connection, frame index)`; the plan round-trips through a
//!   compact spec string (`seed=0x2a,drop=8,…`) that shrink reports
//!   print and `--fault-plan`/`--plan` flags accept.
//! * [`PlanInjector`] — executes a plan through the
//!   [`sitra_net::FaultInjector`] seam, on a virtual clock of observed
//!   frames, recording the schedule it actually ran.
//! * [`scenario`] — drives one seeded simulation through any of the
//!   three `StagingBackend`s under a plan and checks the four
//!   invariant oracles (conservation, no-loss, golden-output,
//!   replay-identity).
//! * [`shrink`] — greedy plan minimization plus the failure report
//!   with a paste-ready reproduction command.
//! * [`fixture`] — the canonical seeded-simulation setup shared with
//!   the workspace integration tests.
//!
//! The chaos binary (`cargo run -p sitra-testkit --bin chaos`) runs
//! the pinned corpus or fresh random seeds from the command line;
//! `tests/chaos.rs` runs the corpus in CI.

pub mod fixture;
pub mod injector;
pub mod matrix;
pub mod plan;
pub mod scenario;
pub mod shrink;

pub use injector::{PlanInjector, ScheduleEntry};
pub use matrix::{
    admission_policies, matrix_config, matrix_specs, pinned_fault_subset, scenario_matrix,
    MatrixCell, MatrixReport,
};
pub use plan::{arb_fault_plan, CrashPlan, FaultPlan, InstanceLoss, PartitionWindow, ScaleEvent};
pub use scenario::{
    run_scenario, run_tenanted_scenario, Backend, ScenarioOutcome, RIVAL_TENANT, SIM_TENANT,
};

/// The pinned regression corpus: seeds that once exercised interesting
/// schedules (every fault class, partitions, crashes with and without
/// restart) and must keep passing every oracle on all three backends.
/// When a chaos run finds a failing seed, fix the bug and append the
/// seed here.
pub const PINNED_SEEDS: [u64; 7] = [
    1,
    42,
    97,
    1234,
    4242,
    0xC0FFEE,
    // Found a duplicated-Put frame appending a same-region piece that
    // panicked the streaming merge tree; fixed by idempotent
    // DataSpaces::put.
    0xCDD2_C7A7_A2C3_7BE5,
];
