//! Live three-member cluster tests over in-process transport: join
//! with shard handoff, graceful leave with backlog forwarding, and
//! heartbeat suspicion after a whole-instance crash.

use bytes::Bytes;
use sitra_cluster::{Bootstrap, ClusterClient, ClusterNode, ClusterNodeOpts};
use sitra_dataspaces::{RemoteSpace, TenantSpec};
use sitra_mesh::BBox3;
use sitra_net::{Addr, Backoff};
use std::time::{Duration, Instant};

fn opts() -> ClusterNodeOpts {
    ClusterNodeOpts {
        heartbeat_every: Duration::from_millis(10),
        suspect_after: 3,
        ..ClusterNodeOpts::default()
    }
}

fn addr(name: &str) -> Addr {
    format!("inproc://{name}").parse().unwrap()
}

fn client(endpoints: &[String]) -> ClusterClient {
    ClusterClient::new(
        sitra_cluster::DEFAULT_SEED,
        sitra_cluster::DEFAULT_VNODES,
        endpoints.iter().cloned(),
        Backoff::default(),
    )
    .unwrap()
}

fn piece(i: usize) -> (String, u64, BBox3, Bytes) {
    let var = if i.is_multiple_of(2) { "T" } else { "pressure" };
    let lo = [i % 8, (i / 8) % 4, 0];
    (
        var.to_string(),
        (i / 16) as u64,
        BBox3::new(lo, [lo[0] + 1, lo[1] + 1, 1]),
        Bytes::from(vec![i as u8; 64]),
    )
}

fn wait_until(what: &str, deadline: Duration, mut ok: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !ok() {
        assert!(t0.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn seeded_trio_spreads_pieces_and_serves_fanout_gets() {
    let _obs = sitra_obs::isolate();
    let names = ["trio-a", "trio-b", "trio-c"];
    let seeds: Vec<String> = names.iter().map(|n| addr(n).to_string()).collect();
    let nodes: Vec<ClusterNode> = names
        .iter()
        .map(|n| ClusterNode::start(&addr(n), Bootstrap::Seeds(seeds.clone()), opts()).unwrap())
        .collect();
    for node in &nodes {
        assert_eq!(node.view().addrs(), seeds, "all members share the view");
        assert_eq!(node.view().epoch, 1);
    }
    let cli = client(&seeds);
    let n_pieces = 32;
    for i in 0..n_pieces {
        let (var, version, bbox, data) = piece(i);
        cli.put(&var, version, bbox, data).unwrap();
    }
    // Placement spread the keys over more than one instance...
    let holding = nodes
        .iter()
        .filter(|n| n.space().stats().objects_per_server.iter().sum::<u64>() > 0)
        .count();
    assert!(holding >= 2, "only {holding} members hold data");
    // ...and the fan-out get reassembles every piece of each variable.
    let all = BBox3::new([0, 0, 0], [64, 64, 64]);
    for version in 0..2u64 {
        let t = cli.get("T", version, &all).unwrap();
        let p = cli.get("pressure", version, &all).unwrap();
        assert_eq!(t.len() + p.len(), 16, "version {version}");
    }
    for node in nodes {
        node.shutdown();
    }
}

#[test]
fn joiner_receives_its_shards_via_handoff() {
    let _obs = sitra_obs::isolate();
    let founders = ["join-a", "join-b"];
    let seeds: Vec<String> = founders.iter().map(|n| addr(n).to_string()).collect();
    let a = ClusterNode::start(&addr("join-a"), Bootstrap::Seeds(seeds.clone()), opts()).unwrap();
    let b = ClusterNode::start(&addr("join-b"), Bootstrap::Seeds(seeds.clone()), opts()).unwrap();
    let duo = client(&seeds);
    let n_pieces = 24;
    for i in 0..n_pieces {
        let (var, version, bbox, data) = piece(i);
        duo.put(&var, version, bbox, data).unwrap();
    }

    let c = ClusterNode::start(
        &addr("join-c"),
        Bootstrap::Join(addr("join-a").to_string()),
        opts(),
    )
    .unwrap();
    let mut trio_addrs = seeds.clone();
    trio_addrs.push(addr("join-c").to_string());
    trio_addrs.sort();
    wait_until(
        "views to converge on three members",
        Duration::from_secs(5),
        || [&a, &b, &c].iter().all(|n| n.view().addrs() == trio_addrs),
    );
    // The founders drained the joiner's shards to it.
    wait_until(
        "handoff to reach the joiner",
        Duration::from_secs(5),
        || c.space().stats().objects_per_server.iter().sum::<u64>() > 0,
    );
    assert!(
        sitra_obs::global()
            .snapshot()
            .counter("cluster.handoff.pieces")
            > 0,
        "handoff moved no pieces"
    );
    // Nothing was lost in flight: a full-cluster client still sees all.
    let trio = client(&trio_addrs);
    let all = BBox3::new([0, 0, 0], [64, 64, 64]);
    let mut total = 0;
    for version in 0..2u64 {
        total += trio.get("T", version, &all).unwrap().len();
        total += trio.get("pressure", version, &all).unwrap().len();
    }
    assert_eq!(total, n_pieces);
    a.shutdown();
    b.shutdown();
    c.shutdown();
}

#[test]
fn graceful_leave_hands_off_shards_and_forwards_backlog() {
    let _obs = sitra_obs::isolate();
    let names = ["leave-a", "leave-b", "leave-c"];
    let seeds: Vec<String> = names.iter().map(|n| addr(n).to_string()).collect();
    let a = ClusterNode::start(&addr("leave-a"), Bootstrap::Seeds(seeds.clone()), opts()).unwrap();
    let b = ClusterNode::start(&addr("leave-b"), Bootstrap::Seeds(seeds.clone()), opts()).unwrap();
    let c = ClusterNode::start(&addr("leave-c"), Bootstrap::Seeds(seeds.clone()), opts()).unwrap();
    let cli = client(&seeds);
    let n_pieces = 24;
    for i in 0..n_pieces {
        let (var, version, bbox, data) = piece(i);
        cli.put(&var, version, bbox, data).unwrap();
    }
    // Park a task backlog on the leaver.
    let direct = RemoteSpace::connect(&addr("leave-b")).unwrap();
    for i in 0..3u8 {
        direct.submit_task(Bytes::from(vec![i])).unwrap();
    }
    drop(direct);

    b.leave();
    let survivors: Vec<String> = seeds
        .iter()
        .filter(|s| **s != addr("leave-b").to_string())
        .cloned()
        .collect();
    wait_until(
        "survivors to drop the leaver",
        Duration::from_secs(5),
        || a.view().addrs() == survivors && c.view().addrs() == survivors,
    );
    // The backlog moved to the survivors rather than dying with b.
    assert_eq!(
        sitra_obs::global()
            .snapshot()
            .counter("cluster.tasks.forwarded"),
        3
    );
    let duo = client(&survivors);
    assert_eq!(duo.stats().totals.tasks_submitted, 3);
    // Every piece survived the departure.
    let all = BBox3::new([0, 0, 0], [64, 64, 64]);
    let mut total = 0;
    for version in 0..2u64 {
        total += duo.get("T", version, &all).unwrap().len();
        total += duo.get("pressure", version, &all).unwrap().len();
    }
    assert_eq!(total, n_pieces);
    a.shutdown();
    c.shutdown();
}

#[test]
fn forwarded_backlog_keeps_tenant_attribution() {
    let _obs = sitra_obs::isolate();
    let acme = TenantSpec::new("acme").with_weight(3);
    let beta = TenantSpec::new("beta");
    let tenant_opts = ClusterNodeOpts {
        tenants: vec![acme.clone(), beta.clone()],
        ..opts()
    };
    let names = ["tleave-a", "tleave-b", "tleave-c"];
    let seeds: Vec<String> = names.iter().map(|n| addr(n).to_string()).collect();
    let a = ClusterNode::start(
        &addr("tleave-a"),
        Bootstrap::Seeds(seeds.clone()),
        tenant_opts.clone(),
    )
    .unwrap();
    let b = ClusterNode::start(
        &addr("tleave-b"),
        Bootstrap::Seeds(seeds.clone()),
        tenant_opts.clone(),
    )
    .unwrap();
    let c = ClusterNode::start(
        &addr("tleave-c"),
        Bootstrap::Seeds(seeds.clone()),
        tenant_opts,
    )
    .unwrap();
    // Park a mixed-tenant backlog on the leaver: two acme tasks, one
    // beta task, interleaved so forwarding has to re-declare bindings.
    let direct = RemoteSpace::connect(&addr("tleave-b")).unwrap();
    direct.set_tenant(&acme).unwrap();
    direct.submit_task(Bytes::from_static(b"a0")).unwrap();
    direct.set_tenant(&beta).unwrap();
    direct.submit_task(Bytes::from_static(b"b0")).unwrap();
    direct.set_tenant(&acme).unwrap();
    direct.submit_task(Bytes::from_static(b"a1")).unwrap();
    drop(direct);

    b.leave();
    let survivors: Vec<String> = seeds
        .iter()
        .filter(|s| **s != addr("tleave-b").to_string())
        .cloned()
        .collect();
    wait_until(
        "survivors to drop the leaver",
        Duration::from_secs(5),
        || a.view().addrs() == survivors && c.view().addrs() == survivors,
    );
    assert_eq!(
        sitra_obs::global()
            .snapshot()
            .counter("cluster.tasks.forwarded"),
        3
    );
    // The survivors' per-tenant counters carry the original owners.
    let duo = client(&survivors);
    let rows = duo.tenant_stats();
    let submitted = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .map(|r| r.tasks_submitted)
            .unwrap_or(0)
    };
    assert_eq!(submitted("acme"), 2, "rows: {rows:?}");
    assert_eq!(submitted("beta"), 1, "rows: {rows:?}");
    assert_eq!(submitted("default"), 0, "rows: {rows:?}");
    // The survivors also kept acme's configured weight (registered at
    // start, not invented during forwarding).
    let acme_row = rows.iter().find(|r| r.name == "acme").unwrap();
    assert_eq!(acme_row.weight, 3);
    a.shutdown();
    c.shutdown();
}

#[test]
fn crashed_member_is_suspected_and_evicted() {
    let _obs = sitra_obs::isolate();
    let names = ["crash-a", "crash-b", "crash-c"];
    let seeds: Vec<String> = names.iter().map(|n| addr(n).to_string()).collect();
    let a = ClusterNode::start(&addr("crash-a"), Bootstrap::Seeds(seeds.clone()), opts()).unwrap();
    let b = ClusterNode::start(&addr("crash-b"), Bootstrap::Seeds(seeds.clone()), opts()).unwrap();
    let c = ClusterNode::start(&addr("crash-c"), Bootstrap::Seeds(seeds.clone()), opts()).unwrap();

    c.kill();
    let survivors: Vec<String> = seeds
        .iter()
        .filter(|s| **s != addr("crash-c").to_string())
        .cloned()
        .collect();
    wait_until(
        "heartbeats to suspect the crashed member",
        Duration::from_secs(10),
        || a.view().addrs() == survivors && b.view().addrs() == survivors,
    );
    assert!(sitra_obs::global().snapshot().counter("cluster.suspects") >= 1);
    a.shutdown();
    b.shutdown();
}
