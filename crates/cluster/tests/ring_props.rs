//! Property tests of the placement ring: determinism, balance, and
//! minimal movement — the three properties the cluster's correctness
//! and efficiency arguments rest on.

use proptest::prelude::*;
use sitra_cluster::{HashRing, ShardKey};
use sitra_mesh::BBox3;

/// A bag of distinct member endpoint strings.
fn arb_members(max: usize) -> impl Strategy<Value = Vec<String>> {
    (1..=max as u32).prop_map(|n| {
        (0..n)
            .map(|i| format!("tcp://10.0.0.{}:7788", i + 1))
            .collect()
    })
}

fn keyspace(n: usize) -> Vec<(String, u64, BBox3)> {
    let vars = ["T", "pressure", "sitra.i/viz", "sitra.o/stats"];
    (0..n)
        .map(|i| {
            let var = vars[i % vars.len()].to_string();
            let version = (i / 7) as u64;
            let lo = [i % 13, (i / 13) % 11, (i / 143) % 5];
            let bbox = BBox3::new(lo, [lo[0] + 1, lo[1] + 1, lo[2] + 1]);
            (var, version, bbox)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Placement is a pure function of `(seed, vnodes, member set)`:
    /// announcement order and duplicates never change an owner.
    #[test]
    fn placement_is_deterministic_and_order_insensitive(
        seed in any::<u64>(),
        members in arb_members(6),
    ) {
        let forward = HashRing::new(seed, 64, members.clone());
        let mut shuffled = members.clone();
        shuffled.reverse();
        shuffled.extend(members.iter().cloned()); // duplicates
        let backward = HashRing::new(seed, 64, shuffled);
        for (var, version, bbox) in keyspace(200) {
            let key = ShardKey::new(&var, version, &bbox);
            prop_assert_eq!(forward.owner(&key), backward.owner(&key));
        }
        for step in 0..50u64 {
            prop_assert_eq!(
                forward.task_owner_index("viz", step),
                backward.task_owner_index("viz", step)
            );
        }
    }

    /// With 100+ virtual nodes per member, no member's share of a large
    /// keyspace strays beyond 2x/0.35x of the fair share.
    #[test]
    fn virtual_nodes_keep_the_ring_balanced(
        seed in any::<u64>(),
        members in arb_members(5),
    ) {
        let ring = HashRing::new(seed, 128, members.clone());
        let n = ring.len();
        let keys = keyspace(4000);
        let mut counts = vec![0usize; n];
        for (var, version, bbox) in &keys {
            let idx = ring.owner_index(&ShardKey::new(var, *version, bbox)).unwrap();
            counts[idx] += 1;
        }
        let fair = keys.len() as f64 / n as f64;
        for (i, c) in counts.iter().enumerate() {
            let share = *c as f64 / fair;
            prop_assert!(
                share > 0.35 && share < 2.0,
                "member {i} holds {c} of {} keys ({share:.2}x fair share)",
                keys.len()
            );
        }
    }

    /// Consistent hashing moves only the keys it must: on a join, every
    /// relocated key lands on the new member and the relocated fraction
    /// stays near `1/(n+1)`; on a leave, only the departed member's
    /// keys move.
    #[test]
    fn join_and_leave_move_a_minimal_key_fraction(
        seed in any::<u64>(),
        members in arb_members(5),
    ) {
        let newcomer = "tcp://10.0.9.9:7788".to_string();
        let before = HashRing::new(seed, 128, members.clone());
        let mut grown = members.clone();
        grown.push(newcomer.clone());
        let after = HashRing::new(seed, 128, grown);
        let keys = keyspace(2000);
        let mut moved = 0usize;
        for (var, version, bbox) in &keys {
            let key = ShardKey::new(var, *version, bbox);
            let old = before.owner(&key).unwrap();
            let new = after.owner(&key).unwrap();
            if old != new {
                moved += 1;
                prop_assert_eq!(
                    new,
                    newcomer.as_str(),
                    "a key moved between two surviving members on join"
                );
            }
        }
        let fair = keys.len() as f64 / after.len() as f64;
        prop_assert!(
            (moved as f64) < 2.0 * fair,
            "join moved {moved} keys, expected about {fair:.0}"
        );

        // Leave is the mirror image: removing the newcomer strands only
        // its own keys.
        for (var, version, bbox) in &keys {
            let key = ShardKey::new(var, *version, bbox);
            let grown_owner = after.owner(&key).unwrap();
            let shrunk_owner = before.owner(&key).unwrap();
            if grown_owner != newcomer.as_str() {
                prop_assert_eq!(
                    grown_owner, shrunk_owner,
                    "a key not owned by the leaver moved on leave"
                );
            }
        }
    }
}
