//! # sitra-cluster
//!
//! A multi-server DataSpaces cluster: several `sitra-staged`-style
//! instances bound together by a deterministic consistent-hash ring,
//! an epoch-based membership view, and shard handoff on join/leave.
//!
//! The paper's staging tier runs DataSpaces over many server nodes and
//! credits key hashing with balancing load across them; this crate
//! reproduces that shape one layer above the single-instance
//! [`sitra_dataspaces`] server:
//!
//! * [`ring`] — a pure, seedable placement function. Every participant
//!   builds the same ring from the same `(seed, vnodes, members)` and
//!   agrees on ownership with zero coordination, so golden-output and
//!   replay oracles stay byte-identical run to run.
//! * [`proto`] + [`membership`] — the control plane, carried opaquely
//!   in data-plane `Control` frames: join/leave announcements, a
//!   heartbeat with consecutive-miss suspicion, and epoch-ordered view
//!   gossip.
//! * [`node`] — one member: a `SpaceServer` plus the membership loop
//!   and the handoff machinery that drains disowned shards to their
//!   new owners when the view changes.
//! * [`client`] — the routing client: puts go to the ring owner, gets
//!   fan out to every configured member (correct under any view
//!   staleness), task submissions are routed with fail-over.

#![warn(missing_docs)]

pub mod client;
pub mod membership;
pub mod node;
pub mod proto;
pub mod ring;

pub use client::{ClusterClient, ClusterStats};
pub use membership::Suspicion;
pub use node::{Bootstrap, ClusterError, ClusterNode, ClusterNodeOpts};
pub use proto::{decode_msg, encode_msg, ClusterMsg, ClusterView, MemberInfo, ProtoError};
pub use ring::{HashRing, ShardKey, DEFAULT_SEED, DEFAULT_VNODES};
