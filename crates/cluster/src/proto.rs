//! The membership/handoff control protocol, carried opaquely inside
//! `sitra-dataspaces` `Request::Control` frames so the data-plane RPC
//! surface never learns about clustering.
//!
//! The codec is **total**: any byte sequence decodes to `Ok` or `Err`,
//! never a panic — the same contract the data-plane codecs honor, and
//! the one `crates/core/tests/wire_fuzz.rs` hammers with truncations and
//! single-byte corruption.

use bytes::{BufMut, Bytes, BytesMut};

/// A malformed control frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cluster protocol violation: {}", self.0)
    }
}

impl std::error::Error for ProtoError {}

/// One cluster member: its identity is its advertised endpoint string
/// (what clients and peers dial).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MemberInfo {
    /// Advertised endpoint, e.g. `tcp://host:7788` or `inproc://name`.
    pub addr: String,
}

/// The membership view: an epoch and the sorted member list. Higher
/// epochs win; every change (join, leave, suspicion eviction) bumps the
/// epoch by one, so anti-entropy needs only a `max` comparison.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ClusterView {
    /// Monotone view generation.
    pub epoch: u64,
    /// Members, sorted by address (the canonical order every
    /// participant derives the ring from).
    pub members: Vec<MemberInfo>,
}

/// A membership/handoff control message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterMsg {
    /// "Who is in the cluster?" — answered with [`ClusterMsg::View`].
    Hello,
    /// A new member announces itself to a seed; the seed adds it,
    /// bumps the epoch, gossips the new view, and replies with it.
    Join {
        /// The joining member.
        from: MemberInfo,
    },
    /// A member announces a graceful departure (its shards have already
    /// been handed off). Answered with [`ClusterMsg::Ack`].
    Leave {
        /// Address of the departing member.
        addr: String,
    },
    /// Liveness probe. Carries the sender's epoch so a stale peer
    /// learns it is behind: the receiver answers [`ClusterMsg::View`]
    /// when its own epoch is newer, [`ClusterMsg::Ack`] otherwise.
    Heartbeat {
        /// Sender's address.
        from: String,
        /// Sender's view epoch.
        epoch: u64,
    },
    /// A full membership view (join reply, gossip, anti-entropy).
    View {
        /// The view.
        view: ClusterView,
    },
    /// Positive acknowledgement carrying the responder's epoch.
    Ack {
        /// Responder's view epoch.
        epoch: u64,
    },
}

const MSG_HELLO: u8 = 1;
const MSG_JOIN: u8 = 2;
const MSG_LEAVE: u8 = 3;
const MSG_HEARTBEAT: u8 = 4;
const MSG_VIEW: u8 = 5;
const MSG_ACK: u8 = 6;

struct Rd {
    buf: Bytes,
    pos: usize,
}

impl Rd {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or_else(|| ProtoError("truncated".into()))?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        if self.remaining() < 4 {
            return Err(ProtoError("truncated".into()));
        }
        let mut a = [0u8; 4];
        a.copy_from_slice(&self.buf[self.pos..self.pos + 4]);
        self.pos += 4;
        Ok(u32::from_le_bytes(a))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        if self.remaining() < 8 {
            return Err(ProtoError("truncated".into()));
        }
        let mut a = [0u8; 8];
        a.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(u64::from_le_bytes(a))
    }

    fn string(&mut self) -> Result<String, ProtoError> {
        let n = self.u32()? as usize;
        if self.remaining() < n {
            return Err(ProtoError("truncated string".into()));
        }
        let raw = self.buf.slice(self.pos..self.pos + n);
        self.pos += n;
        String::from_utf8(raw.to_vec()).map_err(|_| ProtoError("non-utf8 string".into()))
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.remaining() != 0 {
            return Err(ProtoError("trailing bytes".into()));
        }
        Ok(())
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_view(buf: &mut BytesMut, view: &ClusterView) {
    buf.put_u64_le(view.epoch);
    buf.put_u32_le(view.members.len() as u32);
    for m in &view.members {
        put_string(buf, &m.addr);
    }
}

fn read_view(rd: &mut Rd) -> Result<ClusterView, ProtoError> {
    let epoch = rd.u64()?;
    let n = rd.u32()? as usize;
    // Each member costs at least a 4-byte length prefix; a count the
    // frame cannot possibly hold is rejected before allocating.
    if n.checked_mul(4).is_none_or(|total| total > rd.remaining()) {
        return Err(ProtoError("member count exceeds frame".into()));
    }
    let mut members = Vec::with_capacity(n);
    for _ in 0..n {
        members.push(MemberInfo { addr: rd.string()? });
    }
    Ok(ClusterView { epoch, members })
}

/// Encode a control message.
pub fn encode_msg(msg: &ClusterMsg) -> Bytes {
    let mut buf = BytesMut::new();
    match msg {
        ClusterMsg::Hello => buf.put_u8(MSG_HELLO),
        ClusterMsg::Join { from } => {
            buf.put_u8(MSG_JOIN);
            put_string(&mut buf, &from.addr);
        }
        ClusterMsg::Leave { addr } => {
            buf.put_u8(MSG_LEAVE);
            put_string(&mut buf, addr);
        }
        ClusterMsg::Heartbeat { from, epoch } => {
            buf.put_u8(MSG_HEARTBEAT);
            put_string(&mut buf, from);
            buf.put_u64_le(*epoch);
        }
        ClusterMsg::View { view } => {
            buf.put_u8(MSG_VIEW);
            put_view(&mut buf, view);
        }
        ClusterMsg::Ack { epoch } => {
            buf.put_u8(MSG_ACK);
            buf.put_u64_le(*epoch);
        }
    }
    buf.freeze()
}

/// Decode a control message. Total: never panics on malformed input.
pub fn decode_msg(frame: Bytes) -> Result<ClusterMsg, ProtoError> {
    let mut rd = Rd { buf: frame, pos: 0 };
    let msg = match rd.u8()? {
        MSG_HELLO => ClusterMsg::Hello,
        MSG_JOIN => ClusterMsg::Join {
            from: MemberInfo { addr: rd.string()? },
        },
        MSG_LEAVE => ClusterMsg::Leave { addr: rd.string()? },
        MSG_HEARTBEAT => ClusterMsg::Heartbeat {
            from: rd.string()?,
            epoch: rd.u64()?,
        },
        MSG_VIEW => ClusterMsg::View {
            view: read_view(&mut rd)?,
        },
        MSG_ACK => ClusterMsg::Ack { epoch: rd.u64()? },
        t => return Err(ProtoError(format!("unknown message tag {t}"))),
    };
    rd.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<ClusterMsg> {
        vec![
            ClusterMsg::Hello,
            ClusterMsg::Join {
                from: MemberInfo {
                    addr: "tcp://10.0.0.2:7788".into(),
                },
            },
            ClusterMsg::Leave {
                addr: "inproc://m1".into(),
            },
            ClusterMsg::Heartbeat {
                from: "inproc://m0".into(),
                epoch: 42,
            },
            ClusterMsg::View {
                view: ClusterView {
                    epoch: 7,
                    members: vec![
                        MemberInfo {
                            addr: "inproc://a".into(),
                        },
                        MemberInfo {
                            addr: "inproc://b".into(),
                        },
                    ],
                },
            },
            ClusterMsg::View {
                view: ClusterView::default(),
            },
            ClusterMsg::Ack { epoch: 0 },
        ]
    }

    #[test]
    fn roundtrip() {
        for msg in samples() {
            assert_eq!(decode_msg(encode_msg(&msg)).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn every_strict_prefix_is_rejected() {
        for msg in samples() {
            let enc = encode_msg(&msg);
            for cut in 0..enc.len() {
                assert!(decode_msg(enc.slice(0..cut)).is_err(), "{msg:?} cut {cut}");
            }
        }
    }

    #[test]
    fn garbage_never_panics() {
        for len in 0..64 {
            let _ = decode_msg(Bytes::from(vec![0xA5u8; len]));
        }
        // A view claiming more members than the frame can hold.
        let mut buf = BytesMut::new();
        buf.put_u8(MSG_VIEW);
        buf.put_u64_le(1);
        buf.put_u32_le(u32::MAX);
        assert!(decode_msg(buf.freeze()).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut enc = encode_msg(&ClusterMsg::Hello).to_vec();
        enc.push(0);
        assert!(decode_msg(Bytes::from(enc)).is_err());
    }
}
