//! View manipulation and heartbeat-based suspicion.
//!
//! The membership model is deliberately small: a [`ClusterView`] is an
//! epoch plus a sorted member list, every mutation bumps the epoch, and
//! the highest epoch wins on merge. That is enough for a staging tier
//! whose *correctness* never depends on view agreement — clients fan
//! gets out to their full static member list, so a stale or falsely
//! suspicious view costs balance, not data.

use crate::proto::{ClusterView, MemberInfo};
use std::collections::HashMap;

impl ClusterView {
    /// A fresh epoch-1 view over `members` (sorted, deduplicated).
    pub fn bootstrap<I, S>(members: I) -> ClusterView
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut members: Vec<MemberInfo> = members
            .into_iter()
            .map(|m| MemberInfo { addr: m.into() })
            .collect();
        members.sort();
        members.dedup();
        ClusterView { epoch: 1, members }
    }

    /// The member addresses in canonical order.
    pub fn addrs(&self) -> Vec<String> {
        self.members.iter().map(|m| m.addr.clone()).collect()
    }

    /// Whether `addr` is a member.
    pub fn contains(&self, addr: &str) -> bool {
        self.members.iter().any(|m| m.addr == addr)
    }

    /// The view after `member` joins: epoch+1, list re-sorted. Returns
    /// `None` when the member is already present (no epoch churn on
    /// duplicate announcements).
    pub fn with_member(&self, member: MemberInfo) -> Option<ClusterView> {
        if self.contains(&member.addr) {
            return None;
        }
        let mut members = self.members.clone();
        members.push(member);
        members.sort();
        Some(ClusterView {
            epoch: self.epoch + 1,
            members,
        })
    }

    /// The view after `addr` leaves: epoch+1. Returns `None` when the
    /// address was not a member.
    pub fn without_member(&self, addr: &str) -> Option<ClusterView> {
        if !self.contains(addr) {
            return None;
        }
        let members = self
            .members
            .iter()
            .filter(|m| m.addr != addr)
            .cloned()
            .collect();
        Some(ClusterView {
            epoch: self.epoch + 1,
            members,
        })
    }
}

/// Consecutive-miss suspicion: a peer that fails `threshold` heartbeats
/// in a row is declared suspect; any success resets its count.
#[derive(Debug)]
pub struct Suspicion {
    threshold: u32,
    misses: HashMap<String, u32>,
}

impl Suspicion {
    /// A tracker declaring peers suspect after `threshold` consecutive
    /// missed heartbeats.
    pub fn new(threshold: u32) -> Suspicion {
        Suspicion {
            threshold: threshold.max(1),
            misses: HashMap::new(),
        }
    }

    /// A heartbeat to `addr` succeeded.
    pub fn record_ok(&mut self, addr: &str) {
        self.misses.remove(addr);
    }

    /// A heartbeat to `addr` failed. Returns true when the peer just
    /// crossed the suspicion threshold (exactly once per streak).
    pub fn record_miss(&mut self, addr: &str) -> bool {
        let count = self.misses.entry(addr.to_string()).or_insert(0);
        *count += 1;
        *count == self.threshold
    }

    /// Forget a peer entirely (it left or was evicted).
    pub fn forget(&mut self, addr: &str) {
        self.misses.remove(addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_sorts_and_dedups() {
        let v = ClusterView::bootstrap(["b", "a", "b"]);
        assert_eq!(v.epoch, 1);
        assert_eq!(v.addrs(), ["a", "b"]);
    }

    #[test]
    fn join_and_leave_bump_the_epoch_once() {
        let v = ClusterView::bootstrap(["a", "c"]);
        let joined = v.with_member(MemberInfo { addr: "b".into() }).unwrap();
        assert_eq!(joined.epoch, 2);
        assert_eq!(joined.addrs(), ["a", "b", "c"]);
        // Duplicate announcements do not churn the epoch.
        assert_eq!(joined.with_member(MemberInfo { addr: "b".into() }), None);
        let left = joined.without_member("a").unwrap();
        assert_eq!(left.epoch, 3);
        assert_eq!(left.addrs(), ["b", "c"]);
        assert_eq!(left.without_member("a"), None);
    }

    #[test]
    fn suspicion_fires_once_per_streak() {
        let mut s = Suspicion::new(3);
        assert!(!s.record_miss("p"));
        assert!(!s.record_miss("p"));
        assert!(s.record_miss("p"), "third consecutive miss is suspect");
        assert!(!s.record_miss("p"), "already fired this streak");
        s.record_ok("p");
        assert!(!s.record_miss("p"), "streak reset by success");
        assert!(!s.record_miss("p"));
        assert!(s.record_miss("p"));
    }
}
