//! One cluster member: a [`SpaceServer`] plus the membership layer —
//! heartbeats, suspicion, view gossip, and shard handoff.
//!
//! # Safety argument (why a wrong view never loses data)
//!
//! Clients fan spatial gets out to every member of their *static*
//! endpoint list and deduplicate by region, so a piece is reachable as
//! long as it lives on *some* member a client can dial. Handoff drains
//! a piece locally and immediately re-puts it on the new owner (or back
//! locally when the push fails), so the only risk window is one RPC
//! long, and a get that races it sees a short piece list — which the
//! aggregation workers detect (piece count != rank count) and turn into
//! a driver-side deadline degrade, never a wrong output. False
//! suspicion is likewise harmless: an evicted-but-alive member still
//! answers the static client ring, and its own heartbeats get it
//! re-added to the view.

use crate::membership::Suspicion;
use crate::proto::{decode_msg, encode_msg, ClusterMsg, ClusterView, MemberInfo, ProtoError};
use crate::ring::{HashRing, ShardKey};
use bytes::Bytes;
use parking_lot::{Mutex, RwLock};
use sitra_dataspaces::remote::ControlHandler;
use sitra_dataspaces::{
    AdmissionPolicy, DataSpaces, RemoteError, RemoteSpace, SchedStats, Scheduler, SpaceServer,
    TenantSpec,
};
use sitra_net::{Addr, Backoff, NetError};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Failure starting or operating a cluster node.
#[derive(Debug)]
pub enum ClusterError {
    /// Transport failure.
    Net(NetError),
    /// A control RPC failed.
    Remote(RemoteError),
    /// The node was misconfigured (bad seed list, malformed reply, ...).
    Config(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Net(e) => write!(f, "transport: {e}"),
            ClusterError::Remote(e) => write!(f, "control rpc: {e}"),
            ClusterError::Config(s) => write!(f, "cluster config: {s}"),
        }
    }
}

impl std::error::Error for ClusterError {}

impl From<NetError> for ClusterError {
    fn from(e: NetError) -> Self {
        ClusterError::Net(e)
    }
}

impl From<RemoteError> for ClusterError {
    fn from(e: RemoteError) -> Self {
        ClusterError::Remote(e)
    }
}

/// How a node learns its initial membership.
#[derive(Debug, Clone)]
pub enum Bootstrap {
    /// A static seed list every founding member starts with. Must
    /// contain this node's own advertised address.
    Seeds(Vec<String>),
    /// Join an existing cluster by announcing to one of its members.
    Join(String),
}

/// Tunables of one cluster member.
#[derive(Debug, Clone)]
pub struct ClusterNodeOpts {
    /// In-process space shards inside this member.
    pub shards: usize,
    /// Task-queue capacity (`None` = unbounded).
    pub capacity: Option<usize>,
    /// Admission policy at capacity.
    pub policy: AdmissionPolicy,
    /// Placement seed; every member and client must agree.
    pub seed: u64,
    /// Virtual nodes per member on the placement ring.
    pub vnodes: u32,
    /// Heartbeat period.
    pub heartbeat_every: Duration,
    /// Consecutive missed heartbeats before a peer is declared suspect
    /// and evicted from the view.
    pub suspect_after: u32,
    /// Tenants registered on this member at start (weights, quotas,
    /// per-tenant admission policy). Every member should carry the same
    /// list, or fail-over lands tenants on default weight-1 treatment.
    pub tenants: Vec<TenantSpec>,
}

impl Default for ClusterNodeOpts {
    fn default() -> Self {
        ClusterNodeOpts {
            shards: 1,
            capacity: None,
            policy: AdmissionPolicy::RejectNew,
            seed: crate::ring::DEFAULT_SEED,
            vnodes: crate::ring::DEFAULT_VNODES,
            heartbeat_every: Duration::from_millis(50),
            suspect_after: 3,
            tenants: Vec::new(),
        }
    }
}

/// Live observability handles, resolved once per node.
struct NodeObs {
    members: sitra_obs::Gauge,
    epoch: sitra_obs::Gauge,
    handoff_pieces: sitra_obs::Counter,
    handoff_bytes: sitra_obs::Counter,
    tasks_forwarded: sitra_obs::Counter,
    suspects: sitra_obs::Counter,
    proto_errors: sitra_obs::Counter,
}

impl NodeObs {
    fn resolve(self_addr: &str) -> Self {
        let reg = sitra_obs::global();
        NodeObs {
            members: reg.gauge(&format!("cluster.members{{member={self_addr}}}")),
            epoch: reg.gauge(&format!("cluster.epoch{{member={self_addr}}}")),
            handoff_pieces: reg.counter("cluster.handoff.pieces"),
            handoff_bytes: reg.counter("cluster.handoff.bytes"),
            tasks_forwarded: reg.counter("cluster.tasks.forwarded"),
            suspects: reg.counter("cluster.suspects"),
            proto_errors: reg.counter("cluster.control.proto_errors"),
        }
    }
}

struct NodeState {
    self_addr: RwLock<String>,
    seed: u64,
    vnodes: u32,
    space: Arc<DataSpaces>,
    sched: Scheduler<Bytes>,
    view: Mutex<ClusterView>,
    suspicion: Mutex<Suspicion>,
    /// Serializes handoffs so two view changes cannot interleave their
    /// drain/push cycles.
    handoff_lock: Mutex<()>,
    stop: AtomicBool,
    obs: NodeObs,
    /// Tenant specs this member was configured with, consulted when
    /// forwarding backlog so the declaration sent to a survivor carries
    /// the real weight/quota rather than a made-up default.
    tenants: Vec<TenantSpec>,
}

impl NodeState {
    fn self_addr(&self) -> String {
        self.self_addr.read().clone()
    }

    fn epoch(&self) -> u64 {
        self.view.lock().epoch
    }

    fn publish_view_gauges(&self) {
        let view = self.view.lock();
        self.obs.members.set(view.members.len() as i64);
        self.obs.epoch.set(view.epoch as i64);
    }
}

/// One member of a staging cluster.
pub struct ClusterNode {
    state: Arc<NodeState>,
    server: Option<SpaceServer>,
    hb: Option<JoinHandle<()>>,
    addr: Addr,
}

/// Backoff for cluster-internal dials (gossip, handoff pushes): short
/// and bounded, because the heartbeat loop will retry anything that
/// matters.
fn peer_backoff() -> Backoff {
    Backoff {
        initial: Duration::from_millis(2),
        max: Duration::from_millis(10),
        attempts: 3,
    }
}

fn parse_peer(addr: &str) -> Option<Addr> {
    addr.parse().ok()
}

impl ClusterNode {
    /// Bind `listen`, start serving the data plane, and bring up
    /// membership per `bootstrap`.
    pub fn start(
        listen: &Addr,
        bootstrap: Bootstrap,
        opts: ClusterNodeOpts,
    ) -> Result<ClusterNode, ClusterError> {
        let initial_view = match &bootstrap {
            Bootstrap::Seeds(seeds) => {
                if seeds.is_empty() {
                    return Err(ClusterError::Config("empty cluster seed list".into()));
                }
                if !seeds.iter().any(|s| s == &listen.to_string()) {
                    return Err(ClusterError::Config(format!(
                        "own address `{listen}` missing from seed list {seeds:?}"
                    )));
                }
                ClusterView::bootstrap(seeds.iter().cloned())
            }
            // A joiner starts alone at epoch 0; any seeded view wins.
            Bootstrap::Join(_) => ClusterView {
                epoch: 0,
                members: vec![MemberInfo {
                    addr: listen.to_string(),
                }],
            },
        };
        let space = Arc::new(DataSpaces::new(opts.shards.max(1)));
        let sched = match opts.capacity {
            Some(cap) => Scheduler::bounded(cap, opts.policy),
            None => Scheduler::new(),
        };
        for spec in &opts.tenants {
            sched.register_tenant(spec);
            space.set_tenant_byte_quota(&spec.name, spec.byte_quota);
        }
        let state = Arc::new(NodeState {
            self_addr: RwLock::new(listen.to_string()),
            seed: opts.seed,
            vnodes: opts.vnodes,
            space: Arc::clone(&space),
            sched: sched.clone(),
            view: Mutex::new(initial_view),
            suspicion: Mutex::new(Suspicion::new(opts.suspect_after)),
            handoff_lock: Mutex::new(()),
            stop: AtomicBool::new(false),
            obs: NodeObs::resolve(&listen.to_string()),
            tenants: opts.tenants.clone(),
        });
        let handler_state = Arc::clone(&state);
        let handler: ControlHandler = Arc::new(move |data| handle_control(&handler_state, data));
        let server = SpaceServer::start_custom(listen, space, sched, Some(handler))?;
        let bound = server.addr();
        // A `tcp://…:0` bind resolves to its OS-assigned port only now;
        // no peer can have dialed the unknown port yet, so the late
        // correction races nothing.
        if bound.to_string() != listen.to_string() {
            let mut view = state.view.lock();
            for m in &mut view.members {
                if m.addr == listen.to_string() {
                    m.addr = bound.to_string();
                }
            }
            view.members.sort();
            drop(view);
            *state.self_addr.write() = bound.to_string();
        }
        if let Bootstrap::Join(contact) = &bootstrap {
            let contact_addr: Addr = contact
                .parse()
                .map_err(|_| ClusterError::Config(format!("unparseable contact `{contact}`")))?;
            let conn = RemoteSpace::connect_retry(&contact_addr, &Backoff::default())?;
            let reply = conn.control(encode_msg(&ClusterMsg::Join {
                from: MemberInfo {
                    addr: state.self_addr(),
                },
            }))?;
            match decode_msg(reply) {
                Ok(ClusterMsg::View { view }) => adopt_view(&state, view),
                Ok(other) => {
                    return Err(ClusterError::Config(format!(
                        "join answered with {other:?}, expected a view"
                    )))
                }
                Err(e) => return Err(ClusterError::Config(e.to_string())),
            }
        }
        state.publish_view_gauges();
        let hb_state = Arc::clone(&state);
        let every = opts.heartbeat_every;
        let hb = std::thread::spawn(move || heartbeat_loop(&hb_state, every));
        Ok(ClusterNode {
            state,
            server: Some(server),
            hb: Some(hb),
            addr: bound,
        })
    }

    /// Where this member listens (its identity in the cluster).
    pub fn addr(&self) -> Addr {
        self.addr.clone()
    }

    /// Snapshot of the membership view.
    pub fn view(&self) -> ClusterView {
        self.state.view.lock().clone()
    }

    /// Direct access to the member's space (same-process convenience).
    pub fn space(&self) -> &DataSpaces {
        &self.state.space
    }

    /// Scheduler counters.
    pub fn sched_stats(&self) -> SchedStats {
        self.state.sched.stats()
    }

    /// This member's task scheduler, for operator-side configuration
    /// (placement policy, capacity targets, drain commands).
    pub fn scheduler(&self) -> &Scheduler<Bytes> {
        &self.state.sched
    }

    /// Has a client closed this member's scheduler? (`sitra-staged`
    /// exits on this.)
    pub fn closed(&self) -> bool {
        self.state.sched.is_closed()
    }

    fn stop_heartbeats(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.hb.take() {
            let _ = h.join();
        }
    }

    /// Graceful departure: forward the queued task backlog to the
    /// surviving members, hand every local shard to its new ring owner,
    /// announce the leave, and stop serving.
    pub fn leave(mut self) {
        self.stop_heartbeats();
        let self_addr = self.state.self_addr();
        let next = {
            let mut view = self.state.view.lock();
            if let Some(next) = view.without_member(&self_addr) {
                *view = next;
            }
            view.clone()
        };
        let survivors = next.addrs();
        sitra_obs::emit(
            "cluster",
            "member.leave",
            &[
                ("member", self_addr.clone()),
                ("epoch", next.epoch.to_string()),
            ],
        );
        if !survivors.is_empty() {
            forward_backlog(&self.state, &survivors);
            rebalance(&self.state);
            for peer in &survivors {
                if let Some(addr) = parse_peer(peer) {
                    if let Ok(conn) = RemoteSpace::connect_retry(&addr, &peer_backoff()) {
                        let _ = conn.control(encode_msg(&ClusterMsg::Leave {
                            addr: self_addr.clone(),
                        }));
                    }
                }
            }
        }
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }

    /// Whole-instance crash: the scheduler backlog is *dropped* (the
    /// tasks die with the instance) and the listener stops. Producers
    /// observe the loss as failed RPCs and degrade; the chaos oracles
    /// assert they never silently lose an output.
    pub fn kill(mut self) {
        self.stop_heartbeats();
        let lost = self.state.sched.drain_queued().len();
        if lost > 0 {
            sitra_obs::emit(
                "cluster",
                "member.crash",
                &[
                    ("member", self.state.self_addr()),
                    ("tasks_lost", lost.to_string()),
                ],
            );
        }
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }

    /// Plain end-of-run stop: no handoff, no announcements (the whole
    /// cluster is coming down).
    pub fn shutdown(mut self) {
        self.stop_heartbeats();
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
    }
}

impl Drop for ClusterNode {
    fn drop(&mut self) {
        self.state.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.hb.take() {
            let _ = h.join();
        }
        // The SpaceServer's own Drop stops the listener.
    }
}

/// Serve one control frame (runs on the data-plane connection threads).
fn handle_control(state: &Arc<NodeState>, data: Bytes) -> Bytes {
    let msg = match decode_msg(data) {
        Ok(m) => m,
        Err(ProtoError(_)) => {
            state.obs.proto_errors.inc();
            return encode_msg(&ClusterMsg::Ack {
                epoch: state.epoch(),
            });
        }
    };
    let reply = match msg {
        ClusterMsg::Hello => ClusterMsg::View {
            view: state.view.lock().clone(),
        },
        ClusterMsg::Join { from } => {
            let adopted = {
                let mut view = state.view.lock();
                match view.with_member(from.clone()) {
                    Some(next) => {
                        *view = next.clone();
                        Some(next)
                    }
                    None => None,
                }
            };
            if let Some(next) = adopted {
                sitra_obs::emit(
                    "cluster",
                    "member.join",
                    &[("member", from.addr), ("epoch", next.epoch.to_string())],
                );
                state.publish_view_gauges();
                gossip_view(state, &next);
                rebalance(state);
            }
            ClusterMsg::View {
                view: state.view.lock().clone(),
            }
        }
        ClusterMsg::Leave { addr } => {
            let adopted = {
                let mut view = state.view.lock();
                match view.without_member(&addr) {
                    Some(next) => {
                        *view = next.clone();
                        Some(next)
                    }
                    None => None,
                }
            };
            if let Some(next) = adopted {
                state.suspicion.lock().forget(&addr);
                sitra_obs::emit(
                    "cluster",
                    "member.leave",
                    &[("member", addr), ("epoch", next.epoch.to_string())],
                );
                state.publish_view_gauges();
                gossip_view(state, &next);
                rebalance(state);
            }
            ClusterMsg::Ack {
                epoch: state.epoch(),
            }
        }
        ClusterMsg::Heartbeat { from, epoch } => {
            state.suspicion.lock().record_ok(&from);
            // A heartbeat from a member our view evicted proves it
            // alive: re-add it (healing false suspicion).
            let readded = {
                let mut view = state.view.lock();
                match view.with_member(MemberInfo { addr: from.clone() }) {
                    Some(next) => {
                        *view = next.clone();
                        Some(next)
                    }
                    None => None,
                }
            };
            if let Some(next) = readded {
                sitra_obs::emit(
                    "cluster",
                    "member.join",
                    &[("member", from), ("epoch", next.epoch.to_string())],
                );
                state.publish_view_gauges();
                gossip_view(state, &next);
                rebalance(state);
            }
            let ours = state.epoch();
            if ours > epoch {
                ClusterMsg::View {
                    view: state.view.lock().clone(),
                }
            } else {
                ClusterMsg::Ack { epoch: ours }
            }
        }
        ClusterMsg::View { view } => {
            adopt_view(state, view);
            ClusterMsg::Ack {
                epoch: state.epoch(),
            }
        }
        ClusterMsg::Ack { .. } => ClusterMsg::Ack {
            epoch: state.epoch(),
        },
    };
    encode_msg(&reply)
}

/// Adopt `incoming` when its epoch is newer, then rebalance. A view
/// that evicted *us* gets ourselves re-added (we are demonstrably
/// alive) so false suspicion heals instead of sticking.
fn adopt_view(state: &Arc<NodeState>, incoming: ClusterView) {
    let self_addr = state.self_addr();
    let adopted = {
        let mut view = state.view.lock();
        if incoming.epoch <= view.epoch {
            None
        } else {
            let mut next = incoming;
            if !next.contains(&self_addr) {
                next = next
                    .with_member(MemberInfo {
                        addr: self_addr.clone(),
                    })
                    .expect("absent member re-adds");
            }
            *view = next.clone();
            Some(next)
        }
    };
    if let Some(next) = adopted {
        sitra_obs::emit(
            "cluster",
            "view.adopt",
            &[
                ("member", self_addr),
                ("epoch", next.epoch.to_string()),
                ("members", next.members.len().to_string()),
            ],
        );
        state.publish_view_gauges();
        rebalance(state);
    }
}

/// Push `view` to every member except ourselves. Best-effort: a peer
/// we cannot reach right now learns the epoch from heartbeat
/// anti-entropy instead.
fn gossip_view(state: &Arc<NodeState>, view: &ClusterView) {
    let self_addr = state.self_addr();
    for m in &view.members {
        if m.addr == self_addr {
            continue;
        }
        let Some(addr) = parse_peer(&m.addr) else {
            continue;
        };
        if let Ok(conn) = RemoteSpace::connect_retry(&addr, &peer_backoff()) {
            let _ = conn.control(encode_msg(&ClusterMsg::View { view: view.clone() }));
        }
    }
}

/// Shard handoff: drain every local piece the current ring no longer
/// assigns to us and push each to its new owner. A piece whose push
/// fails is re-put locally — it must never be in-flight-only.
fn rebalance(state: &Arc<NodeState>) {
    let _serial = state.handoff_lock.lock();
    let view = state.view.lock().clone();
    let self_addr = state.self_addr();
    // When we are out of the view (graceful leave) the ring simply owns
    // us nothing and everything drains.
    let ring = HashRing::new(state.seed, state.vnodes, view.addrs());
    if ring.is_empty() {
        return;
    }
    let moved = state.space.drain_matching(|var, version, bbox| {
        ring.owner(&ShardKey::new(var, version, bbox)) != Some(self_addr.as_str())
    });
    if moved.is_empty() {
        return;
    }
    // Group by new owner so each target costs one connection.
    let mut by_owner: BTreeMap<String, Vec<(String, u64, sitra_mesh::BBox3, Bytes)>> =
        BTreeMap::new();
    for piece in moved {
        let owner = ring
            .owner(&ShardKey::new(&piece.0, piece.1, &piece.2))
            .expect("non-empty ring owns every key")
            .to_string();
        by_owner.entry(owner).or_default().push(piece);
    }
    let mut pushed_pieces = 0u64;
    let mut pushed_bytes = 0u64;
    for (owner, pieces) in by_owner {
        let conn = parse_peer(&owner)
            .and_then(|addr| RemoteSpace::connect_retry(&addr, &peer_backoff()).ok());
        for (var, version, bbox, data) in pieces {
            let len = data.len() as u64;
            let delivered = conn
                .as_ref()
                .is_some_and(|c| c.put(&var, version, bbox, data.clone()).is_ok());
            if delivered {
                pushed_pieces += 1;
                pushed_bytes += len;
            } else {
                // Unreachable owner: keep the piece; fan-out gets still
                // find it here and a later rebalance retries.
                state.space.put(&var, version, bbox, data);
            }
        }
    }
    if pushed_pieces > 0 {
        state.obs.handoff_pieces.add(pushed_pieces);
        state.obs.handoff_bytes.add(pushed_bytes);
        sitra_obs::emit(
            "cluster",
            "handoff",
            &[
                ("member", self_addr),
                ("pieces", pushed_pieces.to_string()),
                ("bytes", pushed_bytes.to_string()),
                ("epoch", view.epoch.to_string()),
            ],
        );
    }
}

/// Re-submit the queued (never-assigned) task backlog round-robin over
/// `survivors`, preserving each task's tenant: the forwarding
/// connection declares the task's tenant before submitting, so the
/// survivor's weighted scheduler and quotas see the task under its real
/// owner, not under whoever happened to forward it. A task no survivor
/// admits is requeued locally (under its own tenant) so the two-phase
/// hand-off invariant (admitted tasks are never silently dropped by
/// *this* layer) holds; it then drains to any bucket still connected to
/// us.
fn forward_backlog(state: &Arc<NodeState>, survivors: &[String]) {
    let backlog = state.sched.drain_queued_labeled();
    if backlog.is_empty() {
        return;
    }
    let conns: Vec<Option<RemoteSpace>> = survivors
        .iter()
        .map(|peer| {
            parse_peer(peer)
                .and_then(|addr| RemoteSpace::connect_retry(&addr, &peer_backoff()).ok())
        })
        .collect();
    // Which tenant each survivor connection is currently bound to. A
    // binding is per-connection state, so it only has to be re-sent
    // when consecutive tasks belong to different tenants.
    let mut bound: Vec<Option<String>> = vec![None; conns.len()];
    let mut forwarded = 0u64;
    for (i, (tenant, seq, task)) in backlog.into_iter().enumerate() {
        let mut delivered = false;
        for k in 0..conns.len() {
            let j = (i + k) % conns.len();
            if let Some(c) = &conns[j] {
                if bound[j].as_deref() != Some(tenant.as_str()) {
                    let spec = state
                        .tenants
                        .iter()
                        .find(|s| s.name == tenant)
                        .cloned()
                        .unwrap_or_else(|| TenantSpec::new(&tenant));
                    if c.set_tenant(&spec).is_err() {
                        continue;
                    }
                    bound[j] = Some(tenant.clone());
                }
                if matches!(c.submit_task_admission(task.clone()), Ok(verdict) if verdict.seq().is_some())
                {
                    delivered = true;
                    break;
                }
            }
        }
        if delivered {
            forwarded += 1;
        } else {
            state.sched.requeue_front_as(&tenant, seq, task);
        }
    }
    if forwarded > 0 {
        state.obs.tasks_forwarded.add(forwarded);
        sitra_obs::emit(
            "cluster",
            "tasks.forwarded",
            &[
                ("member", state.self_addr()),
                ("count", forwarded.to_string()),
            ],
        );
    }
}

/// The heartbeat loop: probe every peer each period; evict peers that
/// miss `suspect_after` probes in a row; adopt newer views carried back
/// by anti-entropy.
fn heartbeat_loop(state: &Arc<NodeState>, every: Duration) {
    while !state.stop.load(Ordering::SeqCst) {
        std::thread::sleep(every);
        if state.stop.load(Ordering::SeqCst) {
            return;
        }
        let self_addr = state.self_addr();
        let (peers, epoch) = {
            let view = state.view.lock();
            (view.addrs(), view.epoch)
        };
        for peer in peers.iter().filter(|p| **p != self_addr) {
            if state.stop.load(Ordering::SeqCst) {
                return;
            }
            let reply = parse_peer(peer)
                .and_then(|addr| RemoteSpace::connect(&addr).ok())
                .and_then(|conn| {
                    conn.control(encode_msg(&ClusterMsg::Heartbeat {
                        from: self_addr.clone(),
                        epoch,
                    }))
                    .ok()
                });
            match reply {
                Some(frame) => {
                    state.suspicion.lock().record_ok(peer);
                    if let Ok(ClusterMsg::View { view }) = decode_msg(frame) {
                        adopt_view(state, view);
                    }
                }
                None => {
                    if state.suspicion.lock().record_miss(peer) {
                        evict_suspect(state, peer);
                    }
                }
            }
        }
        state.publish_view_gauges();
    }
}

/// Remove a suspect peer from the view and gossip the eviction.
fn evict_suspect(state: &Arc<NodeState>, peer: &str) {
    let adopted = {
        let mut view = state.view.lock();
        match view.without_member(peer) {
            Some(next) => {
                *view = next.clone();
                Some(next)
            }
            None => None,
        }
    };
    if let Some(next) = adopted {
        state.obs.suspects.inc();
        sitra_obs::emit(
            "cluster",
            "member.suspect",
            &[
                ("member", peer.to_string()),
                ("by", state.self_addr()),
                ("epoch", next.epoch.to_string()),
            ],
        );
        state.publish_view_gauges();
        gossip_view(state, &next);
        rebalance(state);
    }
}
