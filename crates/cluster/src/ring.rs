//! The consistent-hash ring: a pure, seedable placement function from
//! `(var, version, bbox)` shard keys to cluster members.
//!
//! Every participant — client routers, server-side handoff, the replay
//! oracle — builds the same ring from the same `(seed, vnodes, member
//! list)` and therefore agrees on ownership without any coordination.
//! Virtual nodes smooth the balance: each member contributes `vnodes`
//! points on a `u64` circle, and a key is owned by the member whose
//! point follows the key's hash clockwise.
//!
//! The hash is a seeded splitmix64 chain, chosen (like the fault plan's
//! schedule hash in `sitra-testkit`) for determinism across platforms
//! and runs: no `DefaultHasher`, whose initialization is randomized per
//! process and would make golden outputs irreproducible.

use sitra_mesh::BBox3;

/// Default virtual nodes per member. 128 keeps the expected imbalance
/// across a handful of members within a few percent (see the balance
/// proptest) while the ring stays tiny.
pub const DEFAULT_VNODES: u32 = 128;

/// Default placement seed. Shared by servers and clients that do not
/// override it; any value works as long as every participant agrees.
pub const DEFAULT_SEED: u64 = 0x0005_174A_C1B5;

/// sebastiano vigna's splitmix64 mixer: the statistically solid 64-bit
/// finalizer this crate builds its seeded hash chain from.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Seeded hash of a byte string: fold 8-byte little-endian chunks
/// through the splitmix64 chain. Pure and platform-independent.
fn hash_bytes(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = splitmix64(seed ^ bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = splitmix64(h ^ u64::from_le_bytes(word));
    }
    h
}

/// The key a stored piece is placed by: variable name, version, and the
/// region's lower corner (different blocks of one timestep spread over
/// members, mirroring `DataSpaces::shard`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardKey<'a> {
    /// Variable name.
    pub var: &'a str,
    /// Version (timestep).
    pub version: u64,
    /// Lower corner of the region.
    pub lo: [usize; 3],
}

impl<'a> ShardKey<'a> {
    /// The key of a stored piece.
    pub fn new(var: &'a str, version: u64, bbox: &BBox3) -> Self {
        ShardKey {
            var,
            version,
            lo: bbox.lo,
        }
    }

    fn hash(&self, seed: u64) -> u64 {
        let mut h = hash_bytes(seed, self.var.as_bytes());
        h = splitmix64(h ^ self.version);
        for c in self.lo {
            h = splitmix64(h ^ c as u64);
        }
        h
    }
}

/// The consistent-hash ring over a sorted member list.
#[derive(Debug, Clone)]
pub struct HashRing {
    seed: u64,
    vnodes: u32,
    members: Vec<String>,
    /// `(point, member index)` sorted by point; ties broken by member
    /// index so equal-hash collisions stay deterministic.
    points: Vec<(u64, u32)>,
}

impl HashRing {
    /// Build the ring. The member list is deduplicated and sorted so
    /// every participant derives an identical ring from the same set
    /// regardless of announcement order.
    pub fn new<I, S>(seed: u64, vnodes: u32, members: I) -> HashRing
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut members: Vec<String> = members.into_iter().map(Into::into).collect();
        members.sort();
        members.dedup();
        let vnodes = vnodes.max(1);
        let mut points = Vec::with_capacity(members.len() * vnodes as usize);
        for (idx, m) in members.iter().enumerate() {
            let base = hash_bytes(seed, m.as_bytes());
            for v in 0..vnodes {
                points.push((splitmix64(base ^ u64::from(v)), idx as u32));
            }
        }
        points.sort_unstable();
        HashRing {
            seed,
            vnodes,
            members,
            points,
        }
    }

    /// The sorted, deduplicated member list the ring was built from.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The seed the ring hashes with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Virtual nodes per member.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    fn owner_of_point(&self, h: u64) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        // First ring point at or after the key's hash, wrapping.
        let i = self.points.partition_point(|&(p, _)| p < h);
        let (_, member) = self.points[i % self.points.len()];
        Some(member as usize)
    }

    /// Index of the member owning `key`, or `None` on an empty ring.
    pub fn owner_index(&self, key: &ShardKey<'_>) -> Option<usize> {
        self.owner_of_point(key.hash(self.seed))
    }

    /// The member owning `key`, or `None` on an empty ring.
    pub fn owner(&self, key: &ShardKey<'_>) -> Option<&str> {
        self.owner_index(key).map(|i| self.members[i].as_str())
    }

    /// Index of the member a routed task submission goes to, placed by
    /// `(route, step)` — analyses of the same step spread over members
    /// while both sides of the protocol agree on the mapping.
    pub fn task_owner_index(&self, route: &str, step: u64) -> Option<usize> {
        let h = splitmix64(hash_bytes(self.seed, route.as_bytes()) ^ step);
        self.owner_of_point(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(var: &str, version: u64, lo: [usize; 3]) -> u64 {
        ShardKey { var, version, lo }.hash(7)
    }

    #[test]
    fn shard_key_hash_separates_fields() {
        // Distinct keys that would collide under naive concatenation
        // hash apart.
        assert_ne!(key("ab", 1, [0, 0, 0]), key("a", 1, [0, 0, 0]));
        assert_ne!(key("a", 1, [0, 0, 0]), key("a", 2, [0, 0, 0]));
        assert_ne!(key("a", 1, [1, 0, 0]), key("a", 1, [0, 1, 0]));
    }

    #[test]
    fn ring_is_order_insensitive_and_deduplicated() {
        let a = HashRing::new(1, 8, ["m2", "m0", "m1"]);
        let b = HashRing::new(1, 8, ["m1", "m0", "m2", "m0"]);
        assert_eq!(a.members(), b.members());
        assert_eq!(a.points, b.points);
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let r = HashRing::new(1, 8, Vec::<String>::new());
        assert!(r.is_empty());
        let b = BBox3::new([0, 0, 0], [1, 1, 1]);
        assert_eq!(r.owner(&ShardKey::new("T", 1, &b)), None);
        assert_eq!(r.task_owner_index("viz", 3), None);
    }

    #[test]
    fn single_member_owns_everything() {
        let r = HashRing::new(9, 16, ["only"]);
        for v in 0..50u64 {
            let b = BBox3::new([v as usize, 0, 0], [v as usize + 1, 1, 1]);
            assert_eq!(r.owner(&ShardKey::new("T", v, &b)), Some("only"));
        }
    }
}
