//! Client-side shard routing: one lazy connection per member, puts
//! routed by the placement ring, gets fanned out to every member.
//!
//! The client routes over the **static** endpoint list it was
//! configured with, not the live membership view. That makes its
//! correctness independent of view staleness: a piece is found as long
//! as it lives on *any* configured member, wherever handoff has moved
//! it, and a falsely-suspected member keeps serving its clients.

use crate::ring::{HashRing, ShardKey};
use bytes::Bytes;
use parking_lot::Mutex;
use sitra_dataspaces::{
    Admission, RemoteError, RemoteSpace, RemoteStats, TaskPoll, TenantRow, TenantSpec,
};
use sitra_mesh::BBox3;
use sitra_net::{Addr, Backoff};
use std::time::Duration;

/// Is this failure worth one reconnect-and-retry? Transport errors are
/// (the peer may have restarted or the connection gone stale); protocol
/// and server-side errors are not.
fn retryable(err: &RemoteError) -> bool {
    matches!(err, RemoteError::Net(_))
}

struct Member {
    addr: Addr,
    conn: Mutex<Option<RemoteSpace>>,
}

impl Member {
    /// Run `op` on this member's connection, dialing lazily and
    /// reconnecting once when a stale connection fails with a
    /// transport error. When the client carries a tenant, the binding
    /// is re-declared on every fresh connection — a reconnect must not
    /// silently fall back to the default namespace.
    fn with<R>(
        &self,
        backoff: &Backoff,
        tenant: Option<&TenantSpec>,
        op: impl Fn(&RemoteSpace) -> Result<R, RemoteError>,
    ) -> Result<R, RemoteError> {
        let mut slot = self.conn.lock();
        for attempt in 0..2 {
            if slot.is_none() {
                let conn = RemoteSpace::connect_retry(&self.addr, backoff)?;
                if let Some(spec) = tenant {
                    conn.set_tenant(spec)?;
                }
                *slot = Some(conn);
            }
            match op(slot.as_ref().expect("connected above")) {
                Ok(r) => return Ok(r),
                Err(e) => {
                    *slot = None;
                    if attempt == 1 || !retryable(&e) {
                        return Err(e);
                    }
                }
            }
        }
        unreachable!("loop returns on second attempt")
    }
}

/// Per-member counters a fan-out sums into a cluster-wide view.
#[derive(Debug, Clone, Default)]
pub struct ClusterStats {
    /// Members that answered the stats fan-out.
    pub members_reporting: usize,
    /// Summed scheduler/space counters across reporting members.
    pub totals: RemoteStats,
}

/// A sharded client over a fixed member list.
pub struct ClusterClient {
    ring: HashRing,
    members: Vec<Member>,
    backoff: Backoff,
    tenant: Option<TenantSpec>,
}

impl ClusterClient {
    /// A client routing over `endpoints` with the given placement
    /// parameters (which must match the servers'). Endpoints must
    /// parse as `tcp://` or `inproc://` addresses. Connections are
    /// dialed lazily, so construction never blocks on an absent member.
    pub fn new<I, S>(
        seed: u64,
        vnodes: u32,
        endpoints: I,
        backoff: Backoff,
    ) -> Result<ClusterClient, RemoteError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let ring = HashRing::new(seed, vnodes, endpoints);
        if ring.is_empty() {
            return Err(RemoteError::Proto("empty cluster endpoint list".into()));
        }
        let members = ring
            .members()
            .iter()
            .map(|ep| {
                let addr: Addr = ep
                    .parse()
                    .map_err(|_| RemoteError::Proto(format!("unparseable endpoint `{ep}`")))?;
                Ok(Member {
                    addr,
                    conn: Mutex::new(None),
                })
            })
            .collect::<Result<Vec<_>, RemoteError>>()?;
        Ok(ClusterClient {
            ring,
            members,
            backoff,
            tenant: None,
        })
    }

    /// Bind every member connection (present and future) to `tenant`:
    /// the declaration is sent on each fresh dial, so quotas and
    /// weighted scheduling hold per member even across reconnects and
    /// fail-overs.
    pub fn with_tenant(mut self, spec: TenantSpec) -> Self {
        // Existing connections (dialed before the binding) are dropped
        // so the next use re-dials with the tenant declared.
        for m in &self.members {
            *m.conn.lock() = None;
        }
        self.tenant = Some(spec);
        self
    }

    /// The tenant this client is bound to, if any.
    pub fn tenant(&self) -> Option<&TenantSpec> {
        self.tenant.as_ref()
    }

    /// Fan out a per-tenant stats poll and merge rows by tenant name
    /// (counters summed across members).
    pub fn tenant_stats(&self) -> Vec<TenantRow> {
        let mut by_name: std::collections::BTreeMap<String, TenantRow> = Default::default();
        for m in &self.members {
            if let Ok(rows) = m.with(&self.backoff, self.tenant.as_ref(), |c| c.tenant_stats()) {
                for r in rows {
                    let e = by_name.entry(r.name.clone()).or_insert_with(|| TenantRow {
                        name: r.name.clone(),
                        weight: r.weight,
                        task_quota: r.task_quota,
                        byte_quota: r.byte_quota,
                        ..TenantRow::default()
                    });
                    e.queued += r.queued;
                    e.tasks_submitted += r.tasks_submitted;
                    e.tasks_assigned += r.tasks_assigned;
                    e.tasks_requeued += r.tasks_requeued;
                    e.tasks_shed += r.tasks_shed;
                    e.tasks_rejected += r.tasks_rejected;
                    e.resident_bytes += r.resident_bytes;
                }
            }
        }
        by_name.into_values().collect()
    }

    /// Number of configured members.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// The configured member endpoints, in ring (sorted) order.
    pub fn endpoints(&self) -> &[String] {
        self.ring.members()
    }

    /// Store an object on its ring owner.
    pub fn put(
        &self,
        var: &str,
        version: u64,
        bbox: BBox3,
        data: Bytes,
    ) -> Result<(), RemoteError> {
        let idx = self
            .ring
            .owner_index(&ShardKey::new(var, version, &bbox))
            .expect("non-empty ring");
        self.members[idx].with(&self.backoff, self.tenant.as_ref(), |c| {
            c.put(var, version, bbox, data.clone())
        })
    }

    /// Spatial query fanned out to **every** member, because handoff may
    /// have left pieces anywhere. Pieces are merged, deduplicated by
    /// region (a handoff retry can land the identical piece on two
    /// members), and sorted by lower corner — the same canonical order
    /// `DataSpaces::get` returns. Fails only when every member fails
    /// AND none returned pieces; individual member failures otherwise
    /// just shrink the answer (the caller's piece-count check catches
    /// an incomplete assembly).
    pub fn get(
        &self,
        var: &str,
        version: u64,
        query: &BBox3,
    ) -> Result<Vec<(BBox3, Bytes)>, RemoteError> {
        let mut pieces: Vec<(BBox3, Bytes)> = Vec::new();
        let mut last_err = None;
        let mut answered = false;
        for m in &self.members {
            match m.with(&self.backoff, self.tenant.as_ref(), |c| {
                c.get(var, version, query)
            }) {
                Ok(got) => {
                    answered = true;
                    pieces.extend(got);
                }
                Err(e) => last_err = Some(e),
            }
        }
        if !answered {
            return Err(last_err.unwrap_or_else(|| RemoteError::Proto("no members".into())));
        }
        pieces.sort_by_key(|(b, _)| b.lo);
        pieces.dedup_by(|a, b| a.0 == b.0);
        Ok(pieces)
    }

    /// Highest stored version of `var` across the cluster, `None` when
    /// no member holds it.
    pub fn latest_version(&self, var: &str) -> Result<Option<u64>, RemoteError> {
        let mut latest = None;
        let mut last_err = None;
        let mut answered = false;
        for m in &self.members {
            match m.with(&self.backoff, self.tenant.as_ref(), |c| {
                c.latest_version(var)
            }) {
                Ok(v) => {
                    answered = true;
                    latest = latest.max(v);
                }
                Err(e) => last_err = Some(e),
            }
        }
        if !answered {
            return Err(last_err.unwrap_or_else(|| RemoteError::Proto("no members".into())));
        }
        Ok(latest)
    }

    /// Submit a task to the member owning `(route, step)`, falling over
    /// to the next members in ring order when the owner is unreachable.
    /// Returns the serving member's index along with the admission
    /// verdict.
    pub fn submit_task_routed(
        &self,
        route: &str,
        step: u64,
        data: Bytes,
    ) -> Result<(usize, Admission), RemoteError> {
        self.submit_task_routed_hinted(route, step, data, Vec::new())
    }

    /// Where a task's input bytes live: fold each part's ring owner
    /// into an `(endpoint, bytes)` residency map. The same pure ring
    /// placement that routed the `put`s, so the map reflects where the
    /// pieces actually landed without asking any server. Feed the
    /// result to [`ClusterClient::submit_task_routed_hinted`] so a
    /// locality-aware scheduler can steer the task toward a bucket
    /// co-located with the heaviest shard.
    pub fn residency_hint(
        &self,
        var: &str,
        version: u64,
        parts: &[(BBox3, u64)],
    ) -> Vec<(String, u64)> {
        let mut by_member: std::collections::BTreeMap<usize, u64> = Default::default();
        for (bbox, bytes) in parts {
            if let Some(idx) = self.ring.owner_index(&ShardKey::new(var, version, bbox)) {
                *by_member.entry(idx).or_insert(0) += bytes;
            }
        }
        by_member
            .into_iter()
            .map(|(idx, bytes)| (self.ring.members()[idx].clone(), bytes))
            .collect()
    }

    /// [`ClusterClient::submit_task_routed`] carrying an `(endpoint,
    /// bytes)` residency hint (see [`ClusterClient::residency_hint`]).
    /// An empty hint degenerates to the plain submission verb on the
    /// wire, so FCFS-only servers see byte-identical traffic.
    pub fn submit_task_routed_hinted(
        &self,
        route: &str,
        step: u64,
        data: Bytes,
        hint: Vec<(String, u64)>,
    ) -> Result<(usize, Admission), RemoteError> {
        let owner = self
            .ring
            .task_owner_index(route, step)
            .expect("non-empty ring");
        let n = self.members.len();
        let mut last_err = None;
        for k in 0..n {
            let idx = (owner + k) % n;
            match self.members[idx].with(&self.backoff, self.tenant.as_ref(), |c| {
                if hint.is_empty() {
                    c.submit_task_admission(data.clone())
                } else {
                    c.submit_task_hinted(data.clone(), hint.clone())
                }
            }) {
                Ok(adm) => return Ok((idx, adm)),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| RemoteError::Proto("no members".into())))
    }

    /// Ask one member for a task assignment (bucket-worker side). The
    /// two-phase receipt acknowledgement happens inside the underlying
    /// call.
    pub fn request_task(
        &self,
        member_idx: usize,
        bucket_id: u32,
        timeout: Duration,
    ) -> Result<TaskPoll, RemoteError> {
        self.members[member_idx].with(&self.backoff, self.tenant.as_ref(), |c| {
            c.request_task(bucket_id, timeout)
        })
    }

    /// [`ClusterClient::request_task`] declaring the bucket's home
    /// endpoint, so a locality-aware scheduler on the polled member can
    /// prefer this bucket for tasks whose input is resident there. An
    /// empty `location` leaves the bucket unlocated.
    pub fn request_task_located(
        &self,
        member_idx: usize,
        bucket_id: u32,
        timeout: Duration,
        location: &str,
    ) -> Result<TaskPoll, RemoteError> {
        self.members[member_idx].with(&self.backoff, self.tenant.as_ref(), |c| {
            c.request_task_located(bucket_id, timeout, location)
        })
    }

    /// Evict everything at `version` everywhere. Per-member transport
    /// errors are swallowed: eviction is an optimization, and a dead
    /// member holds nothing worth evicting.
    pub fn evict_version(&self, version: u64) {
        for m in &self.members {
            let _ = m.with(&self.backoff, self.tenant.as_ref(), |c| {
                c.evict_version(version)
            });
        }
    }

    /// Close every member's scheduler (end of run). Unreachable
    /// members are skipped.
    pub fn close_sched(&self) {
        for m in &self.members {
            let _ = m.with(&self.backoff, self.tenant.as_ref(), |c| c.close_sched());
        }
    }

    /// Fan out a stats poll and sum the counters.
    pub fn stats(&self) -> ClusterStats {
        let mut out = ClusterStats::default();
        for m in &self.members {
            if let Ok(s) = m.with(&self.backoff, self.tenant.as_ref(), |c| c.stats()) {
                out.members_reporting += 1;
                out.totals.tasks_submitted += s.tasks_submitted;
                out.totals.tasks_assigned += s.tasks_assigned;
                out.totals.tasks_requeued += s.tasks_requeued;
                out.totals.tasks_shed += s.tasks_shed;
                out.totals.tasks_rejected += s.tasks_rejected;
                out.totals.objects += s.objects;
                out.totals.resident_bytes += s.resident_bytes;
            }
        }
        out
    }
}
