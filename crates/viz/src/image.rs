//! Float RGBA images: compositing, metrics, PPM export.

use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// A width×height image of premultiplied RGBA samples in `[0,1]`.
///
/// Premultiplied storage makes the *over* operator a single fused
/// multiply-add per channel, and — more importantly for the distributed
/// renderer — makes compositing associative, so partial images from
/// different ranks can be combined in visibility order with the same
/// result as a serial traversal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Image {
    width: usize,
    height: usize,
    /// RGBA per pixel, row-major.
    data: Vec<[f64; 4]>,
}

impl Image {
    /// A transparent (all-zero) image.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "empty image");
        Self {
            width,
            height,
            data: vec![[0.0; 4]; width * height],
        }
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel accessor.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> [f64; 4] {
        self.data[y * self.width + x]
    }

    /// Mutable pixel accessor.
    #[inline]
    pub fn get_mut(&mut self, x: usize, y: usize) -> &mut [f64; 4] {
        &mut self.data[y * self.width + x]
    }

    /// Raw pixels, row-major.
    pub fn pixels(&self) -> &[[f64; 4]] {
        &self.data
    }

    /// Mutable raw pixels.
    pub fn pixels_mut(&mut self) -> &mut [[f64; 4]] {
        &mut self.data
    }

    /// Composite `back` *behind* this image (premultiplied *over*):
    /// `out = front + (1 − α_front) · back`.
    pub fn over(&mut self, back: &Image) {
        assert_eq!(
            (self.width, self.height),
            (back.width, back.height),
            "image size mismatch"
        );
        for (f, b) in self.data.iter_mut().zip(&back.data) {
            let t = 1.0 - f[3];
            for c in 0..4 {
                f[c] += t * b[c];
            }
        }
    }

    /// Blend this image *behind* an opaque background color and return
    /// 8-bit RGB rows (for display/export).
    pub fn to_rgb8(&self, background: [f64; 3]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.width * self.height * 3);
        for p in &self.data {
            let t = 1.0 - p[3];
            for c in 0..3 {
                let v = p[c] + t * background[c];
                out.push((v.clamp(0.0, 1.0) * 255.0).round() as u8);
            }
        }
        out
    }

    /// Write a binary PPM (P6) file composited over `background`.
    pub fn write_ppm(&self, path: impl AsRef<Path>, background: [f64; 3]) -> std::io::Result<()> {
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        writeln!(f, "P6\n{} {}\n255", self.width, self.height)?;
        f.write_all(&self.to_rgb8(background))?;
        Ok(())
    }

    /// Root-mean-square error against another image over RGBA channels.
    pub fn rmse(&self, other: &Image) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "image size mismatch"
        );
        let mut acc = 0.0;
        for (a, b) in self.data.iter().zip(&other.data) {
            for c in 0..4 {
                let d = a[c] - b[c];
                acc += d * d;
            }
        }
        (acc / (self.data.len() * 4) as f64).sqrt()
    }

    /// Peak signal-to-noise ratio in dB (`inf` for identical images).
    pub fn psnr(&self, other: &Image) -> f64 {
        let rmse = self.rmse(other);
        if rmse == 0.0 {
            f64::INFINITY
        } else {
            20.0 * (1.0 / rmse).log10()
        }
    }

    /// Largest per-channel absolute difference.
    pub fn max_abs_diff(&self, other: &Image) -> f64 {
        self.data
            .iter()
            .zip(&other.data)
            .flat_map(|(a, b)| (0..4).map(move |c| (a[c] - b[c]).abs()))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solid(w: usize, h: usize, c: [f64; 4]) -> Image {
        let mut im = Image::new(w, h);
        for p in im.pixels_mut() {
            *p = c;
        }
        im
    }

    #[test]
    fn over_opaque_front_hides_back() {
        let mut front = solid(2, 2, [0.3, 0.0, 0.0, 1.0]);
        let back = solid(2, 2, [0.0, 0.9, 0.0, 1.0]);
        front.over(&back);
        assert_eq!(front.get(0, 0), [0.3, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn over_transparent_front_shows_back() {
        let mut front = Image::new(2, 2);
        let back = solid(2, 2, [0.1, 0.2, 0.3, 0.8]);
        front.over(&back);
        assert_eq!(front.get(1, 1), [0.1, 0.2, 0.3, 0.8]);
    }

    #[test]
    fn over_is_associative() {
        // (a over b) over c == a over (b over c) — the property the
        // distributed compositor depends on.
        let a = solid(1, 1, [0.2 * 0.5, 0.0, 0.1 * 0.5, 0.5]);
        let b = solid(1, 1, [0.0, 0.3 * 0.6, 0.0, 0.6]);
        let c = solid(1, 1, [0.4 * 0.7, 0.0, 0.0, 0.7]);
        let mut left = a.clone();
        left.over(&b);
        left.over(&c);
        let mut bc = b.clone();
        bc.over(&c);
        let mut right = a.clone();
        right.over(&bc);
        for ch in 0..4 {
            assert!((left.get(0, 0)[ch] - right.get(0, 0)[ch]).abs() < 1e-12);
        }
    }

    #[test]
    fn rgb8_blends_background() {
        let im = solid(1, 1, [0.5, 0.0, 0.0, 0.5]); // premultiplied red 50%
        let rgb = im.to_rgb8([0.0, 0.0, 1.0]);
        assert_eq!(rgb, vec![128, 0, 128]);
    }

    #[test]
    fn metrics() {
        let a = solid(4, 4, [0.5, 0.5, 0.5, 1.0]);
        let b = solid(4, 4, [0.5, 0.5, 0.5, 1.0]);
        assert_eq!(a.rmse(&b), 0.0);
        assert_eq!(a.psnr(&b), f64::INFINITY);
        let c = solid(4, 4, [0.6, 0.5, 0.5, 1.0]);
        assert!((a.rmse(&c) - 0.05).abs() < 1e-12); // 0.1 err in 1 of 4 chans
        assert!((a.max_abs_diff(&c) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ppm_roundtrip_header() {
        let im = solid(3, 2, [1.0, 1.0, 1.0, 1.0]);
        let dir = std::env::temp_dir().join("sitra_viz_test.ppm");
        im.write_ppm(&dir, [0.0; 3]).unwrap();
        let bytes = std::fs::read(&dir).unwrap();
        assert!(bytes.starts_with(b"P6\n3 2\n255\n"));
        assert_eq!(bytes.len(), 11 + 3 * 2 * 3);
        let _ = std::fs::remove_file(dir);
    }
}
