//! Transfer functions: scalar value → premultiplied RGBA.

use serde::{Deserialize, Serialize};

/// A piecewise-linear transfer function over a scalar range.
///
/// Control points are `(normalized position in [0,1], [r, g, b, a])`;
/// colors are *straight* (non-premultiplied) in the control points and
/// the lookup returns straight RGBA. Opacity is per *unit of optical
/// depth* — the renderer scales alpha by its sampling step so images are
/// step-size independent to first order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferFunction {
    lo: f64,
    hi: f64,
    points: Vec<(f64, [f64; 4])>,
}

impl TransferFunction {
    /// Build from control points. Positions must be in `[0,1]`, strictly
    /// increasing, starting at 0 and ending at 1.
    pub fn new(lo: f64, hi: f64, points: Vec<(f64, [f64; 4])>) -> Self {
        assert!(hi > lo, "empty scalar range");
        assert!(points.len() >= 2, "need at least two control points");
        assert_eq!(points[0].0, 0.0, "first control point must sit at 0");
        assert_eq!(
            points.last().unwrap().0,
            1.0,
            "last control point must sit at 1"
        );
        for w in points.windows(2) {
            assert!(w[0].0 < w[1].0, "positions must strictly increase");
        }
        Self { lo, hi, points }
    }

    /// A "hot" map (black → red → yellow → white) with opacity ramping up
    /// toward high values — a reasonable default for temperature-like
    /// fields such as the combustion case.
    pub fn hot(lo: f64, hi: f64) -> Self {
        Self::new(
            lo,
            hi,
            vec![
                (0.0, [0.0, 0.0, 0.0, 0.0]),
                (0.35, [0.8, 0.1, 0.05, 0.08]),
                (0.7, [1.0, 0.65, 0.1, 0.35]),
                (1.0, [1.0, 1.0, 0.9, 0.9]),
            ],
        )
    }

    /// A blue→white→red diverging map with symmetric opacity, good for
    /// signed quantities (e.g. vorticity).
    pub fn diverging(lo: f64, hi: f64) -> Self {
        Self::new(
            lo,
            hi,
            vec![
                (0.0, [0.1, 0.2, 0.9, 0.7]),
                (0.5, [1.0, 1.0, 1.0, 0.0]),
                (1.0, [0.9, 0.1, 0.1, 0.7]),
            ],
        )
    }

    /// Scalar range lower bound.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Scalar range upper bound.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Straight RGBA for a scalar value (clamped to the range).
    pub fn sample(&self, v: f64) -> [f64; 4] {
        let t = ((v - self.lo) / (self.hi - self.lo)).clamp(0.0, 1.0);
        // Find the bracketing control points.
        let mut i = 0;
        while i + 2 < self.points.len() && self.points[i + 1].0 <= t {
            i += 1;
        }
        let (t0, c0) = self.points[i];
        let (t1, c1) = self.points[i + 1];
        let f = if t1 > t0 { (t - t0) / (t1 - t0) } else { 0.0 };
        let f = f.clamp(0.0, 1.0);
        [
            c0[0] + (c1[0] - c0[0]) * f,
            c0[1] + (c1[1] - c0[1]) * f,
            c0[2] + (c1[2] - c0[2]) * f,
            c0[3] + (c1[3] - c0[3]) * f,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_exact() {
        let tf = TransferFunction::new(
            0.0,
            10.0,
            vec![(0.0, [0.0; 4]), (1.0, [1.0, 0.5, 0.25, 1.0])],
        );
        assert_eq!(tf.sample(0.0), [0.0; 4]);
        assert_eq!(tf.sample(10.0), [1.0, 0.5, 0.25, 1.0]);
    }

    #[test]
    fn linear_interpolation_midpoint() {
        let tf = TransferFunction::new(
            0.0,
            1.0,
            vec![(0.0, [0.0, 0.0, 0.0, 0.0]), (1.0, [1.0, 1.0, 1.0, 1.0])],
        );
        let c = tf.sample(0.5);
        for ch in c {
            assert!((ch - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn clamps_out_of_range() {
        let tf = TransferFunction::hot(100.0, 200.0);
        assert_eq!(tf.sample(-5.0), tf.sample(100.0));
        assert_eq!(tf.sample(1e9), tf.sample(200.0));
    }

    #[test]
    fn multi_segment_lookup() {
        let tf = TransferFunction::new(
            0.0,
            1.0,
            vec![
                (0.0, [0.0; 4]),
                (0.5, [1.0, 0.0, 0.0, 0.5]),
                (1.0, [0.0, 1.0, 0.0, 1.0]),
            ],
        );
        let at_half = tf.sample(0.5);
        assert_eq!(at_half, [1.0, 0.0, 0.0, 0.5]);
        let at_3q = tf.sample(0.75);
        assert!((at_3q[0] - 0.5).abs() < 1e-12);
        assert!((at_3q[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn unsorted_points_panic() {
        let _ = TransferFunction::new(
            0.0,
            1.0,
            vec![
                (0.0, [0.0; 4]),
                (0.8, [0.0; 4]),
                (0.5, [0.0; 4]),
                (1.0, [0.0; 4]),
            ],
        );
    }

    #[test]
    fn presets_cover_range() {
        for tf in [
            TransferFunction::hot(0.0, 1.0),
            TransferFunction::diverging(-1.0, 1.0),
        ] {
            for i in 0..=20 {
                let v = tf.lo() + (tf.hi() - tf.lo()) * i as f64 / 20.0;
                let c = tf.sample(v);
                assert!(c.iter().all(|x| (0.0..=1.0).contains(x)));
            }
        }
    }
}
