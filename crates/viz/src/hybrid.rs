//! The hybrid visualization path: in-situ down-sampling, in-transit
//! lookup-table ray casting.
//!
//! Each rank down-samples its block onto the global coarse lattice with
//! [`sitra_mesh::downsample`] and ships the [`sitra_mesh::SampledBlock`]
//! to the staging area. The in-transit renderer never reconstructs the
//! coarse volume: it builds a small **lookup table** recording the upper
//! and lower bounds of every received block (the paper's mechanism for
//! avoiding visibility sorting or volume reconstruction) and resolves
//! each sample's voxel through the table during ray casting.
//!
//! The renderer accepts the *same* [`View`] as the full-resolution in-situ
//! path — sample positions are mapped into coarse space internally — so
//! the two images are directly comparable (the paper's Fig. 2).

use crate::image::Image;
use crate::render::View;
use crate::transfer::TransferFunction;
use sitra_mesh::{BBox3, SampledBlock, ScalarField};
use std::cell::Cell;

/// The block-bounds lookup table of the in-transit renderer.
#[derive(Debug)]
pub struct BlockTable {
    /// `(coarse bounds, block index)` per received block.
    entries: Vec<(BBox3, usize)>,
    /// Cache of the last hit — rays walk coherently, so consecutive
    /// lookups usually land in the same block.
    last: Cell<usize>,
}

impl BlockTable {
    /// Build the table from the received blocks' coarse bounds.
    pub fn new(blocks: &[SampledBlock]) -> Self {
        let entries = blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| !b.coarse_bbox.is_empty())
            .map(|(i, b)| (b.coarse_bbox, i))
            .collect();
        Self {
            entries,
            last: Cell::new(0),
        }
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Index of the block owning coarse point `p`.
    pub fn find(&self, p: [usize; 3]) -> Option<usize> {
        let n = self.entries.len();
        if n == 0 {
            return None;
        }
        let start = self.last.get().min(n - 1);
        // Check the cached entry first, then scan.
        if self.entries[start].0.contains(p) {
            return Some(self.entries[start].1);
        }
        for (i, (bb, idx)) in self.entries.iter().enumerate() {
            if bb.contains(p) {
                self.last.set(i);
                return Some(*idx);
            }
        }
        None
    }
}

/// Serial in-transit renderer over down-sampled blocks.
#[derive(Debug)]
pub struct HybridRenderer {
    blocks: Vec<SampledBlock>,
    table: BlockTable,
    stride: usize,
    coarse_domain: BBox3,
}

impl HybridRenderer {
    /// Ingest the blocks received from the in-situ stage. All blocks must
    /// share one stride; blocks with empty coarse regions (thinner than
    /// the stride) are tolerated.
    pub fn new(blocks: Vec<SampledBlock>) -> Self {
        assert!(!blocks.is_empty(), "no blocks received");
        let stride = blocks[0].stride;
        assert!(
            blocks.iter().all(|b| b.stride == stride),
            "blocks disagree on stride"
        );
        let coarse_domain = blocks
            .iter()
            .filter(|b| !b.coarse_bbox.is_empty())
            .map(|b| b.coarse_bbox)
            .reduce(|a, b| a.cover(&b))
            .expect("all blocks empty");
        let table = BlockTable::new(&blocks);
        Self {
            blocks,
            table,
            stride,
            coarse_domain,
        }
    }

    /// The down-sampling stride of the received data.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The coarse lattice region covered.
    pub fn coarse_domain(&self) -> BBox3 {
        self.coarse_domain
    }

    /// Total payload received from the in-situ stage, in bytes.
    pub fn received_bytes(&self) -> usize {
        self.blocks.iter().map(SampledBlock::bytes).sum()
    }

    /// Value at a coarse lattice point, resolved through the table.
    fn value_at(&self, p: [usize; 3]) -> f64 {
        let idx = self
            .table
            .find(p)
            .unwrap_or_else(|| panic!("coarse point {p:?} not covered by any block"));
        let b = &self.blocks[idx];
        b.data[b.coarse_bbox.local_index(p)]
    }

    /// Trilinear sample at a fractional coarse position, clamped to the
    /// coarse domain; the 8 cell corners may live in different blocks.
    fn sample_coarse(&self, pos: [f64; 3]) -> f64 {
        let d = self.coarse_domain;
        let mut i0 = [0usize; 3];
        let mut frac = [0f64; 3];
        for a in 0..3 {
            let lo = d.lo[a] as f64;
            let hi = (d.hi[a] - 1) as f64;
            let x = pos[a].clamp(lo, hi);
            let base = x.floor();
            i0[a] = base as usize;
            if i0[a] + 1 >= d.hi[a] {
                i0[a] = d.hi[a] - 1;
                frac[a] = 0.0;
            } else {
                frac[a] = x - base;
            }
        }
        let mut acc = 0.0;
        for dz in 0..2usize {
            for dy in 0..2usize {
                for dx in 0..2usize {
                    let p = [
                        (i0[0] + dx).min(d.hi[0] - 1),
                        (i0[1] + dy).min(d.hi[1] - 1),
                        (i0[2] + dz).min(d.hi[2] - 1),
                    ];
                    let w = (if dx == 1 { frac[0] } else { 1.0 - frac[0] })
                        * (if dy == 1 { frac[1] } else { 1.0 - frac[1] })
                        * (if dz == 1 { frac[2] } else { 1.0 - frac[2] });
                    acc += w * self.value_at(p);
                }
            }
        }
        acc
    }

    /// Ray-cast the down-sampled data through the *full-resolution* view:
    /// sample positions are divided by the stride so the output is
    /// pixel-compatible with the in-situ rendering of the same view.
    /// Serial by design — this runs on one staging bucket.
    pub fn render(&self, view: &View, tf: &TransferFunction) -> Image {
        let n = view.samples_per_ray();
        let mut img = Image::new(view.width, view.height);
        let s = self.stride as f64;
        for py in 0..view.height {
            for px in 0..view.width {
                let mut rgba = [0.0f64; 4];
                for k in 0..n {
                    if let Some(cut) = view.opacity_cutoff {
                        if rgba[3] >= cut {
                            break;
                        }
                    }
                    let pos = view_sample_pos(view, px, py, k);
                    let cpos = [pos[0] / s, pos[1] / s, pos[2] / s];
                    let val = self.sample_coarse(cpos);
                    let c = tf.sample(val);
                    let a = 1.0 - (1.0 - c[3]).powf(view.step);
                    let t = (1.0 - rgba[3]) * a;
                    rgba[0] += t * c[0];
                    rgba[1] += t * c[1];
                    rgba[2] += t * c[2];
                    rgba[3] += t;
                }
                *img.get_mut(px, py) = rgba;
            }
        }
        img
    }

    /// Reconstruct the coarse field (for diagnostics and tests; the
    /// renderer itself never does this).
    pub fn assemble(&self) -> ScalarField {
        let mut out = ScalarField::new_fill(self.coarse_domain, f64::NAN);
        for b in &self.blocks {
            if !b.coarse_bbox.is_empty() {
                out.paste(&b.as_field());
            }
        }
        out
    }
}

/// Re-derive a view's sample position (mirror of `View::sample_pos`,
/// which is private to the render module).
fn view_sample_pos(view: &View, px: usize, py: usize, k: usize) -> [f64; 3] {
    let (r, u, v) = view.axis.dims();
    let du = view.domain.dims()[u] as f64 / view.width as f64;
    let dv = view.domain.dims()[v] as f64 / view.height as f64;
    let n = view.samples_per_ray();
    let ki = if view.flip { n - 1 - k } else { k };
    let mut pos = [0.0; 3];
    pos[u] = view.domain.lo[u] as f64 + (px as f64 + 0.5) * du;
    pos[v] = view.domain.lo[v] as f64 + (py as f64 + 0.5) * dv;
    pos[r] = view.domain.lo[r] as f64 + (ki as f64 + 0.5) * view.step;
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::{render_serial, ViewAxis};
    use sitra_mesh::{downsample, Decomposition};

    fn smooth(b: BBox3) -> ScalarField {
        ScalarField::from_fn(b, |p| {
            let x = p[0] as f64 * 0.3;
            let y = p[1] as f64 * 0.4;
            let z = p[2] as f64 * 0.25;
            ((x).sin() * (y).cos() + (z).sin() + 2.0) / 4.0
        })
    }

    fn blocks_of(whole: &ScalarField, parts: [usize; 3], stride: usize) -> Vec<SampledBlock> {
        let d = Decomposition::new(whole.bbox(), parts);
        (0..d.rank_count())
            .map(|r| downsample(&whole.extract(&d.block(r)), stride))
            .collect()
    }

    #[test]
    fn table_finds_owners() {
        let whole = smooth(BBox3::from_dims([12, 12, 12]));
        let blocks = blocks_of(&whole, [2, 2, 2], 2);
        let table = BlockTable::new(&blocks);
        for (i, b) in blocks.iter().enumerate() {
            for p in b.coarse_bbox.iter() {
                assert_eq!(table.find(p), Some(i));
            }
        }
        assert_eq!(table.find([99, 0, 0]), None);
    }

    #[test]
    fn assembled_field_matches_global_downsample() {
        let whole = smooth(BBox3::from_dims([15, 13, 11]));
        let blocks = blocks_of(&whole, [3, 2, 2], 3);
        let hr = HybridRenderer::new(blocks);
        let global = downsample(&whole, 3);
        assert_eq!(hr.assemble(), global.as_field());
        assert_eq!(hr.coarse_domain(), global.coarse_bbox);
    }

    #[test]
    fn stride_one_hybrid_equals_in_situ() {
        let whole = smooth(BBox3::from_dims([10, 9, 8]));
        let blocks = blocks_of(&whole, [2, 2, 1], 1);
        let hr = HybridRenderer::new(blocks);
        let tf = TransferFunction::hot(0.0, 1.0);
        let view = View::full_res(whole.bbox(), ViewAxis::Z, false);
        let full = render_serial(&whole, &view, &tf);
        let hybrid = hr.render(&view, &tf);
        assert!(
            full.max_abs_diff(&hybrid) < 1e-9,
            "diff {}",
            full.max_abs_diff(&hybrid)
        );
    }

    #[test]
    fn quality_degrades_gracefully_with_stride() {
        let whole = smooth(BBox3::from_dims([32, 32, 32]));
        let tf = TransferFunction::hot(0.0, 1.0);
        let view = View::full_res(whole.bbox(), ViewAxis::Z, false);
        let reference = render_serial(&whole, &view, &tf);
        let rmse2 = HybridRenderer::new(blocks_of(&whole, [2, 2, 2], 2))
            .render(&view, &tf)
            .rmse(&reference);
        let rmse8 = HybridRenderer::new(blocks_of(&whole, [2, 2, 2], 8))
            .render(&view, &tf)
            .rmse(&reference);
        // Coarser data renders a less accurate image, but both stay in a
        // sane range for a smooth field.
        assert!(rmse2 <= rmse8, "rmse2 {rmse2} rmse8 {rmse8}");
        assert!(rmse8 < 0.2, "rmse8 {rmse8}");
        assert!(rmse2 > 0.0);
    }

    #[test]
    fn payload_shrinks_cubically_with_stride() {
        let whole = smooth(BBox3::from_dims([32, 32, 32]));
        let b1 = HybridRenderer::new(blocks_of(&whole, [2, 2, 2], 1)).received_bytes();
        let b4 = HybridRenderer::new(blocks_of(&whole, [2, 2, 2], 4)).received_bytes();
        assert_eq!(b1, 32 * 32 * 32 * 8);
        // 4³ = 64× reduction (8×8×8 coarse points).
        assert_eq!(b4, 8 * 8 * 8 * 8);
    }

    #[test]
    fn tolerates_blocks_thinner_than_stride() {
        let whole = smooth(BBox3::from_dims([9, 4, 4]));
        // 3 slabs of width 3, stride 4: middle slab [3,6) contains the
        // lattice point x=4, first [0,3) contains x=0, last [6,9) x=8.
        let blocks = blocks_of(&whole, [3, 1, 1], 4);
        let hr = HybridRenderer::new(blocks);
        assert_eq!(hr.coarse_domain().dims(), [3, 1, 1]);
        let tf = TransferFunction::hot(0.0, 1.0);
        let view = View::full_res(whole.bbox(), ViewAxis::Z, false);
        let img = hr.render(&view, &tf);
        assert!(img.pixels().iter().any(|p| p[3] > 0.0));
    }

    #[test]
    #[should_panic]
    fn mixed_strides_panic() {
        let whole = smooth(BBox3::from_dims([8, 8, 8]));
        let d = Decomposition::new(whole.bbox(), [2, 1, 1]);
        let b0 = downsample(&whole.extract(&d.block(0)), 2);
        let b1 = downsample(&whole.extract(&d.block(1)), 4);
        let _ = HybridRenderer::new(vec![b0, b1]);
    }
}
