//! Axis-aligned orthographic ray casting and visibility-ordered
//! compositing.
//!
//! Rays travel along one grid axis on a *globally fixed sample lattice*:
//! sample `k` of a pixel sits at the same world position no matter which
//! rank evaluates it. Each rank accumulates only the samples owned by its
//! block, so the per-block partial images composite (in block order along
//! the view axis) to exactly the serial whole-domain rendering — the
//! correctness invariant of the in-situ visualization path.

use crate::image::Image;
use crate::transfer::TransferFunction;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use sitra_mesh::{sample_trilinear, BBox3, ScalarField};

/// The grid axis rays travel along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViewAxis {
    /// Rays along x; image plane is (y, z).
    X,
    /// Rays along y; image plane is (x, z).
    Y,
    /// Rays along z; image plane is (x, y).
    Z,
}

impl ViewAxis {
    /// `(ray axis, image-u axis, image-v axis)` as dimension indices.
    pub fn dims(self) -> (usize, usize, usize) {
        match self {
            ViewAxis::X => (0, 1, 2),
            ViewAxis::Y => (1, 0, 2),
            ViewAxis::Z => (2, 0, 1),
        }
    }
}

/// An axis-aligned orthographic view of a domain region.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct View {
    /// Region of the global grid to render.
    pub domain: BBox3,
    /// Ray direction axis.
    pub axis: ViewAxis,
    /// When true the viewer sits at the high-coordinate side (front =
    /// large coordinate, rays march downward).
    pub flip: bool,
    /// Image width in pixels (along the u axis).
    pub width: usize,
    /// Image height in pixels (along the v axis).
    pub height: usize,
    /// Sample spacing along the ray, in grid units.
    pub step: f64,
    /// Stop marching a ray once accumulated opacity reaches this value
    /// (`None` = never stop early; required for exact serial/distributed
    /// equality).
    pub opacity_cutoff: Option<f64>,
}

impl View {
    /// A view covering `domain` with one pixel per grid cell on the image
    /// plane and unit sample step.
    pub fn full_res(domain: BBox3, axis: ViewAxis, flip: bool) -> Self {
        let (_, u, v) = axis.dims();
        let d = domain.dims();
        Self {
            domain,
            axis,
            flip,
            width: d[u],
            height: d[v],
            step: 1.0,
            opacity_cutoff: None,
        }
    }

    /// Number of samples along each ray.
    pub fn samples_per_ray(&self) -> usize {
        let (r, _, _) = self.axis.dims();
        let extent = self.domain.dims()[r] as f64;
        (extent / self.step).ceil() as usize
    }

    /// World position of sample `k` on pixel `(px, py)`.
    #[inline]
    fn sample_pos(&self, px: usize, py: usize, k: usize) -> [f64; 3] {
        let (r, u, v) = self.axis.dims();
        let du = self.domain.dims()[u] as f64 / self.width as f64;
        let dv = self.domain.dims()[v] as f64 / self.height as f64;
        let n = self.samples_per_ray();
        // Front-to-back: k = 0 is nearest the viewer.
        let ki = if self.flip { n - 1 - k } else { k };
        let mut pos = [0.0; 3];
        pos[u] = self.domain.lo[u] as f64 + (px as f64 + 0.5) * du;
        pos[v] = self.domain.lo[v] as f64 + (py as f64 + 0.5) * dv;
        pos[r] = self.domain.lo[r] as f64 + (ki as f64 + 0.5) * self.step;
        pos
    }
}

/// Does the half-open box own this (possibly fractional) position?
#[inline]
fn owns(bbox: &BBox3, pos: [f64; 3]) -> bool {
    (0..3).all(|a| pos[a] >= bbox.lo[a] as f64 && pos[a] < bbox.hi[a] as f64)
}

/// Ray-cast the samples of `view` that fall inside `owned`, reading data
/// from `field` (which must cover at least `owned` plus a one-point halo,
/// clamped to the domain — i.e. a ghosted block, or the whole domain).
///
/// Returns the partial premultiplied-RGBA image. Rows are processed in
/// parallel.
pub fn render_block(
    field: &ScalarField,
    owned: &BBox3,
    view: &View,
    tf: &TransferFunction,
) -> Image {
    let n = view.samples_per_ray();
    let mut img = Image::new(view.width, view.height);
    let rows: Vec<Vec<[f64; 4]>> = (0..view.height)
        .into_par_iter()
        .map(|py| {
            let mut row = vec![[0.0; 4]; view.width];
            for (px, out) in row.iter_mut().enumerate() {
                let mut rgba = [0.0f64; 4];
                for k in 0..n {
                    if let Some(cut) = view.opacity_cutoff {
                        if rgba[3] >= cut {
                            break;
                        }
                    }
                    let pos = view.sample_pos(px, py, k);
                    if !owns(owned, pos) {
                        continue;
                    }
                    let val = sample_trilinear(field, pos);
                    let c = tf.sample(val);
                    // Opacity correction for the sample step, then
                    // front-to-back premultiplied accumulation.
                    let a = 1.0 - (1.0 - c[3]).powf(view.step);
                    let t = (1.0 - rgba[3]) * a;
                    rgba[0] += t * c[0];
                    rgba[1] += t * c[1];
                    rgba[2] += t * c[2];
                    rgba[3] += t;
                }
                *out = rgba;
            }
            row
        })
        .collect();
    for (py, row) in rows.into_iter().enumerate() {
        for (px, p) in row.into_iter().enumerate() {
            *img.get_mut(px, py) = p;
        }
    }
    img
}

/// Serial reference: ray-cast the whole field.
pub fn render_serial(field: &ScalarField, view: &View, tf: &TransferFunction) -> Image {
    render_block(field, &field.bbox(), view, tf)
}

/// Composite per-block partial images in visibility order.
///
/// `partials` pairs each image with the owning block; blocks are sorted
/// along the view axis (front first) and folded with *over*. Blocks in
/// the same slab but different image columns touch disjoint pixels, so
/// only the along-axis order matters.
pub fn composite_ordered(partials: &[(BBox3, Image)], view: &View) -> Image {
    assert!(!partials.is_empty(), "nothing to composite");
    let (r, _, _) = view.axis.dims();
    let mut order: Vec<usize> = (0..partials.len()).collect();
    order.sort_by_key(|&i| {
        let lo = partials[i].0.lo[r] as isize;
        if view.flip {
            -lo
        } else {
            lo
        }
    });
    let mut out = Image::new(view.width, view.height);
    for i in order {
        out.over(&partials[i].1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sitra_mesh::{exchange_ghosts, Decomposition};

    fn wavy(b: BBox3) -> ScalarField {
        ScalarField::from_fn(b, |p| {
            let x = p[0] as f64 * 0.7;
            let y = p[1] as f64 * 0.5;
            let z = p[2] as f64 * 0.9;
            (x.sin() + y.cos() + (z * 0.5).sin() + 3.0) / 6.0
        })
    }

    fn tf() -> TransferFunction {
        TransferFunction::hot(0.0, 1.0)
    }

    #[test]
    fn serial_render_nonempty() {
        let f = wavy(BBox3::from_dims([8, 8, 8]));
        let v = View::full_res(f.bbox(), ViewAxis::Z, false);
        let img = render_serial(&f, &v, &tf());
        let lit = img.pixels().iter().filter(|p| p[3] > 0.0).count();
        assert!(lit > 0, "image is completely transparent");
        for p in img.pixels() {
            assert!(p[3] <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn empty_transfer_yields_transparent_image() {
        let f = wavy(BBox3::from_dims([4, 4, 4]));
        let clear =
            TransferFunction::new(0.0, 1.0, vec![(0.0, [0.0; 4]), (1.0, [1.0, 1.0, 1.0, 0.0])]);
        let v = View::full_res(f.bbox(), ViewAxis::X, false);
        let img = render_serial(&f, &v, &clear);
        assert!(img.pixels().iter().all(|p| p[3] == 0.0));
    }

    #[test]
    fn flip_reverses_visibility() {
        // A field opaque at low z and transparent at high z: the flipped
        // view must differ from the unflipped one.
        let b = BBox3::from_dims([4, 4, 8]);
        let f = ScalarField::from_fn(b, |p| if p[2] < 4 { 1.0 } else { 0.0 });
        let tfn = TransferFunction::new(
            0.0,
            1.0,
            vec![(0.0, [0.0, 0.0, 1.0, 0.1]), (1.0, [1.0, 0.0, 0.0, 0.95])],
        );
        let v0 = View::full_res(b, ViewAxis::Z, false);
        let v1 = View {
            flip: true,
            ..v0.clone()
        };
        let front = render_serial(&f, &v0, &tfn);
        let back = render_serial(&f, &v1, &tfn);
        assert!(front.max_abs_diff(&back) > 0.05);
        // Unflipped: red (high values at low z) dominates.
        let p = front.get(2, 2);
        assert!(p[0] > p[2], "expected red-dominant front view");
    }

    fn check_distributed_equals_serial(axis: ViewAxis, flip: bool, parts: [usize; 3]) {
        let g = BBox3::from_dims([12, 10, 9]);
        let whole = wavy(g);
        let d = Decomposition::new(g, parts);
        let fields: Vec<ScalarField> = (0..d.rank_count())
            .map(|r| whole.extract(&d.block(r)))
            .collect();
        let (ghosted, _) = exchange_ghosts(&d, &fields, 1);
        let view = View {
            step: 0.5,
            ..View::full_res(g, axis, flip)
        };
        let serial = render_serial(&whole, &view, &tf());
        let partials: Vec<(BBox3, Image)> = (0..d.rank_count())
            .map(|r| {
                (
                    d.block(r),
                    render_block(&ghosted[r], &d.block(r), &view, &tf()),
                )
            })
            .collect();
        let composited = composite_ordered(&partials, &view);
        assert!(
            serial.max_abs_diff(&composited) < 1e-9,
            "axis {axis:?} flip {flip}: diff {}",
            serial.max_abs_diff(&composited)
        );
    }

    #[test]
    fn distributed_equals_serial_z() {
        check_distributed_equals_serial(ViewAxis::Z, false, [2, 2, 2]);
    }

    #[test]
    fn distributed_equals_serial_x_flipped() {
        check_distributed_equals_serial(ViewAxis::X, true, [3, 2, 1]);
    }

    #[test]
    fn distributed_equals_serial_y() {
        check_distributed_equals_serial(ViewAxis::Y, false, [2, 1, 3]);
    }

    #[test]
    fn opacity_cutoff_changes_little_on_opaque_scene() {
        let f = wavy(BBox3::from_dims([8, 8, 16]));
        let opaque = TransferFunction::new(
            0.0,
            1.0,
            vec![(0.0, [0.1, 0.1, 0.1, 0.9]), (1.0, [1.0, 1.0, 1.0, 1.0])],
        );
        let v = View::full_res(f.bbox(), ViewAxis::Z, false);
        let vc = View {
            opacity_cutoff: Some(0.999),
            ..v.clone()
        };
        let exact = render_serial(&f, &v, &opaque);
        let cut = render_serial(&f, &vc, &opaque);
        assert!(exact.max_abs_diff(&cut) < 1e-2);
    }

    #[test]
    fn sample_positions_are_flip_symmetric() {
        let v = View::full_res(BBox3::from_dims([4, 4, 8]), ViewAxis::Z, false);
        let vf = View {
            flip: true,
            ..v.clone()
        };
        let n = v.samples_per_ray();
        for k in 0..n {
            let a = v.sample_pos(1, 2, k);
            let b = vf.sample_pos(1, 2, n - 1 - k);
            assert_eq!(a, b);
        }
    }
}
