//! # sitra-viz
//!
//! Volume rendering for the hybrid framework, reproducing the paper's two
//! visualization modes:
//!
//! * **Fully in-situ** ([`render`]): every rank ray-casts its own
//!   full-resolution (ghosted) block into a partial image; the partial
//!   images are alpha-composited in visibility order. With axis-aligned
//!   orthographic views and a globally fixed sample lattice, the
//!   composited result is *identical* to ray-casting the whole domain
//!   serially — which is the invariant the tests enforce.
//! * **Hybrid in-situ/in-transit** ([`hybrid`]): each rank down-samples
//!   its block onto the global coarse lattice in-situ (a tiny fraction of
//!   the block's cost) and ships the reduced block to the staging area;
//!   a single in-transit bucket builds a *lookup table* of block bounds
//!   (the paper's mechanism for avoiding visibility sorting or volume
//!   reconstruction) and ray-casts through it serially.
//!
//! Supporting modules: [`transfer`] (scalar → RGBA transfer functions),
//! [`image`] (float RGBA images, compositing, PPM export, RMSE/PSNR).

pub mod hybrid;
pub mod image;
pub mod render;
pub mod transfer;

pub use hybrid::{BlockTable, HybridRenderer};
pub use image::Image;
pub use render::{composite_ordered, render_block, render_serial, View, ViewAxis};
pub use transfer::TransferFunction;
