//! Property-based tests for the rendering stack: distributed compositing
//! equals serial rendering for arbitrary fields, decompositions, and
//! views; hybrid stride-1 equals full resolution; compositing is
//! associative.

use proptest::prelude::*;
use sitra_mesh::{downsample, exchange_ghosts, BBox3, Decomposition, ScalarField};
use sitra_viz::{
    composite_ordered, render_block, render_serial, HybridRenderer, Image, TransferFunction, View,
    ViewAxis,
};

fn arb_field_decomp() -> impl Strategy<Value = (ScalarField, Decomposition)> {
    (
        3usize..10,
        3usize..9,
        3usize..8,
        1usize..4,
        1usize..3,
        1usize..3,
        0u64..1000,
    )
        .prop_map(|(nx, ny, nz, px, py, pz, seed)| {
            let g = BBox3::from_dims([nx, ny, nz]);
            let f = ScalarField::from_fn(g, |p| {
                let h = (p[0] as u64)
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((p[1] as u64).wrapping_mul(0xC2B2AE3D27D4EB4F))
                    .wrapping_add((p[2] as u64).wrapping_mul(0x165667B19E3779F9))
                    .wrapping_mul(seed * 2 + 1);
                ((h >> 40) % 1000) as f64 / 1000.0
            });
            let d = Decomposition::new(g, [px.min(nx), py.min(ny), pz.min(nz)]);
            (f, d)
        })
}

fn arb_view() -> impl Strategy<Value = (ViewAxis, bool)> {
    (
        prop_oneof![Just(ViewAxis::X), Just(ViewAxis::Y), Just(ViewAxis::Z)],
        any::<bool>(),
    )
}

fn tf() -> TransferFunction {
    TransferFunction::hot(0.0, 1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn distributed_compositing_equals_serial(((f, d), (axis, flip)) in (arb_field_decomp(), arb_view())) {
        let view = View {
            step: 0.5,
            ..View::full_res(f.bbox(), axis, flip)
        };
        let serial = render_serial(&f, &view, &tf());
        let blocks: Vec<ScalarField> =
            (0..d.rank_count()).map(|r| f.extract(&d.block(r))).collect();
        let (ghosted, _) = exchange_ghosts(&d, &blocks, 1);
        let partials: Vec<(BBox3, Image)> = (0..d.rank_count())
            .map(|r| (d.block(r), render_block(&ghosted[r], &d.block(r), &view, &tf())))
            .collect();
        let composited = composite_ordered(&partials, &view);
        prop_assert!(serial.max_abs_diff(&composited) < 1e-9,
            "diff {}", serial.max_abs_diff(&composited));
    }

    #[test]
    fn hybrid_stride1_equals_serial(((f, d), (axis, flip)) in (arb_field_decomp(), arb_view())) {
        let view = View::full_res(f.bbox(), axis, flip);
        let serial = render_serial(&f, &view, &tf());
        let blocks: Vec<_> = (0..d.rank_count())
            .map(|r| downsample(&f.extract(&d.block(r)), 1))
            .collect();
        let hybrid = HybridRenderer::new(blocks).render(&view, &tf());
        prop_assert!(serial.max_abs_diff(&hybrid) < 1e-9);
    }

    #[test]
    fn over_operator_associative(pixels in prop::collection::vec(
        prop::array::uniform4(0.0..1.0f64), 1..8)) {
        // Build premultiplied images from the raw values.
        let n = pixels.len();
        let mk = |c: [f64; 4]| {
            let mut im = Image::new(1, 1);
            // premultiply
            *im.get_mut(0, 0) = [c[0] * c[3], c[1] * c[3], c[2] * c[3], c[3]];
            im
        };
        let imgs: Vec<Image> = pixels.into_iter().map(mk).collect();
        // Left fold vs right fold.
        let mut left = Image::new(1, 1);
        for im in &imgs {
            left.over(im);
        }
        let mut right = Image::new(1, 1);
        for im in imgs.iter().rev() {
            let mut tmp = im.clone();
            tmp.over(&right);
            right = tmp;
        }
        let _ = n;
        prop_assert!(left.max_abs_diff(&right) < 1e-12);
    }

    #[test]
    fn alpha_never_exceeds_one((f, _d) in arb_field_decomp(),
                               axis_flip in arb_view()) {
        let (axis, flip) = axis_flip;
        let view = View::full_res(f.bbox(), axis, flip);
        let img = render_serial(&f, &view, &tf());
        for p in img.pixels() {
            prop_assert!(p[3] <= 1.0 + 1e-9);
            prop_assert!(p[3] >= 0.0);
            for c in 0..3 {
                // Premultiplied channels bounded by alpha.
                prop_assert!(p[c] <= p[3] + 1e-9);
            }
        }
    }

    #[test]
    fn transfer_function_continuous(points in prop::collection::vec(0.0..1.0f64, 2..6),
                                    probe in 0.0..1.0f64) {
        // Any valid control set gives values bounded by the hull of the
        // control colors.
        let mut pos: Vec<f64> = points;
        pos.sort_by(|a, b| a.partial_cmp(b).unwrap());
        pos.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        let mut ctrl: Vec<(f64, [f64; 4])> = vec![(0.0, [0.0; 4])];
        for (i, p) in pos.iter().enumerate() {
            if *p > 0.0 && *p < 1.0 {
                let v = (i % 3) as f64 / 3.0;
                ctrl.push((*p, [v, 1.0 - v, v * 0.5, v]));
            }
        }
        ctrl.push((1.0, [1.0; 4]));
        let tf = TransferFunction::new(0.0, 1.0, ctrl);
        let c = tf.sample(probe);
        for ch in c {
            prop_assert!((0.0..=1.0).contains(&ch));
        }
    }
}
