//! # sitra — hybrid in-situ / in-transit scientific analysis
//!
//! Umbrella crate re-exporting the full workspace API. This is a
//! from-scratch Rust reproduction of *"Combining In-situ and In-transit
//! Processing to Enable Extreme-Scale Scientific Analysis"* (Bennett et
//! al., SC 2012): a framework that splits analysis algorithms into a
//! massively-parallel in-situ stage running alongside the simulation and a
//! small-scale in-transit stage running on staging resources, connected by
//! an asynchronous one-sided transport and a pull-scheduled staging
//! service.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured results of every table and figure.

pub use sitra_cluster as cluster;
pub use sitra_core as core;
pub use sitra_dart as dart;
pub use sitra_dataspaces as dataspaces;
pub use sitra_flowmap as flowmap;
pub use sitra_machine as machine;
pub use sitra_mesh as mesh;
pub use sitra_net as net;
pub use sitra_obs as obs;
pub use sitra_sim as sim;
pub use sitra_stats as stats;
pub use sitra_topology as topology;
pub use sitra_viz as viz;
