//! Offline stand-in for the `rand` crate.
//!
//! A small splitmix64/xoshiro-style PRNG behind a subset of the rand
//! 0.10 API: [`rng`], [`Rng::random_range`], [`SeedableRng`]. Not
//! cryptographically secure — statistics-quality only.

use std::ops::Range;

/// Core RNG trait (API subset).
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `range` (half-open).
    fn random_range(&mut self, range: Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "empty range");
        range.start + self.next_u64() % span
    }

    /// A uniform `f64` in `[0, 1)`.
    fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A random `bool`.
    fn random_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Construction from a fixed seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The default splitmix64 generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        // splitmix64 (Vigna): passes BigCrush for the uses we have.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A fresh generator seeded from the system clock and thread identity.
pub fn rng() -> StdRng {
    use std::hash::{BuildHasher, Hasher, RandomState};
    let mut h = RandomState::new().build_hasher();
    h.write_u64(0);
    StdRng::seed_from_u64(h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.random_range(10..20);
            assert!((10..20).contains(&v));
            let f = r.random_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
