//! Offline stand-in for the `serde` crate.
//!
//! Rather than serde's visitor-based zero-copy architecture, this
//! stand-in routes everything through an owned [`Value`] tree:
//! [`Serialize`] renders a type into a `Value`, [`Deserialize`] rebuilds
//! it from one. The companion `serde_json` stand-in converts `Value` ⇄
//! JSON text. The `#[derive(Serialize, Deserialize)]` macros (from the
//! `serde_derive` stand-in, re-exported here) cover structs with named
//! fields and enums with unit or newtype variants — the shapes this
//! workspace uses — and understand `#[serde(default)]`.

pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing data tree (the JSON data model plus
/// distinct integer kinds so `u64`/`i64` round-trip exactly).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key–value map (field order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced when rebuilding a type from a [`Value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}
impl std::error::Error for DeError {}

impl DeError {
    /// A new error with the given message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

/// Render `self` into a [`Value`] tree.
pub trait Serialize {
    /// The value tree representing `self`.
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse the value tree, erroring on shape/type mismatches.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Extract and deserialize a struct field (derive-macro helper).
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(fv) => T::from_value(fv),
        None => Err(DeError::msg(format!("missing field `{name}`"))),
    }
}

/// Like [`field`] but absent fields fall back to `Default` — the
/// behavior of `#[serde(default)]` (derive-macro helper).
pub fn field_or_default<T: Deserialize + Default>(v: &Value, name: &str) -> Result<T, DeError> {
    match v.get(name) {
        Some(fv) => T::from_value(fv),
        None => Ok(T::default()),
    }
}

// ---- primitive impls ----

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 => Ok(*f as $t),
                    _ => Err(DeError::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self < 0 { Value::I64(*self as i64) } else { Value::U64(*self as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(concat!("integer out of range for ", stringify!($t)))),
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::msg(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(DeError::msg(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(f) => Ok(*f as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    _ => Err(DeError::msg("expected number")),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::msg("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::msg("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| DeError::msg(format!("expected array of length {N}")))
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            {
                                let _ = $idx; // positional
                                $name::from_value(
                                    it.next().ok_or_else(|| DeError::msg("tuple too short"))?,
                                )?
                            },
                        )+))
                    }
                    _ => Err(DeError::msg("expected tuple array")),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-5i64).to_value()), Ok(-5));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u64, [0.5f64; 3]), (2, [1.0; 3])];
        let back: Vec<(u64, [f64; 3])> = Vec::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::U64(7)), Ok(Some(7)));
    }

    #[test]
    fn errors_on_shape_mismatch() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(<[f64; 2]>::from_value(&Value::Array(vec![Value::F64(1.0)])).is_err());
    }
}
