//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` API this workspace uses: a
//! cheaply cloneable, reference-counted, sliceable byte buffer
//! ([`Bytes`]), a growable builder ([`BytesMut`]), and the [`Buf`] /
//! [`BufMut`] cursor traits. Clones and slices share the underlying
//! allocation (no deep copies), matching the zero-copy semantics the
//! DART transport tests assert.

use std::fmt;
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

enum Repr {
    /// Borrowed from static storage; never deallocated.
    Static(&'static [u8]),
    /// Shared heap allocation. `Arc<Vec<u8>>` rather than `Arc<[u8]>`
    /// so `Bytes::from(Vec<u8>)` adopts the allocation instead of
    /// copying it — the conversion the transport's zero-copy receive
    /// path leans on for every frame.
    Shared(Arc<Vec<u8>>),
}

impl Clone for Repr {
    fn clone(&self) -> Self {
        match self {
            Repr::Static(s) => Repr::Static(s),
            Repr::Shared(a) => Repr::Shared(Arc::clone(a)),
        }
    }
}

/// A cheaply cloneable, immutable, sliceable chunk of contiguous memory.
#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes {
            repr: Repr::Static(&[]),
            off: 0,
            len: 0,
        }
    }

    /// A buffer viewing static storage (no allocation).
    pub const fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(s),
            off: 0,
            len: s.len(),
        }
    }

    /// Copy `src` into a new shared buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn storage(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }

    /// The viewed bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.storage()[self.off..self.off + self.len]
    }

    /// Split off and return the first `at` bytes; `self` keeps the rest.
    /// Both halves share the original allocation.
    ///
    /// # Panics
    /// Panics when `at > len`.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(
            at <= self.len,
            "split_to out of bounds: {at} > {}",
            self.len
        );
        let head = Bytes {
            repr: self.repr.clone(),
            off: self.off,
            len: at,
        };
        self.off += at;
        self.len -= at;
        head
    }

    /// A sub-view sharing the same allocation.
    ///
    /// # Panics
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice out of bounds");
        Bytes {
            repr: self.repr.clone(),
            off: self.off + start,
            len: end - start,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
            off: 0,
            len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(s: &'static [u8; N]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes(len={})", self.len)
    }
}

/// A growable byte buffer for building payloads; [`BytesMut::freeze`]
/// converts it into an immutable shared [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable shared buffer.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte buffer. Fixed-width reads are little-endian
/// when suffixed `_le`. All reads panic on underflow, like the real
/// `bytes` crate — callers that face untrusted input must check
/// [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read a `u8`.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }
    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self.chunk()[..4].try_into().unwrap());
        self.advance(4);
        v
    }
    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        let v = i64::from_le_bytes(self.chunk()[..8].try_into().unwrap());
        self.advance(8);
        v
    }
    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len, "advance out of bounds");
        self.off += n;
        self.len -= n;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, n: usize) {
        *self = &self[n..];
    }
}

/// Write cursor appending to a byte buffer. Fixed-width writes are
/// little-endian when suffixed `_le`.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Append a `u8`.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1u8; 64]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn split_to_partitions() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
    }

    #[test]
    fn roundtrip_le() {
        let mut m = BytesMut::with_capacity(32);
        m.put_u8(7);
        m.put_u32_le(0xDEAD);
        m.put_u64_le(u64::MAX - 3);
        m.put_f64_le(-1.5);
        m.put_i64_le(-42);
        let mut b = m.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD);
        assert_eq!(b.get_u64_le(), u64::MAX - 3);
        assert_eq!(b.get_f64_le(), -1.5);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn static_bytes() {
        let b = Bytes::from_static(b"hello");
        assert_eq!(&b[..], b"hello");
        assert_eq!(b.slice(1..3), Bytes::from(vec![b'e', b'l']));
    }
}
