//! Offline stand-in for the `serde_json` crate.
//!
//! Converts the serde stand-in's [`Value`] tree to and from JSON text.
//! Integers round-trip exactly (`u64`/`i64` are printed as integers and
//! re-parsed as such); floats use Rust's shortest round-trippable
//! formatting.

use serde::{Deserialize, Serialize, Value};

/// JSON serialization/parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}
impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                // JSON has no NaN/Inf; match serde_json's lossy `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            ))),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf8 in number".into()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pair handling for non-BMP chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // past the first escape's last hex digit
                                self.expect(b'\\')?;
                                // parse_hex4 expects `pos` on the `u`, so peek
                                // rather than consume it.
                                if self.peek() != Some(b'u') {
                                    return Err(Error("lone high surrogate".into()));
                                }
                                let low = self.parse_hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| Error("invalid \\u escape".into()))?);
                        }
                        other => {
                            return Err(Error(format!("invalid escape {:?}", other)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf8 in string".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse 4 hex digits following `\u`; leaves `pos` on the last digit.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let text = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        let cp = u32::from_str_radix(text, 16).map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("-1.25e2").unwrap(), -125.0);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>(" false ").unwrap());
        let big = u64::MAX - 1;
        assert_eq!(from_str::<u64>(&to_string(&big).unwrap()).unwrap(), big);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\tẞ".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(
            from_str::<String>("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            "é😀"
        );
    }

    #[test]
    fn nested_containers() {
        let v: Vec<(u64, Vec<f64>)> = vec![(1, vec![0.5, 1.5]), (2, vec![])];
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Vec<(u64, Vec<f64>)>>(&json).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }
}
