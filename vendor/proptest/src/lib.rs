//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! range/tuple/`Just`/`prop_oneof!`/collection/array strategies,
//! `.prop_map`/`.prop_flat_map`, the `proptest!` test macro with
//! `#![proptest_config(ProptestConfig::with_cases(n))]`, and
//! `prop_assert!`/`prop_assert_eq!`. Case generation is deterministic
//! (seeded per test name and case index) and there is **no shrinking**:
//! a failure reports the case number so it can be re-run under a
//! debugger by construction.

use std::ops::{Range, RangeInclusive};

// ---- RNG ----

/// Deterministic splitmix64 generator driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the given seed.
    pub fn seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

// ---- errors & config ----

/// A failed property case (produced by `prop_assert!` and friends).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Runner configuration. Only `cases` is modelled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drive one property: `cases` deterministic iterations, panicking on
/// the first failure with the case index (called by `proptest!`).
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut property: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Seed from the test name so sibling properties see distinct streams.
    let mut base = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        base ^= b as u64;
        base = base.wrapping_mul(0x100_0000_01b3);
    }
    for case in 0..config.cases {
        let mut rng = TestRng::seed(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if let Err(e) = property(&mut rng) {
            panic!(
                "proptest `{name}` failed at case {case}/{}: {e}",
                config.cases
            );
        }
    }
}

// ---- strategy core ----

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy (`prop_oneof!` arms).
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        (**self).gen(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen(&self, rng: &mut TestRng) -> S::Value {
        (**self).gen(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn gen(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.gen(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn gen(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.gen(rng)).gen(rng)
    }
}

/// Always generates a clone of the wrapped value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given non-empty set of alternatives.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].gen(rng)
    }
}

// ---- `any` ----

/// Values generatable without parameters (`any::<T>()`).
pub trait ArbitraryValue {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The full-range strategy for `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn gen(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---- range strategies ----

macro_rules! impl_range_strategy_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u128 - self.start as u128;
                self.start + ((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                // +1 cannot overflow in u128 even for the full u64 range.
                let span = hi as u128 - lo as u128 + 1;
                lo + ((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_range_strategy_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as i128 - self.start as i128;
                (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = hi - lo + 1;
                (lo + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

// ---- tuple strategies ----

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.gen(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A:0)
    (A:0, B:1)
    (A:0, B:1, C:2)
    (A:0, B:1, C:2, D:3)
    (A:0, B:1, C:2, D:3, E:4)
    (A:0, B:1, C:2, D:3, E:4, F:5)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7, I:8)
    (A:0, B:1, C:2, D:3, E:4, F:5, G:6, H:7, I:8, J:9)
}

// ---- `prop::` namespace ----

/// Container and array strategy constructors (`prop::collection`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Admissible collection sizes (inclusive bounds). Built from
        /// the range forms proptest accepts, pinning inference to
        /// `usize` the way proptest's own `SizeRange` does.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }
        impl From<::std::ops::Range<usize>> for SizeRange {
            fn from(r: ::std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }
        impl From<::std::ops::RangeInclusive<usize>> for SizeRange {
            fn from(r: ::std::ops::RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty size range");
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// `Vec` of `elem` values with a length drawn from `size`.
        pub fn vec<E: Strategy>(elem: E, size: impl Into<SizeRange>) -> VecStrategy<E> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        /// See [`vec()`].
        pub struct VecStrategy<E> {
            elem: E,
            size: SizeRange,
        }

        impl<E: Strategy> Strategy for VecStrategy<E> {
            type Value = Vec<E::Value>;
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                let span = self.size.hi - self.size.lo + 1;
                let n = self.size.lo + (rng.next_u64() % span as u64) as usize;
                (0..n).map(|_| self.elem.gen(rng)).collect()
            }
        }
    }

    /// Fixed-size array strategies.
    pub mod array {
        use super::super::{Strategy, TestRng};

        /// `[T; N]` with each element drawn from `elem`.
        pub struct UniformArray<E, const N: usize> {
            elem: E,
        }

        impl<E: Strategy, const N: usize> Strategy for UniformArray<E, N> {
            type Value = [E::Value; N];
            fn gen(&self, rng: &mut TestRng) -> Self::Value {
                std::array::from_fn(|_| self.elem.gen(rng))
            }
        }

        /// `[T; 3]` of `elem` values.
        pub fn uniform3<E: Strategy>(elem: E) -> UniformArray<E, 3> {
            UniformArray { elem }
        }

        /// `[T; 4]` of `elem` values.
        pub fn uniform4<E: Strategy>(elem: E) -> UniformArray<E, 4> {
            UniformArray { elem }
        }
    }
}

// ---- macros ----

/// Uniform choice between strategy expressions of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Fail the current property case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+), l, r
        );
    }};
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_proptest(&config, stringify!($name), |prop_rng| {
                    $(let $pat = $crate::Strategy::gen(&($strat), prop_rng);)+
                    #[allow(unused_mut)]
                    let mut case =
                        || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        };
                    case()
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// The glob-importable API surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small_vec() -> impl Strategy<Value = Vec<u64>> {
        prop::collection::vec(0u64..100, 0..10)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in 1u64..=u64::MAX, z in -5i64..5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y >= 1);
            prop_assert!((-5..5).contains(&z));
        }

        #[test]
        fn composite_strategies(v in small_vec(),
                                arr in prop::array::uniform3(0.0..1.0f64),
                                (a, b) in (0usize..4, any::<bool>()),
                                pick in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(v.len() < 10);
            prop_assert!(arr.iter().all(|f| (0.0..1.0).contains(f)));
            prop_assert!(a < 4);
            let _ = b;
            prop_assert!(pick == 1 || pick == 2);
            if v.is_empty() {
                return Ok(());
            }
            let mut seen = 0usize;
            for _ in v.iter() {
                seen += 1;
            }
            prop_assert_eq!(v.len(), seen);
        }

        #[test]
        fn flat_map_dependent(pair in (2usize..6).prop_flat_map(|n| (Just(n), 0..n))) {
            prop_assert!(pair.1 < pair.0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut r1 = super::TestRng::seed(42);
        let mut r2 = super::TestRng::seed(42);
        for _ in 0..100 {
            assert_eq!(r1.next_u64(), r2.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        let config = ProptestConfig::with_cases(8);
        super::run_proptest(&config, "always_fails", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
