//! Offline stand-in for the `rayon` crate.
//!
//! Implements the API subset this workspace uses — `into_par_iter()`,
//! `par_chunks()`, `map`, `collect`, `reduce` — with real parallelism:
//! items are split into contiguous chunks, one per available core, and
//! executed on scoped threads. Output order matches input order, so
//! `collect` is deterministic regardless of scheduling.

use std::num::NonZeroUsize;

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}

/// How many worker threads a parallel call may use.
fn threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Run `f` over `items`, in parallel, preserving order.
fn par_map_vec<T: Send, R: Send>(items: Vec<T>, f: &(impl Fn(T) -> R + Sync)) -> Vec<R> {
    let n = items.len();
    let workers = threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Split into `workers` contiguous chunks of near-equal size.
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(workers);
    let base = n / workers;
    let extra = n % workers;
    let mut it = items.into_iter();
    for w in 0..workers {
        let take = base + usize::from(w < extra);
        chunks.push(it.by_ref().take(take).collect());
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// An eagerly materialized parallel iterator.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Apply `f` to every item in parallel.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A pending parallel map; consumed by [`ParMap::collect`] or
/// [`ParMap::reduce`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParMap<T, F> {
    /// Execute and collect results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        par_map_vec(self.items, &self.f).into_iter().collect()
    }

    /// Execute, then fold the results with `op` starting from
    /// `identity()` (rayon's reduce signature).
    pub fn reduce(self, identity: impl Fn() -> R, op: impl Fn(R, R) -> R) -> R {
        par_map_vec(self.items, &self.f)
            .into_iter()
            .fold(identity(), op)
    }
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Materialize the items for parallel execution.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<I: IntoIterator> IntoParallelIterator for I
where
    I::Item: Send,
{
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I::Item> {
        ParIter {
            items: self.into_iter().collect(),
        }
    }
}

/// Parallel chunked iteration over slices.
pub trait ParallelSlice<T: Sync> {
    /// Like `slice::chunks`, as a parallel iterator.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let out: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(out, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_chunks_reduce() {
        let data: Vec<u64> = (1..=10_000).collect();
        let sum = data
            .par_chunks(128)
            .map(|c| c.iter().sum::<u64>())
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(sum, 10_000 * 10_001 / 2);
    }

    #[test]
    fn empty_input() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
