//! Offline stand-in for the `parking_lot` crate.
//!
//! Thin wrappers over `std::sync` primitives exposing the `parking_lot`
//! API subset this workspace uses. Like `parking_lot` (and unlike raw
//! `std::sync`), locks do not poison: a panic while holding a guard
//! leaves the lock usable for other threads.

use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual exclusion primitive (no poisoning).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard of a locked [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// A new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock (no poisoning).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard of an [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard of an [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// A new unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing the guard while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| self.0.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Block until notified or `timeout` elapses. Returns true when the
    /// wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, res) = self
                .0
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = res.timed_out();
            g
        });
        timed_out
    }

    /// Wake one parked waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all parked waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Run `f` on the owned guard, replacing it in place. `std`'s condvar
/// consumes and returns guards; `parking_lot`'s takes `&mut`.
fn take_guard<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // SAFETY: `slot` is a valid guard; we read it out, transform it, and
    // write a guard of the same mutex back before returning. `f` never
    // unwinds past this frame without a guard because `std`'s wait only
    // errors on poisoning, which `unwrap_or_else(into_inner)` absorbs.
    unsafe {
        let g = std::ptr::read(slot);
        let g = f(g);
        std::ptr::write(slot, g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn no_poisoning() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wait_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_timeout() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(10)));
    }
}
