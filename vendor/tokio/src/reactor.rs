//! The I/O reactor: one thread multiplexing every registered fd
//! through epoll, plus the timer wheel driving [`crate::time::sleep`].
//!
//! Readiness is level-triggered with `EPOLLONESHOT` re-arming: a
//! future that needs the fd arms exactly the interest it waits for,
//! the kernel reports it once, and the next wait re-arms. This trades
//! one `epoll_ctl` per wait cycle for immunity to the classic
//! edge-trigger lost-readiness race between a `WouldBlock` result and
//! the readiness-clear that follows it.

use crate::sys;
use std::collections::{BTreeMap, HashMap};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Waker};
use std::time::Instant;

/// Readiness bit: the fd may be readable (or has hung up / errored).
pub(crate) const READ: u8 = 1;
/// Readiness bit: the fd may be writable (or has errored).
pub(crate) const WRITE: u8 = 2;

struct SourceState {
    /// Cached readiness; optimistically all-set at registration so the
    /// first I/O attempt runs and discovers the truth.
    readiness: u8,
    read_wakers: Vec<Waker>,
    write_wakers: Vec<Waker>,
}

/// One registered fd.
pub(crate) struct Source {
    token: u64,
    fd: i32,
    epfd: i32,
    state: Mutex<SourceState>,
}

impl Source {
    fn interest_mask(state: &SourceState) -> u32 {
        let mut events = 0;
        if !state.read_wakers.is_empty() {
            events |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if !state.write_wakers.is_empty() {
            events |= sys::EPOLLOUT;
        }
        events
    }

    fn rearm(&self, state: &SourceState) {
        let events = Self::interest_mask(state);
        if events != 0 {
            // Failure here means the fd is gone; the waiter will learn
            // that from its next I/O attempt.
            let _ = sys::epoll_ctl(
                self.epfd,
                sys::EPOLL_CTL_MOD,
                self.fd,
                events | sys::EPOLLONESHOT,
                self.token,
            );
        }
    }

    /// Wait for `mask` readiness. Ready immediately when the cached
    /// readiness says so; otherwise parks the waker and arms epoll.
    pub(crate) fn poll_ready(&self, mask: u8, cx: &mut Context<'_>) -> Poll<()> {
        let mut state = self.state.lock().unwrap();
        if state.readiness & mask != 0 {
            return Poll::Ready(());
        }
        let wakers = if mask == READ {
            &mut state.read_wakers
        } else {
            &mut state.write_wakers
        };
        if !wakers.iter().any(|w| w.will_wake(cx.waker())) {
            wakers.push(cx.waker().clone());
        }
        self.rearm(&state);
        Poll::Pending
    }

    /// Clear cached readiness after a `WouldBlock` so the next wait
    /// actually parks.
    pub(crate) fn clear_ready(&self, mask: u8) {
        self.state.lock().unwrap().readiness &= !mask;
    }

    /// Reactor-side: fold an epoll report into readiness and wake.
    fn dispatch(&self, events: u32) {
        let mut woken = Vec::new();
        {
            let mut state = self.state.lock().unwrap();
            let err = events & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
            if err || events & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 {
                state.readiness |= READ;
                woken.append(&mut state.read_wakers);
            }
            if err || events & sys::EPOLLOUT != 0 {
                state.readiness |= WRITE;
                woken.append(&mut state.write_wakers);
            }
            // Waiters for the direction this event did not report are
            // still parked; leave them armed.
            self.rearm(&state);
        }
        for w in woken {
            w.wake();
        }
    }
}

/// RAII registration: deregisters (and wakes nothing — the owning I/O
/// object is being dropped, so no waiter can outlive it) on drop.
pub(crate) struct Registration {
    pub(crate) source: Arc<Source>,
    reactor: Arc<Reactor>,
}

impl Drop for Registration {
    fn drop(&mut self) {
        let _ = sys::epoll_ctl(self.reactor.epfd, sys::EPOLL_CTL_DEL, self.source.fd, 0, 0);
        self.reactor
            .sources
            .lock()
            .unwrap()
            .remove(&self.source.token);
    }
}

struct Timers {
    entries: BTreeMap<(Instant, u64), Waker>,
    next_id: u64,
}

/// The reactor: owns the epoll instance, the source table, and the
/// timer queue; `run` is its thread body.
pub(crate) struct Reactor {
    epfd: i32,
    wake_fd: i32,
    sources: Mutex<HashMap<u64, Arc<Source>>>,
    next_token: AtomicU64,
    timers: Mutex<Timers>,
    shutdown: AtomicBool,
}

/// Token 0 is reserved for the wake eventfd.
const WAKE_TOKEN: u64 = 0;

impl Reactor {
    pub(crate) fn new() -> io::Result<Arc<Reactor>> {
        let epfd = sys::epoll_create1()?;
        let wake_fd = sys::eventfd()?;
        sys::epoll_ctl(epfd, sys::EPOLL_CTL_ADD, wake_fd, sys::EPOLLIN, WAKE_TOKEN)?;
        Ok(Arc::new(Reactor {
            epfd,
            wake_fd,
            sources: Mutex::new(HashMap::new()),
            next_token: AtomicU64::new(1),
            timers: Mutex::new(Timers {
                entries: BTreeMap::new(),
                next_id: 0,
            }),
            shutdown: AtomicBool::new(false),
        }))
    }

    /// Register `fd`, initially disarmed with all-ready cached state.
    pub(crate) fn register(self: &Arc<Self>, fd: i32) -> io::Result<Registration> {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let source = Arc::new(Source {
            token,
            fd,
            epfd: self.epfd,
            state: Mutex::new(SourceState {
                readiness: READ | WRITE,
                read_wakers: Vec::new(),
                write_wakers: Vec::new(),
            }),
        });
        sys::epoll_ctl(self.epfd, sys::EPOLL_CTL_ADD, fd, sys::EPOLLONESHOT, token)?;
        self.sources
            .lock()
            .unwrap()
            .insert(token, Arc::clone(&source));
        Ok(Registration {
            source,
            reactor: Arc::clone(self),
        })
    }

    /// Arm a timer; the waker fires at (or shortly after) `deadline`.
    pub(crate) fn add_timer(&self, deadline: Instant, waker: Waker) {
        {
            let mut timers = self.timers.lock().unwrap();
            let id = timers.next_id;
            timers.next_id += 1;
            timers.entries.insert((deadline, id), waker);
        }
        self.notify();
    }

    /// Interrupt a blocking `epoll_wait` (new earlier timer, shutdown).
    pub(crate) fn notify(&self) {
        use std::io::Write;
        use std::os::fd::FromRawFd;
        let mut f =
            std::mem::ManuallyDrop::new(unsafe { std::fs::File::from_raw_fd(self.wake_fd) });
        let _ = f.write_all(&1u64.to_ne_bytes());
    }

    pub(crate) fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.notify();
    }

    fn drain_wake_fd(&self) {
        use std::io::Read;
        use std::os::fd::FromRawFd;
        let mut f =
            std::mem::ManuallyDrop::new(unsafe { std::fs::File::from_raw_fd(self.wake_fd) });
        let mut buf = [0u8; 8];
        let _ = f.read(&mut buf);
    }

    /// Fire due timers; return the epoll timeout until the next one.
    fn process_timers(&self) -> i32 {
        let now = Instant::now();
        let (due, timeout_ms) = {
            let mut timers = self.timers.lock().unwrap();
            let mut due = Vec::new();
            while let Some(entry) = timers.entries.first_entry() {
                if entry.key().0 <= now {
                    due.push(entry.remove());
                } else {
                    break;
                }
            }
            let timeout_ms = match timers.entries.keys().next() {
                Some(&(deadline, _)) => {
                    let nanos = deadline.saturating_duration_since(now).as_nanos();
                    // Round up so we never spin on a sub-ms remainder.
                    (nanos.div_ceil(1_000_000)).min(i32::MAX as u128) as i32
                }
                None => -1,
            };
            (due, timeout_ms)
        };
        for w in due {
            w.wake();
        }
        timeout_ms
    }

    /// The reactor thread body: timers, epoll, dispatch, repeat.
    pub(crate) fn run(self: Arc<Self>) {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 64];
        while !self.shutdown.load(Ordering::SeqCst) {
            let timeout_ms = self.process_timers();
            let n = match sys::epoll_wait(self.epfd, &mut events, timeout_ms) {
                Ok(n) => n,
                Err(_) => break,
            };
            for ev in &events[..n] {
                let (bits, token) = (ev.events, ev.data);
                if token == WAKE_TOKEN {
                    self.drain_wake_fd();
                    continue;
                }
                let source = self.sources.lock().unwrap().get(&token).cloned();
                if let Some(source) = source {
                    source.dispatch(bits);
                }
            }
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        sys::close(self.wake_fd);
        sys::close(self.epfd);
    }
}

/// A future waiting for one readiness direction on a source.
pub(crate) struct Ready<'a> {
    pub(crate) source: &'a Source,
    pub(crate) mask: u8,
}

impl std::future::Future for Ready<'_> {
    type Output = ();
    fn poll(self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        self.source.poll_ready(self.mask, cx)
    }
}

pub(crate) fn timer_handle() -> Arc<Reactor> {
    crate::runtime::Handle::current().reactor()
}
