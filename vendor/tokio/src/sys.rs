//! Raw Linux syscalls the reactor needs and `std` does not expose:
//! the epoll family and eventfd. Issued directly via inline `asm!` so
//! the crate stays dependency-free (no `libc`).
//!
//! Only Linux on x86_64/aarch64 is supported — the same platforms the
//! workspace CI builds — and every wrapper converts the kernel's
//! negative-errno convention into `io::Result`.

#![allow(clippy::missing_safety_doc)]

use std::io;

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod nr {
    pub const EPOLL_WAIT: i64 = 232;
    pub const EPOLL_CTL: i64 = 233;
    pub const EVENTFD2: i64 = 290;
    pub const EPOLL_CREATE1: i64 = 291;
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
mod nr {
    pub const EPOLL_CTL: i64 = 21;
    pub const EPOLL_PWAIT: i64 = 22;
    pub const EVENTFD2: i64 = 19;
    pub const EPOLL_CREATE1: i64 = 20;
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
pub unsafe fn syscall6(nr: i64, a: i64, b: i64, c: i64, d: i64, e: i64, f: i64) -> i64 {
    let ret: i64;
    std::arch::asm!(
        "syscall",
        inlateout("rax") nr => ret,
        in("rdi") a,
        in("rsi") b,
        in("rdx") c,
        in("r10") d,
        in("r8") e,
        in("r9") f,
        lateout("rcx") _,
        lateout("r11") _,
        options(nostack),
    );
    ret
}

#[cfg(all(target_os = "linux", target_arch = "aarch64"))]
pub unsafe fn syscall6(nr: i64, a: i64, b: i64, c: i64, d: i64, e: i64, f: i64) -> i64 {
    let ret: i64;
    std::arch::asm!(
        "svc 0",
        inlateout("x0") a => ret,
        in("x1") b,
        in("x2") c,
        in("x3") d,
        in("x4") e,
        in("x5") f,
        in("x8") nr,
        options(nostack),
    );
    ret
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
compile_error!("the vendored tokio reactor supports only Linux on x86_64/aarch64");

fn check(ret: i64) -> io::Result<i64> {
    if ret < 0 {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret)
    }
}

/// One `epoll_event`. The x86_64 kernel ABI packs the struct to 4-byte
/// alignment; every other architecture uses natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLONESHOT: u32 = 1 << 30;

pub const EPOLL_CTL_ADD: i64 = 1;
pub const EPOLL_CTL_DEL: i64 = 2;
pub const EPOLL_CTL_MOD: i64 = 3;

const EPOLL_CLOEXEC: i64 = 0x80000;
const EFD_CLOEXEC: i64 = 0x80000;
const EFD_NONBLOCK: i64 = 0x800;

pub fn epoll_create1() -> io::Result<i32> {
    let ret = unsafe { syscall6(nr::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) };
    check(ret).map(|fd| fd as i32)
}

pub fn epoll_ctl(epfd: i32, op: i64, fd: i32, events: u32, data: u64) -> io::Result<()> {
    let mut ev = EpollEvent { events, data };
    let evp = if op == EPOLL_CTL_DEL {
        std::ptr::null_mut()
    } else {
        &mut ev as *mut EpollEvent
    };
    let ret = unsafe { syscall6(nr::EPOLL_CTL, epfd as i64, op, fd as i64, evp as i64, 0, 0) };
    check(ret).map(|_| ())
}

/// Wait for events; `timeout_ms < 0` blocks indefinitely. Returns the
/// number of events written into `events`. `EINTR` surfaces as `Ok(0)`
/// so callers simply re-enter their loop.
pub fn epoll_wait(epfd: i32, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    let ret = unsafe {
        #[cfg(target_arch = "x86_64")]
        {
            syscall6(
                nr::EPOLL_WAIT,
                epfd as i64,
                events.as_mut_ptr() as i64,
                events.len() as i64,
                timeout_ms as i64,
                0,
                0,
            )
        }
        #[cfg(target_arch = "aarch64")]
        {
            // aarch64 has no plain epoll_wait; epoll_pwait with a null
            // sigmask is identical.
            syscall6(
                nr::EPOLL_PWAIT,
                epfd as i64,
                events.as_mut_ptr() as i64,
                events.len() as i64,
                timeout_ms as i64,
                0,
                0,
            )
        }
    };
    if ret == -4 {
        // EINTR
        return Ok(0);
    }
    check(ret).map(|n| n as usize)
}

pub fn eventfd() -> io::Result<i32> {
    let ret = unsafe { syscall6(nr::EVENTFD2, 0, EFD_CLOEXEC | EFD_NONBLOCK, 0, 0, 0, 0) };
    check(ret).map(|fd| fd as i32)
}

pub fn close(fd: i32) {
    // Re-wrap in an owned fd purely to reuse std's close path.
    use std::os::fd::FromRawFd;
    unsafe { drop(std::os::fd::OwnedFd::from_raw_fd(fd)) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_and_eventfd_roundtrip() {
        let ep = epoll_create1().unwrap();
        let ev = eventfd().unwrap();
        epoll_ctl(ep, EPOLL_CTL_ADD, ev, EPOLLIN, 7).unwrap();

        // Nothing pending: a zero-timeout wait returns no events.
        let mut events = [EpollEvent { events: 0, data: 0 }; 4];
        assert_eq!(epoll_wait(ep, &mut events, 0).unwrap(), 0);

        // Signal the eventfd; the wait must report it with our token.
        use std::io::Write;
        use std::os::fd::FromRawFd;
        let mut f = unsafe { std::fs::File::from_raw_fd(ev) };
        f.write_all(&1u64.to_ne_bytes()).unwrap();
        let n = epoll_wait(ep, &mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let (got_events, got_data) = (events[0].events, events[0].data);
        assert_ne!(got_events & EPOLLIN, 0);
        assert_eq!(got_data, 7);
        drop(f); // closes ev
        close(ep);
    }
}
