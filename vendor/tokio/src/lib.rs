//! Offline stand-in for the `tokio` crate.
//!
//! A real — if deliberately small — async runtime implementing the API
//! subset this workspace uses, with no external dependencies:
//!
//! * **Reactor:** one thread multiplexing every registered fd through
//!   `epoll` (raw syscalls; `std` exposes none of this), with
//!   level-triggered `EPOLLONESHOT` readiness and a timer queue.
//! * **Executor:** a multi-thread run queue of spawned tasks
//!   ([`runtime::Builder`], [`spawn`], [`runtime::Handle`]).
//! * **Net:** readiness-based [`net::TcpStream`] (`readable().await` +
//!   `try_read`, vectored writes).
//! * **Sync:** hybrid sync/async [`sync::mpsc`] channels usable from
//!   both task and thread context.
//! * **Time:** [`time::sleep`] / [`time::timeout`] off the reactor's
//!   timer queue.

mod reactor;
mod sys;

pub mod net;
pub mod runtime;
pub mod sync;
pub mod time;

pub use runtime::{spawn, spawn_blocking};

/// Task types ([`task::JoinHandle`], [`task::JoinError`]).
pub mod task {
    pub use crate::runtime::{spawn_blocking, JoinError, JoinHandle};
}

#[cfg(test)]
mod tests {
    use crate::runtime::Builder;
    use std::io::{Read, Write};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    fn rt() -> crate::runtime::Runtime {
        Builder::new_multi_thread()
            .worker_threads(2)
            .thread_name("tokio-test")
            .build()
            .unwrap()
    }

    #[test]
    fn block_on_plain_value() {
        let rt = rt();
        assert_eq!(rt.block_on(async { 40 + 2 }), 42);
    }

    #[test]
    fn spawn_and_join_many() {
        let rt = rt();
        let hits = Arc::new(AtomicUsize::new(0));
        rt.block_on(async {
            let handles: Vec<_> = (0..64)
                .map(|i| {
                    let hits = Arc::clone(&hits);
                    crate::spawn(async move {
                        hits.fetch_add(1, Ordering::Relaxed);
                        i * 2
                    })
                })
                .collect();
            let mut sum = 0usize;
            for h in handles {
                sum += h.await.unwrap();
            }
            assert_eq!(sum, (0..64).map(|i| i * 2).sum());
        });
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn task_panic_surfaces_as_join_error() {
        let rt = rt();
        rt.block_on(async {
            let h = crate::spawn(async { panic!("boom") });
            assert!(h.await.is_err());
            // The runtime survives the panic.
            let h2 = crate::spawn(async { 7 });
            assert_eq!(h2.await.unwrap(), 7);
        });
    }

    #[test]
    fn sleep_and_timeout() {
        let rt = rt();
        rt.block_on(async {
            let t0 = Instant::now();
            crate::time::sleep(Duration::from_millis(30)).await;
            assert!(t0.elapsed() >= Duration::from_millis(25));

            // A timeout that fires...
            let err = crate::time::timeout(
                Duration::from_millis(20),
                crate::time::sleep(Duration::from_secs(10)),
            )
            .await;
            assert!(err.is_err());
            // ...and one that does not.
            let ok = crate::time::timeout(Duration::from_millis(500), async { 5 }).await;
            assert_eq!(ok.unwrap(), 5);
        });
    }

    #[test]
    fn mpsc_bridges_async_and_blocking() {
        let rt = rt();
        let (tx, mut rx) = crate::sync::mpsc::channel::<u32>(4);
        // Async producer on the runtime, blocking consumer on this
        // thread — the shape the connection facade uses.
        let producer = rt.spawn(async move {
            for i in 0..100u32 {
                tx.send(i).await.unwrap();
            }
        });
        for i in 0..100u32 {
            assert_eq!(rx.blocking_recv(), Some(i));
        }
        assert_eq!(rx.blocking_recv(), None); // sender dropped
        rt.block_on(producer).unwrap();
    }

    #[test]
    fn mpsc_blocking_recv_timeout() {
        use crate::sync::mpsc::error::RecvTimeoutError;
        let (tx, mut rx) = crate::sync::mpsc::channel::<u8>(1);
        assert_eq!(
            rx.blocking_recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.try_send(9).unwrap();
        assert_eq!(rx.blocking_recv_timeout(Duration::from_millis(10)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.blocking_recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn mpsc_bounded_applies_backpressure() {
        let rt = rt();
        let (tx, mut rx) = crate::sync::mpsc::channel::<u32>(2);
        let sender = rt.spawn(async move {
            for i in 0..50u32 {
                tx.send(i).await.unwrap();
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        // Only cap items could be queued while we slept.
        let mut got = Vec::new();
        while let Some(v) = rx.blocking_recv() {
            got.push(v);
        }
        assert_eq!(got, (0..50).collect::<Vec<_>>());
        rt.block_on(sender).unwrap();
    }

    #[test]
    fn tcp_echo_roundtrip_async() {
        let rt = rt();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Plain blocking echo peer.
        let peer = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let mut buf = [0u8; 5];
            s.read_exact(&mut buf).unwrap();
            s.write_all(&buf).unwrap();
        });
        rt.block_on(async move {
            let stream = crate::net::TcpStream::connect(addr).await.unwrap();
            loop {
                stream.writable().await.unwrap();
                match stream.try_write(b"hello") {
                    Ok(5) => break,
                    Ok(_) => panic!("short write of 5 bytes"),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
                    Err(e) => panic!("{e}"),
                }
            }
            let mut got = Vec::new();
            while got.len() < 5 {
                stream.readable().await.unwrap();
                let mut buf = [0u8; 16];
                match stream.try_read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => got.extend_from_slice(&buf[..n]),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => continue,
                    Err(e) => panic!("{e}"),
                }
            }
            assert_eq!(&got, b"hello");
        });
        peer.join().unwrap();
    }

    #[test]
    fn many_concurrent_sleeping_tasks() {
        let rt = rt();
        let done = Arc::new(AtomicUsize::new(0));
        rt.block_on(async {
            let handles: Vec<_> = (0..500)
                .map(|i| {
                    let done = Arc::clone(&done);
                    crate::spawn(async move {
                        crate::time::sleep(Duration::from_millis(5 + (i % 7) as u64)).await;
                        done.fetch_add(1, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.await.unwrap();
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn runtime_drop_is_clean() {
        let rt = rt();
        let _forever = rt.spawn(async {
            loop {
                crate::time::sleep(Duration::from_millis(50)).await;
            }
        });
        drop(rt); // must join workers + reactor without hanging
    }
}
