//! Timers: [`sleep`] / [`sleep_until`] futures driven by the reactor's
//! timer queue, and [`timeout`] layering a deadline over any future.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::{Duration, Instant};

/// Future that completes at its deadline.
pub struct Sleep {
    deadline: Instant,
}

impl Sleep {
    /// The instant this sleep completes.
    pub fn deadline(&self) -> Instant {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            return Poll::Ready(());
        }
        // Re-registering on every poll can leave stale entries in the
        // timer queue; they fire as spurious wakes and are re-checked
        // here, which is harmless.
        crate::reactor::timer_handle().add_timer(self.deadline, cx.waker().clone());
        Poll::Pending
    }
}

/// Sleep for `duration`.
pub fn sleep(duration: Duration) -> Sleep {
    Sleep {
        deadline: Instant::now() + duration,
    }
}

/// Sleep until `deadline`.
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep { deadline }
}

/// The future given to [`timeout`] did not complete in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed(());

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline has elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Future returned by [`timeout`].
pub struct Timeout<F> {
    future: F,
    sleep: Sleep,
}

impl<F: Future> Future for Timeout<F> {
    type Output = Result<F::Output, Elapsed>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        // Safety: structural pinning of both fields; neither moves.
        let this = unsafe { self.get_unchecked_mut() };
        let future = unsafe { Pin::new_unchecked(&mut this.future) };
        if let Poll::Ready(out) = future.poll(cx) {
            return Poll::Ready(Ok(out));
        }
        match Pin::new(&mut this.sleep).poll(cx) {
            Poll::Ready(()) => Poll::Ready(Err(Elapsed(()))),
            Poll::Pending => Poll::Pending,
        }
    }
}

impl<F> Unpin for Timeout<F> where F: Unpin {}

/// Require `future` to complete within `duration`.
pub fn timeout<F: Future>(duration: Duration, future: F) -> Timeout<F> {
    Timeout {
        future,
        sleep: sleep(duration),
    }
}
