//! Channels. The mpsc here is *hybrid*: the same channel endpoints
//! work from async context (`send().await` / `recv().await`) and from
//! plain threads (`blocking_send` / `blocking_recv`), which is exactly
//! the seam a blocking facade over an async transport needs.

pub mod mpsc {
    use std::collections::VecDeque;
    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Arc, Condvar, Mutex};
    use std::task::{Context, Poll, Waker};
    use std::time::{Duration, Instant};

    pub mod error {
        /// The receiver was dropped; the value comes back.
        #[derive(Debug, PartialEq, Eq)]
        pub struct SendError<T>(pub T);

        impl<T> std::fmt::Display for SendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "channel closed")
            }
        }

        /// Why a `try_send` failed.
        #[derive(Debug, PartialEq, Eq)]
        pub enum TrySendError<T> {
            /// The bounded channel is at capacity.
            Full(T),
            /// The receiver was dropped.
            Closed(T),
        }

        /// Why a `try_recv` failed.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub enum TryRecvError {
            /// No message is currently queued.
            Empty,
            /// Every sender was dropped and the queue is drained.
            Disconnected,
        }

        /// Why a `blocking_recv_timeout` failed.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub enum RecvTimeoutError {
            /// The timeout elapsed with no message.
            Timeout,
            /// Every sender was dropped and the queue is drained.
            Disconnected,
        }
    }

    use error::{RecvTimeoutError, SendError, TryRecvError, TrySendError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        rx_alive: bool,
        rx_wakers: Vec<Waker>,
        tx_wakers: Vec<Waker>,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        /// Blocking receivers wait here; notified on push / close.
        rx_condvar: Condvar,
        /// Blocking senders wait here; notified on pop / close.
        tx_condvar: Condvar,
    }

    impl<T> Chan<T> {
        fn wake_rx(&self, state: &mut State<T>) {
            if let Some(w) = state.rx_wakers.pop() {
                w.wake();
            }
            self.rx_condvar.notify_one();
        }

        fn wake_tx(&self, state: &mut State<T>) {
            if let Some(w) = state.tx_wakers.pop() {
                w.wake();
            }
            self.tx_condvar.notify_one();
        }

        fn wake_everyone(&self, state: &mut State<T>) {
            for w in state.rx_wakers.drain(..) {
                w.wake();
            }
            for w in state.tx_wakers.drain(..) {
                w.wake();
            }
            self.rx_condvar.notify_all();
            self.tx_condvar.notify_all();
        }
    }

    /// Bounded channel: `send` applies backpressure at `cap` queued
    /// messages.
    pub fn channel<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "mpsc bounded channel requires capacity > 0");
        make(Some(cap))
    }

    /// Unbounded channel: `send` never waits.
    pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
        let (tx, rx) = make(None);
        (UnboundedSender(tx), UnboundedReceiver(rx))
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                rx_alive: true,
                rx_wakers: Vec::new(),
                tx_wakers: Vec::new(),
            }),
            cap,
            rx_condvar: Condvar::new(),
            tx_condvar: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().unwrap().senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                self.chan.wake_everyone(&mut state);
            }
        }
    }

    impl<T> Sender<T> {
        /// Queue a message, waiting (async) while the channel is full.
        pub fn send(&self, value: T) -> SendFuture<'_, T> {
            SendFuture {
                sender: self,
                value: Some(value),
            }
        }

        /// Queue a message without waiting.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.chan.state.lock().unwrap();
            if !state.rx_alive {
                return Err(TrySendError::Closed(value));
            }
            if let Some(cap) = self.chan.cap {
                if state.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            state.queue.push_back(value);
            self.chan.wake_rx(&mut state);
            Ok(())
        }

        /// Queue a message, blocking the calling thread while full.
        pub fn blocking_send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if !state.rx_alive {
                    return Err(SendError(value));
                }
                match self.chan.cap {
                    Some(cap) if state.queue.len() >= cap => {
                        state = self.chan.tx_condvar.wait(state).unwrap();
                    }
                    _ => break,
                }
            }
            state.queue.push_back(value);
            self.chan.wake_rx(&mut state);
            Ok(())
        }

        /// Whether the receiving half is gone.
        pub fn is_closed(&self) -> bool {
            !self.chan.state.lock().unwrap().rx_alive
        }
    }

    /// Future returned by [`Sender::send`].
    pub struct SendFuture<'a, T> {
        sender: &'a Sender<T>,
        value: Option<T>,
    }

    impl<T> Unpin for SendFuture<'_, T> {}

    impl<T> Future for SendFuture<'_, T> {
        type Output = Result<(), SendError<T>>;
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let chan = &self.sender.chan;
            let mut state = chan.state.lock().unwrap();
            if !state.rx_alive {
                let v = self.value.take().expect("polled after completion");
                return Poll::Ready(Err(SendError(v)));
            }
            if let Some(cap) = chan.cap {
                if state.queue.len() >= cap {
                    if !state.tx_wakers.iter().any(|w| w.will_wake(cx.waker())) {
                        state.tx_wakers.push(cx.waker().clone());
                    }
                    return Poll::Pending;
                }
            }
            let v = self.value.take().expect("polled after completion");
            state.queue.push_back(v);
            chan.wake_rx(&mut state);
            Poll::Ready(Ok(()))
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().unwrap();
            state.rx_alive = false;
            state.queue.clear();
            self.chan.wake_everyone(&mut state);
        }
    }

    impl<T> Receiver<T> {
        /// Await the next message; `None` once every sender is dropped
        /// and the queue is drained.
        pub fn recv(&mut self) -> RecvFuture<'_, T> {
            RecvFuture { receiver: self }
        }

        /// Take a queued message without waiting.
        pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
            let mut state = self.chan.state.lock().unwrap();
            match state.queue.pop_front() {
                Some(v) => {
                    self.chan.wake_tx(&mut state);
                    Ok(v)
                }
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block the calling thread for the next message.
        pub fn blocking_recv(&mut self) -> Option<T> {
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    self.chan.wake_tx(&mut state);
                    return Some(v);
                }
                if state.senders == 0 {
                    return None;
                }
                state = self.chan.rx_condvar.wait(state).unwrap();
            }
        }

        /// Block for the next message, giving up after `timeout`. Not
        /// part of tokio's API; the blocking connection facade needs it.
        pub fn blocking_recv_timeout(&mut self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.chan.state.lock().unwrap();
            loop {
                if let Some(v) = state.queue.pop_front() {
                    self.chan.wake_tx(&mut state);
                    return Ok(v);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = deadline.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self.chan.rx_condvar.wait_timeout(state, left).unwrap();
                state = guard;
            }
        }
    }

    /// Future returned by [`Receiver::recv`].
    pub struct RecvFuture<'a, T> {
        receiver: &'a mut Receiver<T>,
    }

    impl<T> Unpin for RecvFuture<'_, T> {}

    impl<T> Future for RecvFuture<'_, T> {
        type Output = Option<T>;
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            let chan = Arc::clone(&self.receiver.chan);
            let mut state = chan.state.lock().unwrap();
            if let Some(v) = state.queue.pop_front() {
                chan.wake_tx(&mut state);
                return Poll::Ready(Some(v));
            }
            if state.senders == 0 {
                return Poll::Ready(None);
            }
            if !state.rx_wakers.iter().any(|w| w.will_wake(cx.waker())) {
                state.rx_wakers.push(cx.waker().clone());
            }
            Poll::Pending
        }
    }

    /// Unbounded sending half; `send` never waits.
    pub struct UnboundedSender<T>(Sender<T>);

    impl<T> Clone for UnboundedSender<T> {
        fn clone(&self) -> Self {
            UnboundedSender(self.0.clone())
        }
    }

    impl<T> UnboundedSender<T> {
        /// Queue a message (never waits).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.try_send(value).map_err(|e| match e {
                TrySendError::Closed(v) | TrySendError::Full(v) => SendError(v),
            })
        }

        /// Whether the receiving half is gone.
        pub fn is_closed(&self) -> bool {
            self.0.is_closed()
        }
    }

    /// Unbounded receiving half.
    pub struct UnboundedReceiver<T>(Receiver<T>);

    impl<T> UnboundedReceiver<T> {
        /// Await the next message; `None` once every sender is gone.
        pub async fn recv(&mut self) -> Option<T> {
            self.0.recv().await
        }

        /// Take a queued message without waiting.
        pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Block the calling thread for the next message.
        pub fn blocking_recv(&mut self) -> Option<T> {
            self.0.blocking_recv()
        }

        /// Block with a deadline (extension; see [`Receiver`]).
        pub fn blocking_recv_timeout(&mut self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.blocking_recv_timeout(timeout)
        }
    }
}
