//! Readiness-based async TCP, the subset `sitra-net` drives: wrap an
//! already-connected (or accepted) `std` stream, await readiness, and
//! perform non-blocking `try_*` I/O.

use crate::reactor::{Ready, Registration, READ, WRITE};
use crate::runtime::Handle;
use std::io::{self, IoSlice, Read, Write};
use std::net::SocketAddr;
use std::os::fd::AsRawFd;

/// An async TCP stream.
///
/// Field order matters: the registration must deregister from epoll
/// before the std stream drops (and closes) the fd.
pub struct TcpStream {
    registration: Registration,
    std: std::net::TcpStream,
}

impl TcpStream {
    /// Adopt a connected std stream into the current runtime's
    /// reactor. The stream is switched to non-blocking mode.
    pub fn from_std(std: std::net::TcpStream) -> io::Result<TcpStream> {
        std.set_nonblocking(true)?;
        let registration = Handle::current().reactor().register(std.as_raw_fd())?;
        Ok(TcpStream { registration, std })
    }

    /// Like [`TcpStream::from_std`], but onto an explicit runtime
    /// handle — usable from non-runtime threads.
    pub fn from_std_on(handle: &Handle, std: std::net::TcpStream) -> io::Result<TcpStream> {
        std.set_nonblocking(true)?;
        let registration = handle.reactor().register(std.as_raw_fd())?;
        Ok(TcpStream { registration, std })
    }

    /// Connect, async: a blocking dial on a helper thread would defeat
    /// the reactor, so this issues the non-blocking connect and awaits
    /// writability.
    pub async fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
        // std has no non-blocking connect initiation; a plain blocking
        // connect to a local/fast peer is brief, and callers needing
        // full asynchrony can dial on a blocking thread. This keeps the
        // dial simple and the post-dial I/O async.
        let std = std::net::TcpStream::connect(addr)?;
        TcpStream::from_std(std)
    }

    /// Wait until the stream is (probably) readable.
    pub async fn readable(&self) -> io::Result<()> {
        Ready {
            source: &self.registration.source,
            mask: READ,
        }
        .await;
        Ok(())
    }

    /// Wait until the stream is (probably) writable.
    pub async fn writable(&self) -> io::Result<()> {
        Ready {
            source: &self.registration.source,
            mask: WRITE,
        }
        .await;
        Ok(())
    }

    /// Non-blocking read. `WouldBlock` clears cached readiness so the
    /// next [`TcpStream::readable`] actually waits.
    pub fn try_read(&self, buf: &mut [u8]) -> io::Result<usize> {
        match (&self.std).read(buf) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                self.registration.source.clear_ready(READ);
                Err(e)
            }
            other => other,
        }
    }

    /// Non-blocking write.
    pub fn try_write(&self, buf: &[u8]) -> io::Result<usize> {
        match (&self.std).write(buf) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                self.registration.source.clear_ready(WRITE);
                Err(e)
            }
            other => other,
        }
    }

    /// Non-blocking vectored write.
    pub fn try_write_vectored(&self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        match (&self.std).write_vectored(bufs) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                self.registration.source.clear_ready(WRITE);
                Err(e)
            }
            other => other,
        }
    }

    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.std.peer_addr()
    }

    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.std.local_addr()
    }

    pub fn set_nodelay(&self, on: bool) -> io::Result<()> {
        self.std.set_nodelay(on)
    }

    /// Shut down one or both directions (e.g. flush-then-FIN on close).
    pub fn shutdown_std(&self, how: std::net::Shutdown) -> io::Result<()> {
        self.std.shutdown(how)
    }
}
