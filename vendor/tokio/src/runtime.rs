//! The executor: a multi-thread work queue of spawned tasks plus the
//! reactor thread, behind tokio's `Runtime` / `Builder` / `Handle`
//! surface.

use crate::reactor::Reactor;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, Waker};

/// One spawned task: its future, and a flag keeping it queued at most
/// once however many wakes race.
struct Task {
    future: Mutex<Option<Pin<Box<dyn Future<Output = ()> + Send>>>>,
    queued: AtomicBool,
    shared: Weak<Shared>,
}

impl std::task::Wake for Task {
    fn wake(self: Arc<Self>) {
        if let Some(shared) = self.shared.upgrade() {
            shared.schedule(self);
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Task>>>,
    condvar: Condvar,
    shutdown: AtomicBool,
    reactor: Arc<Reactor>,
}

impl Shared {
    fn schedule(&self, task: Arc<Task>) {
        if !task.queued.swap(true, Ordering::AcqRel) {
            self.queue.lock().unwrap().push_back(task);
            self.condvar.notify_one();
        }
    }

    fn worker_loop(&self) {
        loop {
            let task = {
                let mut queue = self.queue.lock().unwrap();
                loop {
                    if let Some(task) = queue.pop_front() {
                        break task;
                    }
                    if self.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    queue = self.condvar.wait(queue).unwrap();
                }
            };
            // Clear before polling so a wake arriving mid-poll queues a
            // fresh run instead of being lost.
            task.queued.store(false, Ordering::Release);
            let waker = Waker::from(Arc::clone(&task));
            let mut cx = Context::from_waker(&waker);
            let mut slot = task.future.lock().unwrap();
            if let Some(fut) = slot.as_mut() {
                // The JoinHandle wrapper already catches panics; this
                // is the backstop that keeps a worker alive if anything
                // else unwinds.
                match catch_unwind(AssertUnwindSafe(|| fut.as_mut().poll(&mut cx))) {
                    Ok(Poll::Ready(())) | Err(_) => *slot = None,
                    Ok(Poll::Pending) => {}
                }
            }
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Handle>> = const { RefCell::new(None) };
}

struct EnterGuard(Option<Handle>);

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.0.take());
    }
}

fn enter(handle: Handle) -> EnterGuard {
    EnterGuard(CURRENT.with(|c| c.borrow_mut().replace(handle)))
}

/// A cloneable reference into a running runtime.
#[derive(Clone)]
pub struct Handle {
    shared: Arc<Shared>,
}

impl Handle {
    /// The handle of the runtime the current thread is running on.
    ///
    /// # Panics
    /// Panics outside a runtime context, like tokio.
    pub fn current() -> Handle {
        CURRENT.with(|c| c.borrow().clone()).expect(
            "there is no reactor running: must be called from the context of a tokio runtime",
        )
    }

    pub(crate) fn reactor(&self) -> Arc<Reactor> {
        Arc::clone(&self.shared.reactor)
    }

    /// Spawn a future onto the runtime.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let join = Arc::new(JoinState::new());
        let join2 = Arc::clone(&join);
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(async move {
                let result = CatchUnwind(future).await;
                join2.complete(result.map_err(|_| JoinError(())));
            }))),
            queued: AtomicBool::new(false),
            shared: Arc::downgrade(&self.shared),
        });
        self.shared.schedule(task);
        JoinHandle { state: join }
    }

    /// Run a future to completion on the current thread, driving it
    /// with a park/unpark waker while runtime workers execute whatever
    /// it spawns.
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        let _guard = enter(self.clone());
        let parker = Arc::new(Parker::default());
        let waker = Waker::from(Arc::clone(&parker));
        let mut cx = Context::from_waker(&waker);
        let mut future = std::pin::pin!(future);
        loop {
            match future.as_mut().poll(&mut cx) {
                Poll::Ready(out) => return out,
                Poll::Pending => parker.park(),
            }
        }
    }
}

#[derive(Default)]
struct Parker {
    unparked: Mutex<bool>,
    condvar: Condvar,
}

impl Parker {
    fn park(&self) {
        let mut unparked = self.unparked.lock().unwrap();
        while !*unparked {
            unparked = self.condvar.wait(unparked).unwrap();
        }
        *unparked = false;
    }
}

impl std::task::Wake for Parker {
    fn wake(self: Arc<Self>) {
        *self.unparked.lock().unwrap() = true;
        self.condvar.notify_one();
    }
}

/// Polls the wrapped future inside `catch_unwind`.
struct CatchUnwind<F>(F);

impl<F: Future> Future for CatchUnwind<F> {
    type Output = Result<F::Output, ()>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let inner = unsafe { self.map_unchecked_mut(|s| &mut s.0) };
        match catch_unwind(AssertUnwindSafe(|| inner.poll(cx))) {
            Ok(Poll::Ready(v)) => Poll::Ready(Ok(v)),
            Ok(Poll::Pending) => Poll::Pending,
            Err(_) => Poll::Ready(Err(())),
        }
    }
}

/// The task panicked before producing its output.
#[derive(Debug)]
pub struct JoinError(());

impl std::fmt::Display for JoinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task panicked")
    }
}

impl std::error::Error for JoinError {}

struct JoinState<T> {
    inner: Mutex<JoinInner<T>>,
    condvar: Condvar,
}

struct JoinInner<T> {
    result: Option<Result<T, JoinError>>,
    waker: Option<Waker>,
}

impl<T> JoinState<T> {
    fn new() -> JoinState<T> {
        JoinState {
            inner: Mutex::new(JoinInner {
                result: None,
                waker: None,
            }),
            condvar: Condvar::new(),
        }
    }

    fn complete(&self, result: Result<T, JoinError>) {
        let waker = {
            let mut inner = self.inner.lock().unwrap();
            inner.result = Some(result);
            inner.waker.take()
        };
        self.condvar.notify_all();
        if let Some(w) = waker {
            w.wake();
        }
    }
}

/// Awaitable handle to a spawned task's output.
pub struct JoinHandle<T> {
    state: Arc<JoinState<T>>,
}

impl<T> JoinHandle<T> {
    /// Block the calling (non-async) thread until the task finishes.
    /// Not part of tokio's API; the test harness uses it.
    pub fn join_blocking(self) -> Result<T, JoinError> {
        let mut inner = self.state.inner.lock().unwrap();
        loop {
            if let Some(result) = inner.result.take() {
                return result;
            }
            inner = self.state.condvar.wait(inner).unwrap();
        }
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.state.inner.lock().unwrap();
        if let Some(result) = inner.result.take() {
            Poll::Ready(result)
        } else {
            inner.waker = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Configures a [`Runtime`].
pub struct Builder {
    worker_threads: usize,
    thread_name: String,
}

impl Builder {
    /// A multi-thread runtime builder (the only flavor offered here).
    pub fn new_multi_thread() -> Builder {
        Builder {
            worker_threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .max(2),
            thread_name: "tokio-runtime-worker".to_string(),
        }
    }

    /// Number of executor worker threads.
    pub fn worker_threads(&mut self, n: usize) -> &mut Builder {
        self.worker_threads = n.max(1);
        self
    }

    /// Base name for worker threads.
    pub fn thread_name(&mut self, name: impl Into<String>) -> &mut Builder {
        self.thread_name = name.into();
        self
    }

    /// Accepted for API compatibility; I/O and timers are always on.
    pub fn enable_all(&mut self) -> &mut Builder {
        self
    }

    /// Build the runtime: spawns the reactor thread and the workers.
    pub fn build(&mut self) -> io::Result<Runtime> {
        let reactor = Reactor::new()?;
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            condvar: Condvar::new(),
            shutdown: AtomicBool::new(false),
            reactor: Arc::clone(&reactor),
        });
        let reactor_thread = std::thread::Builder::new()
            .name(format!("{}-reactor", self.thread_name))
            .spawn(move || reactor.run())?;
        let workers = (0..self.worker_threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("{}-{i}", self.thread_name))
                    .spawn(move || {
                        let _guard = enter(Handle {
                            shared: Arc::clone(&shared),
                        });
                        shared.worker_loop();
                    })
            })
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Runtime {
            handle: Handle { shared },
            workers,
            reactor_thread: Some(reactor_thread),
        })
    }
}

/// The runtime: owns the worker threads and the reactor thread;
/// dropping it shuts both down (pending tasks are dropped).
pub struct Runtime {
    handle: Handle,
    workers: Vec<std::thread::JoinHandle<()>>,
    reactor_thread: Option<std::thread::JoinHandle<()>>,
}

impl Runtime {
    /// A multi-thread runtime with default settings.
    pub fn new() -> io::Result<Runtime> {
        Builder::new_multi_thread().build()
    }

    /// This runtime's [`Handle`].
    pub fn handle(&self) -> Handle {
        self.handle.clone()
    }

    /// Spawn a future onto the runtime.
    pub fn spawn<F>(&self, future: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        self.handle.spawn(future)
    }

    /// Run a future to completion on the calling thread.
    pub fn block_on<F: Future>(&self, future: F) -> F::Output {
        self.handle.block_on(future)
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.handle.shared.shutdown.store(true, Ordering::SeqCst);
        self.handle.shared.condvar.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Unscheduled tasks die with the queue; futures parked in the
        // reactor are dropped when their tasks are.
        self.handle.shared.queue.lock().unwrap().clear();
        self.handle.shared.reactor.initiate_shutdown();
        if let Some(r) = self.reactor_thread.take() {
            let _ = r.join();
        }
    }
}

/// Spawn a future onto the runtime the current thread belongs to.
///
/// # Panics
/// Panics outside a runtime context.
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + Send + 'static,
    F::Output: Send + 'static,
{
    Handle::current().spawn(future)
}

/// Run a blocking closure on a dedicated thread, awaitable from async
/// context.
pub fn spawn_blocking<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let join = Arc::new(JoinState::new());
    let join2 = Arc::clone(&join);
    std::thread::Builder::new()
        .name("tokio-blocking".to_string())
        .spawn(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            join2.complete(result.map_err(|_| JoinError(())));
        })
        .expect("spawn blocking thread");
    JoinHandle { state: join }
}
