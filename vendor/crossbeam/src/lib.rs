//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides `crossbeam::channel` — multi-producer multi-consumer
//! channels with the disconnect semantics of the real crate: `recv`
//! errors once every sender is dropped and the queue is drained; `send`
//! errors once every receiver is dropped. Built on Mutex + Condvar;
//! bounded channels block senders at capacity (backpressure).

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when all receivers are gone.
    /// Carries the unsent message.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived within the timeout.
        Timeout,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        /// Signalled when a message or disconnect arrives.
        recv_cv: Condvar,
        /// Signalled when capacity frees up or receivers vanish.
        send_cv: Condvar,
        cap: Option<usize>,
    }

    /// The sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    /// A bounded channel: sends block while `cap` messages are queued.
    /// `cap == 0` is treated as capacity 1 (this stand-in has no
    /// rendezvous channels; the workspace never uses capacity 0).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            recv_cv: Condvar::new(),
            send_cv: Condvar::new(),
            cap,
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Send a message, blocking while a bounded channel is full.
        /// Errors (returning the message) when all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut g = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if g.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.chan.cap {
                    Some(cap) if g.queue.len() >= cap => {
                        g = self.chan.send_cv.wait(g).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            g.queue.push_back(value);
            self.chan.recv_cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut g = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            g.senders -= 1;
            if g.senders == 0 {
                self.chan.recv_cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receive, blocking until a message or total disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut g = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = g.queue.pop_front() {
                    self.chan.send_cv.notify_one();
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvError);
                }
                g = self.chan.recv_cv.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut g = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = g.queue.pop_front() {
                    self.chan.send_cv.notify_one();
                    return Ok(v);
                }
                if g.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _) = self
                    .chan
                    .recv_cv
                    .wait_timeout(g, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                g = guard;
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut g = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = g.queue.pop_front() {
                self.chan.send_cv.notify_one();
                return Ok(v);
            }
            if g.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan
                .state
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut g = self.chan.state.lock().unwrap_or_else(|e| e.into_inner());
            g.receivers -= 1;
            if g.receivers == 0 {
                self.chan.send_cv.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv(), Ok(i));
            }
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn timeout_then_delivery() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(3).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
        }

        #[test]
        fn bounded_blocks_at_capacity() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t = std::thread::spawn(move || {
                tx.send(3).unwrap(); // blocks until a recv frees a slot
                tx
            });
            std::thread::sleep(Duration::from_millis(30));
            assert_eq!(rx.recv(), Ok(1));
            let _tx = t.join().unwrap();
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }

        #[test]
        fn mpmc_all_messages_arrive_once() {
            let (tx, rx) = unbounded::<u64>();
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<u64> = consumers
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }
    }
}
