//! Offline stand-in for the `criterion` crate.
//!
//! Implements the `criterion_group!`/`criterion_main!`/`benchmark_group`
//! surface this workspace's benches use, with a deliberately tiny
//! measurement loop: each benchmark is timed over a handful of
//! iterations and a single `name/id: time/iter` line is printed. The
//! binaries stay `harness = false` and tolerate libtest-style arguments
//! (`--test`, `--bench`, filters), so both `cargo bench` and
//! `cargo test` can run them quickly.

use std::time::{Duration, Instant};

/// Top-level benchmark driver (one per bench binary).
pub struct Criterion {
    /// Fast mode: run each routine a single timed iteration (set when
    /// the binary is invoked with `--test`, as `cargo test` does).
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark: `routine` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the code under test.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.criterion.test_mode {
            1
        } else {
            self.sample_size
        };
        let mut b = Bencher {
            samples,
            total: Duration::ZERO,
            iters: 0,
        };
        routine(&mut b);
        let per_iter = if b.iters > 0 {
            b.total / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "{}/{}: {:?}/iter ({} iters)",
            self.name, id, per_iter, b.iters
        );
        self
    }

    /// Finish the group (no-op; reporting happens per benchmark).
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: usize,
}

impl Bencher {
    /// Time `routine` over this bencher's sample budget (plus one
    /// untimed warm-up call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        let mut calls = 0u32;
        group.sample_size(5).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // warm-up + 1 timed iteration in test mode
        assert_eq!(calls, 2);
    }
}
