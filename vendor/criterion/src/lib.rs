//! Offline stand-in for the `criterion` crate.
//!
//! Implements the `criterion_group!`/`criterion_main!`/`benchmark_group`
//! surface this workspace's benches use, with a deliberately tiny
//! measurement loop: each benchmark is timed over a handful of
//! iterations and a single `name/id: time/iter` line is printed. The
//! binaries stay `harness = false` and tolerate libtest-style arguments
//! (`--test`, `--bench`, filters), so both `cargo bench` and
//! `cargo test` can run them quickly.
//!
//! Two extensions for CI:
//!
//! * `--quick` caps every group at 3 samples — fast enough for a
//!   per-commit smoke job while still averaging over real iterations.
//! * `BENCH_JSON=<path>` appends one JSON line per benchmark
//!   (`{"group":…,"id":…,"mean_ns":…,"iters":…}`) so a regression gate
//!   can diff runs without scraping human-readable output. Bench
//!   binaries run sequentially under cargo, so appending is safe.

use std::io::Write;
use std::time::{Duration, Instant};

/// Top-level benchmark driver (one per bench binary).
pub struct Criterion {
    /// Fast mode: run each routine a single timed iteration (set when
    /// the binary is invoked with `--test`, as `cargo test` does).
    test_mode: bool,
    /// Smoke mode (`--quick`): cap samples at 3 per benchmark.
    quick_mode: bool,
    /// Append machine-readable results to this path (`BENCH_JSON`).
    json_path: Option<std::path::PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        let quick_mode = std::env::args().any(|a| a == "--quick");
        let json_path = std::env::var_os("BENCH_JSON").map(std::path::PathBuf::from);
        Criterion {
            test_mode,
            quick_mode,
            json_path,
        }
    }
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set how many samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark: `routine` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the code under test.
    pub fn bench_function<F>(&mut self, id: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = if self.criterion.test_mode {
            1
        } else if self.criterion.quick_mode {
            self.sample_size.min(3)
        } else {
            self.sample_size
        };
        let mut b = Bencher {
            samples,
            total: Duration::ZERO,
            iters: 0,
        };
        routine(&mut b);
        let per_iter = if b.iters > 0 {
            b.total / b.iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "{}/{}: {:?}/iter ({} iters)",
            self.name, id, per_iter, b.iters
        );
        if let Some(path) = &self.criterion.json_path {
            let line = format!(
                "{{\"group\":\"{}\",\"id\":\"{}\",\"mean_ns\":{},\"iters\":{}}}\n",
                json_escape(&self.name),
                json_escape(id),
                per_iter.as_nanos(),
                b.iters
            );
            let write = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .and_then(|mut f| f.write_all(line.as_bytes()));
            if let Err(e) = write {
                eprintln!("criterion: cannot append to BENCH_JSON {path:?}: {e}");
            }
        }
        self
    }

    /// Finish the group (no-op; reporting happens per benchmark).
    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: usize,
}

impl Bencher {
    /// Time `routine` over this bencher's sample budget (plus one
    /// untimed warm-up call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            test_mode: true,
            quick_mode: false,
            json_path: None,
        };
        let mut group = c.benchmark_group("g");
        let mut calls = 0u32;
        group.sample_size(5).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // warm-up + 1 timed iteration in test mode
        assert_eq!(calls, 2);
    }

    #[test]
    fn quick_mode_caps_samples() {
        let mut c = Criterion {
            test_mode: false,
            quick_mode: true,
            json_path: None,
        };
        let mut group = c.benchmark_group("g");
        let mut calls = 0u32;
        group.sample_size(50).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        group.finish();
        // warm-up + 3 timed iterations in quick mode
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_json_appends_one_line_per_bench() {
        let path =
            std::env::temp_dir().join(format!("criterion-json-test-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut c = Criterion {
            test_mode: true,
            quick_mode: false,
            json_path: Some(path.clone()),
        };
        let mut group = c.benchmark_group("grp");
        group.bench_function("a", |b| b.iter(|| 1));
        group.bench_function("b", |b| b.iter(|| 2));
        group.finish();
        let content = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"group\":\"grp\",\"id\":\"a\",\"mean_ns\":"));
        assert!(lines[1].contains("\"id\":\"b\""));
        assert!(lines[1].ends_with("\"iters\":1}"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
    }
}
