//! Offline stand-in for `serde_derive`.
//!
//! Derive macros for the value-tree `serde` stand-in, written against
//! the bare `proc_macro` API (no `syn`/`quote` available offline). The
//! supported input shapes are the ones this workspace uses:
//!
//! * structs with named fields (with optional `#[serde(default)]` on a
//!   field),
//! * enums whose variants are unit or newtype.
//!
//! Anything else fails loudly at compile time rather than silently
//! producing a wrong impl.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    /// `#[serde(default)]` present: absent input falls back to Default.
    default: bool,
}

#[derive(Debug)]
struct Variant {
    name: String,
    /// Unit variant when false; newtype (single unnamed payload) when true.
    newtype: bool,
}

#[derive(Debug)]
enum Shape {
    Struct {
        name: String,
        fields: Vec<Field>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// True when an attribute token group is `serde(... default ...)`.
fn is_serde_default(attr_body: &TokenStream) -> bool {
    let mut it = attr_body.clone().into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g)))
            if id.to_string() == "serde" && g.delimiter() == Delimiter::Parenthesis =>
        {
            g.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

/// Consume leading attributes, returning whether any was `#[serde(default)]`.
fn skip_attrs(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> bool {
    let mut has_default = false;
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        if is_serde_default(&g.stream()) {
                            has_default = true;
                        }
                    }
                    other => panic!("malformed attribute after `#`: {other:?}"),
                }
            }
            _ => return has_default,
        }
    }
}

/// Consume an optional `pub` / `pub(...)` visibility.
fn skip_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        let default = skip_attrs(&mut it);
        skip_vis(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type: tokens until a top-level comma. Generic angle
        // brackets contain no top-level commas as tokens because `<...>`
        // is not a delimiter group, so track depth manually.
        let mut angle_depth = 0i32;
        loop {
            match it.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    it.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    it.next();
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    it.next();
                    break;
                }
                _ => {
                    it.next();
                }
            }
        }
        fields.push(Field { name, default });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        skip_attrs(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        let mut newtype = false;
        match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                newtype = true;
                it.next();
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                panic!("struct-like enum variant `{name}` is not supported by the serde stand-in")
            }
            _ => {}
        }
        // Consume a trailing comma if present.
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
        variants.push(Variant { name, newtype });
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let mut it = input.into_iter().peekable();
    skip_attrs(&mut it);
    skip_vis(&mut it);
    let kind = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("generic type `{name}` is not supported by the serde stand-in");
    }
    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("only brace-bodied types are supported (`{name}`), found {other:?}"),
    };
    match kind.as_str() {
        "struct" => Shape::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Shape::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("cannot derive serde impls for `{other}`"),
    }
}

/// Derive `serde::Serialize` (value-tree stand-in).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})),",
                        f.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    if v.newtype {
                        format!(
                            "{name}::{0}(x) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(x))]),",
                            v.name
                        )
                    } else {
                        format!(
                            "{name}::{0} => ::serde::Value::Str(::std::string::String::from(\"{0}\")),",
                            v.name
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (value-tree stand-in).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    let getter = if f.default {
                        "field_or_default"
                    } else {
                        "field"
                    };
                    format!("{0}: ::serde::{getter}(v, \"{0}\")?,", f.name)
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| !v.newtype)
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let newtype_arms: String = variants
                .iter()
                .filter(|v| v.newtype)
                .map(|v| {
                    format!(
                        "\"{0}\" => ::std::result::Result::Ok({name}::{0}(::serde::Deserialize::from_value(val)?)),",
                        v.name
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::msg(\
                                     ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                                 let (key, val) = &fields[0];\n\
                                 let _ = val;\n\
                                 match key.as_str() {{\n\
                                     {newtype_arms}\n\
                                     other => ::std::result::Result::Err(::serde::DeError::msg(\
                                         ::std::format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::msg(\
                                 \"expected string or single-key object for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}
