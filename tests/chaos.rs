//! The chaos regression suite: the pinned seed corpus through all
//! three staging backends, every run checked against the four
//! invariant oracles (conservation, no-loss, golden-output,
//! replay-identity).
//!
//! A failure here shrinks the plan to a minimal reproduction and
//! panics with the full report, including a paste-ready command for
//! the `chaos` binary:
//!
//! ```text
//! cargo run -p sitra-testkit --bin chaos -- --seed 0x... --plan '...' --backend remote
//! ```
//!
//! New failing seeds found by `chaos --random N` sweeps get appended
//! to [`sitra_testkit::PINNED_SEEDS`] once the bug is fixed.

use proptest::prelude::*;
use sitra_testkit::{
    arb_fault_plan, run_scenario, run_tenanted_scenario, shrink, Backend, FaultPlan, PINNED_SEEDS,
};

/// Scenario reruns a shrink may spend per failure (each is a full
/// pipeline run, so keep it modest in CI).
const SHRINK_BUDGET: usize = 16;

#[test]
fn pinned_corpus_passes_every_oracle_on_all_backends() {
    let mut reports = Vec::new();
    for &seed in &PINNED_SEEDS {
        let plan = FaultPlan::from_seed(seed);
        for &backend in &Backend::ALL {
            let outcome = run_scenario(seed, &plan, backend);
            if outcome.passed() {
                continue;
            }
            let minimal = shrink::minimize(
                &plan,
                |candidate| !run_scenario(seed, candidate, backend).passed(),
                SHRINK_BUDGET,
            );
            reports.push(shrink::report(seed, &outcome, &minimal));
        }
    }
    assert!(
        reports.is_empty(),
        "chaos corpus failures:\n{}",
        reports.join("\n")
    );
}

/// The corpus must actually exercise faults: at least one pinned seed
/// produces a non-empty fault schedule on the remote backend, and at
/// least one plan carries each of a crash and a partition. A corpus
/// that silently went fault-free would pass every oracle while
/// guarding nothing.
#[test]
fn pinned_corpus_is_not_toothless() {
    let plans: Vec<FaultPlan> = PINNED_SEEDS
        .iter()
        .map(|&s| FaultPlan::from_seed(s))
        .collect();
    assert!(
        plans.iter().any(|p| !p.is_fault_free()),
        "every pinned plan is fault-free"
    );
    assert!(plans.iter().any(|p| p.crash.is_some()), "no pinned crash");
    let faulted = run_scenario(4242, &FaultPlan::from_seed(4242), Backend::Remote);
    assert!(faulted.passed());
    assert!(
        !faulted.schedule.is_empty(),
        "seed 4242 must inject at least one fault on the remote path"
    );
}

/// The acceptance contract of the whole harness: the fault schedule is
/// a pure function of (plan, dense connection, frame index), so an
/// identical seed + plan reproduces identical decisions for every
/// frame the traffic trace presents. The wall-clock half of the trace
/// (worker poll cadence, reconnect counts) may differ between runs —
/// `PlanInjector`'s unit test pins schedule equality for identical
/// traces — but every decision either run records must be exactly what
/// the plan dictates when re-asked, and the outputs must come out
/// byte-identical.
#[test]
fn identical_seed_and_plan_reproduce_identical_schedule() {
    let seed = 4242;
    let plan = FaultPlan::from_seed(seed);
    let first = run_scenario(seed, &plan, Backend::Remote);
    let second = run_scenario(seed, &plan, Backend::Remote);
    assert!(first.passed(), "violations: {:?}", first.violations);
    assert!(second.passed(), "violations: {:?}", second.violations);
    assert!(
        !first.schedule.is_empty(),
        "the schedule under test is empty"
    );
    for entry in first.schedule.iter().chain(&second.schedule) {
        assert_eq!(
            plan.decide(entry.conn, entry.op),
            entry.action,
            "replaying (conn {}, op {}) must reproduce the recorded action",
            entry.conn,
            entry.op
        );
    }
    assert_eq!(
        first.outputs, second.outputs,
        "outputs must be byte-identical"
    );
}

/// A fault-free plan is a clean bill of health on every backend: no
/// degradation, no faults recorded, all oracles green.
#[test]
fn fault_free_plan_runs_clean_everywhere() {
    for &backend in &Backend::ALL {
        let outcome = run_scenario(7, &FaultPlan::fault_free(7), backend);
        assert!(
            outcome.passed(),
            "{}: violations: {:?}",
            backend.name(),
            outcome.violations
        );
        assert_eq!(outcome.degraded_tasks, 0, "{}", backend.name());
        assert_eq!(outcome.dropped_tasks, 0, "{}", backend.name());
        assert!(outcome.schedule.is_empty(), "{}", backend.name());
    }
}

/// The pinned cluster corpus: hand-written plans that mix the
/// `instance-loss` fault (a whole staging member killed mid-run) with
/// the network fault classes, run against the three-member cluster
/// backend. These stay out of `PINNED_SEEDS` × `Backend::ALL` so the
/// original corpus keeps its exact seed→plan mapping; they are the
/// cluster's own regression floor.
#[test]
fn pinned_cluster_plans_pass_every_oracle() {
    const PLANS: &[(u64, &str)] = &[
        // A bare member kill, early enough that shards are in flight.
        (0xC1, "seed=0xc1,iloss=0:60"),
        // Lossy, laggy network plus a mid-run member kill.
        (0xC2, "seed=0xc2,drop=6,delay=12,delaymax=8,iloss=1:90"),
        // A partition window healing right before a different member dies.
        (0xC3, "seed=0xc3,part=30..70,iloss=2:150"),
    ];
    let mut reports = Vec::new();
    for &(seed, spec) in PLANS {
        let plan = FaultPlan::parse(spec).expect("pinned cluster spec");
        let outcome = run_scenario(seed, &plan, Backend::Cluster);
        if outcome.passed() {
            continue;
        }
        let minimal = shrink::minimize(
            &plan,
            |candidate| !run_scenario(seed, candidate, Backend::Cluster).passed(),
            SHRINK_BUDGET,
        );
        reports.push(shrink::report(seed, &outcome, &minimal));
    }
    assert!(
        reports.is_empty(),
        "cluster chaos failures:\n{}",
        reports.join("\n")
    );
}

/// The pinned multi-tenant corpus: the canonical pipeline bound to the
/// `sim` tenant (weight 3) sharing the staging service with a `rival`
/// tenant (weight 1) whose workload reuses the sim tenant's labels and
/// steps — so a namespace leak fails loudly. On top of the standard
/// four oracles, `run_tenanted_scenario` checks the per-tenant
/// conservation identity (`submitted + requeued == assigned + shed +
/// queued`), traffic attribution, DRR weight survival, and the
/// byte-identity of the rival's own outputs. The cut-heavy plan forces
/// failed hand-offs, pinning tenant preservation through the requeue
/// path.
#[test]
fn pinned_tenant_plans_pass_every_oracle() {
    const PLANS: &[(u64, &str, Backend)] = &[
        // Connection cuts mid-hand-off: assigned tasks requeue and must
        // keep their tenant attribution through `requeue_front`.
        (0xE1, "seed=0xe1,cut=5,drop=4", Backend::Remote),
        // Lossy, reordering network over the three-member cluster: the
        // rival's routed submissions and the sim tenant's driver
        // traffic interleave across members.
        (
            0xE2,
            "seed=0xe2,drop=6,delay=15,delaymax=6,reorder=10",
            Backend::Cluster,
        ),
    ];
    let mut reports = Vec::new();
    for &(seed, spec, backend) in PLANS {
        let plan = FaultPlan::parse(spec).expect("pinned tenant spec");
        let outcome = run_tenanted_scenario(seed, &plan, backend);
        if outcome.passed() {
            continue;
        }
        let minimal = shrink::minimize(
            &plan,
            |candidate| !run_tenanted_scenario(seed, candidate, backend).passed(),
            SHRINK_BUDGET,
        );
        reports.push(shrink::report(seed, &outcome, &minimal));
    }
    assert!(
        reports.is_empty(),
        "tenant chaos failures:\n{}",
        reports.join("\n")
    );
}

/// Pinned member-flap plan: one member is lost abruptly mid-run
/// (`iloss`) while another is killed and *rejoined* by the crash plan.
/// The cluster bucket worker must write the lost member off after
/// `MEMBER_DEAD_STRIKES` consecutive failures, re-derive its poll
/// budget over the shrunken live membership, and pick the rejoined
/// member back up on a revival probe with a clean strike count — the
/// accounting this pins used to double-count strikes across a
/// death→revival→death flap and split the budget over the original
/// membership.
#[test]
fn pinned_member_flap_plans_pass_every_oracle() {
    const PLANS: &[(u64, &str)] = &[
        // Member 2 lost for good at tick 50; member 1 crashed after two
        // collected outputs and rejoined through member 0.
        (0xF1, "seed=0xf1,iloss=2:50,crash=after:2:restart"),
        // The same flap under a lossy network, so the worker's strikes
        // interleave with transient per-frame faults.
        (0xF2, "seed=0xf2,drop=5,cut=3,crash=after:1:restart"),
    ];
    let mut reports = Vec::new();
    for &(seed, spec) in PLANS {
        let plan = FaultPlan::parse(spec).expect("pinned flap spec");
        let outcome = run_scenario(seed, &plan, Backend::Cluster);
        if outcome.passed() {
            continue;
        }
        let minimal = shrink::minimize(
            &plan,
            |candidate| !run_scenario(seed, candidate, Backend::Cluster).passed(),
            SHRINK_BUDGET,
        );
        reports.push(shrink::report(seed, &outcome, &minimal));
    }
    assert!(
        reports.is_empty(),
        "member-flap plan failures:\n{}",
        reports.join("\n")
    );
}

/// Pinned elastic-pool plans: `scale=DELTA:TICK` events resizing the
/// bucket-worker pool mid-run, mixed with the network fault classes.
/// Growth spawns extra workers on fresh bucket ids; shrink drains and
/// retires live buckets through the scheduler — the same path the
/// autoscaler drives. The oracles must hold across worker retirement:
/// in particular, a draining bucket whose link is being cut out from
/// under it (`0xB4`) must lose nothing — any task it held either
/// completes or degrades to in-situ re-aggregation, never drops.
/// Pinned separately so `PINNED_SEEDS` keeps its exact seed→plan
/// mapping.
#[test]
fn pinned_scale_plans_pass_every_oracle() {
    const PLANS: &[(u64, &str, Backend)] = &[
        // Grow by one mid-run on a clean network: the extra bucket
        // joins the FCFS rotation without perturbing outputs.
        (0xB1, "seed=0xb1,scale=1:10", Backend::Remote),
        // Drain-and-retire the only bucket early: every task still due
        // degrades to in-situ re-aggregation, none are lost.
        (0xB2, "seed=0xb2,scale=-1:10", Backend::Remote),
        // Grow under a lossy, cutting network.
        (0xB3, "seed=0xb3,scale=2:5,cut=20,drop=8", Backend::Remote),
        // Kill a draining bucket: the retire fires while the worker's
        // connection is being cut, so the drain races a reconnect.
        (0xB4, "seed=0xb4,scale=-1:8,cut=40", Backend::Remote),
        // Cross-member retirement: one member drains its bucket, which
        // retires the whole round-robin cluster worker mid-run.
        (0xB5, "seed=0xb5,scale=-1:30,drop=5", Backend::Cluster),
    ];
    let mut reports = Vec::new();
    for &(seed, spec, backend) in PLANS {
        let plan = FaultPlan::parse(spec).expect("pinned scale spec");
        let outcome = run_scenario(seed, &plan, backend);
        if outcome.passed() {
            continue;
        }
        let minimal = shrink::minimize(
            &plan,
            |candidate| !run_scenario(seed, candidate, backend).passed(),
            SHRINK_BUDGET,
        );
        reports.push(shrink::report(seed, &outcome, &minimal));
    }
    assert!(
        reports.is_empty(),
        "scale plan failures:\n{}",
        reports.join("\n")
    );
}

/// Pinned timer-fault plans: `delay`/`reorder` rates well above what
/// the seeded corpus generates, exercising the transport's async-timer
/// fault realization (a delayed frame parks in the outbound queue or
/// on a runtime timer — the sender never sleeps) end to end. Pinned
/// separately so `PINNED_SEEDS` keeps its exact seed→plan mapping.
#[test]
fn pinned_timer_fault_plans_pass_every_oracle() {
    const PLANS: &[(u64, &str)] = &[
        // One frame in five held on a timer for up to 10ms.
        (0xD1, "seed=0xd1,delay=200,delaymax=10"),
        // Heavy reordering over moderate delay jitter.
        (0xD2, "seed=0xd2,delay=60,delaymax=6,reorder=150"),
    ];
    let mut reports = Vec::new();
    for &(seed, spec) in PLANS {
        let plan = FaultPlan::parse(spec).expect("pinned timer spec");
        for &backend in &Backend::ALL {
            let outcome = run_scenario(seed, &plan, backend);
            if outcome.passed() {
                continue;
            }
            let minimal = shrink::minimize(
                &plan,
                |candidate| !run_scenario(seed, candidate, backend).passed(),
                SHRINK_BUDGET,
            );
            reports.push(shrink::report(seed, &outcome, &minimal));
        }
    }
    assert!(
        reports.is_empty(),
        "timer-fault plan failures:\n{}",
        reports.join("\n")
    );
}

/// Pinned steering plans: the scenario matrix's steerable subscriber
/// (which rides along on every staging backend run) under drop, delay,
/// and partition faults. The fault injector sits under the subscriber's
/// `sitra-net` connection too, so a dropped or duplicated reply severs
/// its request lockstep; the client must redial and *re-declare its
/// current steering rate* on the fresh subscription — mirroring the
/// `SetTenant` reconnect pattern — or the steer-ack monotonicity
/// oracle fails on the first post-reconnect frame. Pinned separately
/// (like the cluster and `scale=` families) so `PINNED_SEEDS` keeps
/// its exact seed→plan mapping.
#[test]
fn pinned_steering_plans_pass_every_oracle() {
    use sitra_testkit::matrix::{matrix_specs, scenario_matrix};

    const PLANS: &[(&str, &[Backend])] = &[
        // Lossy, laggy network: dropped frame replies force the
        // subscriber through the redial + re-subscribe path mid-run.
        (
            "seed=0xA1,drop=12,delay=25,delaymax=10",
            &[Backend::Local, Backend::Remote],
        ),
        // A partition window: established connections survive, but any
        // redial inside the window is refused, so the subscriber's
        // retry loop must outlive it.
        ("seed=0xA2,part=10..60,drop=6", &[Backend::Local]),
        // Duplicated and reordered replies: the desync detector must
        // sever and resynchronize rather than double-deliver a frame.
        (
            "seed=0xA3,dup=15,reorder=12,cut=5",
            &[Backend::Local, Backend::Remote],
        ),
    ];
    let mut failures = Vec::new();
    for &(spec, backends) in PLANS {
        let plan = FaultPlan::parse(spec).expect("pinned steering spec");
        let report = scenario_matrix(backends, &[plan], matrix_specs);
        for cell in report.failures() {
            failures.push(format!(
                "{}/{}/{} `{}`: {:?}",
                cell.backend, cell.policy, cell.analysis, cell.plan, cell.violations
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "steering plan failures:\n  {}",
        failures.join("\n  ")
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every plan round-trips through its spec string — the property
    /// that makes the shrink report's `--plan` flag a faithful
    /// reproduction of the failing schedule.
    #[test]
    fn plan_spec_roundtrips(plan in arb_fault_plan()) {
        let spec = plan.to_string();
        let back = FaultPlan::parse(&spec)
            .unwrap_or_else(|e| panic!("`{spec}` failed to re-parse: {e}"));
        prop_assert_eq!(back, plan);
    }

    /// Fault decisions are a pure function of (plan, connection, frame):
    /// re-asking never changes the answer.
    #[test]
    fn plan_decisions_are_pure(plan in arb_fault_plan(), conn in 0u64..8, op in 0u64..512) {
        prop_assert_eq!(plan.decide(conn, op), plan.decide(conn, op));
    }
}
