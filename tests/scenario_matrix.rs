//! The scenario matrix in CI: every registered analysis × every
//! staging backend × every admission policy × the pinned fault subset,
//! judged by all six oracles (conservation, no-loss, golden-output,
//! replay-identity, flow-map golden endpoints, steer-ack monotonicity).
//!
//! Artifacts: when `BENCH_JSON` is set, the full matrix writes its
//! machine-readable report (bench_gate-style JSON lines, one per cell)
//! there; the markdown table lands next to it with an `.md` extension
//! (the table published in EXPERIMENTS.md). The `smoke` test is the
//! reduced matrix CI's `matrix-smoke` job runs on every push.

use sitra_testkit::matrix::{
    matrix_specs, pinned_fault_subset, scenario_matrix, FLOWMAP_LABEL, STEER_LABEL,
};
use sitra_testkit::{Backend, FaultPlan};

fn publish(report: &sitra_testkit::MatrixReport) {
    if let Ok(path) = std::env::var("BENCH_JSON") {
        std::fs::write(&path, report.json_lines()).expect("write matrix json");
        let md = std::path::Path::new(&path).with_extension("md");
        std::fs::write(&md, report.markdown()).expect("write matrix markdown");
        println!("[wrote {path} and {}]", md.display());
    }
}

/// The acceptance bar: ≥ 5 analyses × 3 backends × 3 admission
/// policies over the pinned fault subset, zero oracle violations.
#[test]
fn full_matrix_holds_every_oracle() {
    let report = scenario_matrix(&Backend::ALL, &pinned_fault_subset(), matrix_specs);

    // 3 backends × 3 policies × 2 plans.
    assert_eq!(report.runs, 18);
    // Five analyses per run.
    assert_eq!(report.cells.len(), 18 * 5);
    let analyses: std::collections::BTreeSet<&str> =
        report.cells.iter().map(|c| c.analysis.as_str()).collect();
    assert_eq!(analyses.len(), 5, "roster shrank: {analyses:?}");
    assert!(analyses.contains(FLOWMAP_LABEL));
    assert!(analyses.contains(STEER_LABEL));

    publish(&report);
    assert!(
        report.passed(),
        "matrix violations:\n{}",
        report
            .failures()
            .iter()
            .map(|c| format!(
                "  {}/{}/{} `{}`: {:?}",
                c.backend, c.policy, c.analysis, c.plan, c.violations
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The reduced matrix for the `matrix-smoke` CI job: just the two new
/// workloads, all three backends, one seeded transport-fault plan.
#[test]
fn smoke_matrix_holds_every_oracle() {
    let smoke_specs = || {
        matrix_specs()
            .into_iter()
            .filter(|s| s.label == FLOWMAP_LABEL || s.label == STEER_LABEL)
            .collect::<Vec<_>>()
    };
    let report = scenario_matrix(&Backend::ALL, &[FaultPlan::from_seed(42)], smoke_specs);
    assert_eq!(report.runs, 9); // 3 backends × 3 policies × 1 plan
    assert_eq!(report.cells.len(), 9 * 2);
    assert!(
        report.passed(),
        "smoke matrix violations:\n{}",
        report
            .failures()
            .iter()
            .map(|c| format!(
                "  {}/{}/{} `{}`: {:?}",
                c.backend, c.policy, c.analysis, c.plan, c.violations
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}
