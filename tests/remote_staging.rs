//! Remote staging end-to-end: the pipeline driver stages hybrid
//! analyses through a [`SpaceServer`] over **every transport scheme**
//! (`inproc://`, real TCP loopback, and `shm://` shared memory), with
//! separate bucket-worker threads pulling tasks exactly as external
//! `sitra-staged` consumers would — and the outputs must be
//! byte-identical to the fully in-process pipeline on each.
//!
//! One worker is configured to drop its connection mid-request after
//! its first completed task (a consumer crash at the worst moment: a
//! task may already be popped for it). The server must requeue that
//! task and another worker must finish it: no output may be missing and
//! the scheduler stats must show exactly one requeue.

mod common;

use common::{config, sim, sorted_encoded_outputs, specs};
use sitra::core::remote::{run_bucket_worker, BucketWorkerOpts};
use sitra::core::run_pipeline;
use sitra::dataspaces::SpaceServer;
use sitra::net::{Addr, Backoff};
use std::time::Duration;

const SEED: u64 = 4242;
const BUCKETS: usize = 3;
const WORKERS: usize = 3;

#[test]
fn tcp_remote_staging_matches_in_process_and_survives_a_dropped_connection() {
    staging_matches_in_process_and_survives_a_drop("tcp://127.0.0.1:0");
}

#[test]
fn shm_remote_staging_matches_in_process_and_survives_a_dropped_connection() {
    staging_matches_in_process_and_survives_a_drop(&format!(
        "shm://remote-staging-{}",
        std::process::id()
    ));
}

#[test]
fn inproc_remote_staging_matches_in_process_and_survives_a_dropped_connection() {
    staging_matches_in_process_and_survives_a_drop("inproc://remote-staging-drop-test");
}

/// The scheme-parameterized body: byte-identity against the in-process
/// reference, plus the dropped-connection/requeue story, on whichever
/// transport `bind` names.
fn staging_matches_in_process_and_survives_a_drop(bind: &str) {
    // Fresh metrics registry for this test (also serializes the tests
    // in this binary, which all read global observability state).
    let obs = sitra::obs::isolate();

    // Reference: the fully in-process pipeline.
    let local = run_pipeline(&mut sim(SEED), &config(BUCKETS)).expect("valid config");
    assert_eq!(local.dropped_tasks, 0);

    // Remote: a space server bound to the scheme under test plus worker
    // threads connecting to it, as separate processes would.
    let bind: Addr = bind.parse().unwrap();
    let server = SpaceServer::start(&bind, 2).expect("start staging server");
    let endpoint = server.addr();

    let workers: Vec<_> = (0..WORKERS)
        .map(|w| {
            let ep = endpoint.clone();
            std::thread::Builder::new()
                .name(format!("remote-bucket-{w}"))
                .spawn(move || {
                    let opts = BucketWorkerOpts {
                        backoff: Backoff::default(),
                        request_timeout: Duration::from_millis(200),
                        // The first worker's first act is a doomed
                        // request: it parks a server-side bucket, drops
                        // the connection, and the task assigned to that
                        // dead bucket must be requeued.
                        drop_connection_after: (w == 0).then_some(0),
                        location: None,
                    };
                    run_bucket_worker(&ep, &specs(), w as u32, &opts).expect("bucket worker")
                })
                .expect("spawn worker")
        })
        .collect();

    let remote = run_pipeline(
        &mut sim(SEED),
        &config(BUCKETS).with_staging_endpoint(endpoint.to_string()),
    )
    .expect("valid config");
    let completed: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();

    // Byte-identical outputs: every (analysis, step) of the in-process
    // run, encoded, matches the remote run exactly.
    let local_enc = sorted_encoded_outputs(&local);
    let remote_enc = sorted_encoded_outputs(&remote);
    assert_eq!(
        local_enc.len(),
        remote_enc.len(),
        "output sets differ in size"
    );
    for (l, r) in local_enc.iter().zip(&remote_enc) {
        assert_eq!(l.0, r.0, "label order mismatch");
        assert_eq!(l.1, r.1, "step mismatch for {}", l.0);
        assert_eq!(
            l.2, r.2,
            "outputs of {}@{} are not byte-identical",
            l.0, l.1
        );
    }

    // The injected connection drop lost no task: one requeue, and every
    // assignment is accounted for (original submissions + the retry).
    let stats = server.sched_stats();
    let hybrid_tasks = local
        .outputs
        .iter()
        .filter(|(label, _, _)| label != "stats")
        .count() as u64;
    assert_eq!(stats.tasks_submitted, hybrid_tasks);
    assert_eq!(
        stats.tasks_requeued, 1,
        "expected exactly one requeued task"
    );
    assert_eq!(
        stats.tasks_assigned,
        stats.tasks_submitted + stats.tasks_requeued,
        "assignments must cover submissions plus the requeued retry"
    );
    assert_eq!(completed as u64, stats.tasks_submitted);

    // The driver evicted every step's staging objects on the way out.
    assert_eq!(server.space().stats().resident_bytes, 0);
    server.shutdown();

    // The observability registry saw the same story the scheduler
    // stats tell: exactly one requeue, no framing desyncs anywhere,
    // and the queue-depth gauge's high-water mark is the scheduler's
    // max_queue_depth (both are updated at the same mutation points).
    let snap = obs.registry().snapshot();
    assert_eq!(
        snap.counter("sched.tasks.requeued"),
        1,
        "registry must record exactly one requeue"
    );
    assert_eq!(
        snap.counter_sum("net.conn.desyncs"),
        0,
        "no connection may report a frame desync"
    );
    let (_, high_water) = snap
        .gauge("sched.queue.depth")
        .expect("queue depth gauge registered");
    // Two schedulers wrote the gauge in this process: the local
    // reference run's and the SpaceServer's (the remote driver submits
    // to the server's scheduler instead of creating its own). The gauge
    // and max_queue_depth are updated at the same mutation points, so
    // the high-water is exactly the max of the per-scheduler
    // high-waters; the remote run's max_queue_depth is 0.
    let expected_depth = local
        .metrics
        .max_queue_depth
        .max(remote.metrics.max_queue_depth)
        .max(stats.max_queue_depth);
    assert_eq!(
        high_water as usize, expected_depth,
        "gauge high-water must equal the max SchedulerStats::max_queue_depth"
    );
    // Cross-layer sanity: the remote run moved real frames and the RPC
    // layer answered requests.
    assert!(snap.counter_sum("net.conn.frames_sent") > 0);
    assert!(snap.counter("space.rpc.requests") > 0);
    assert_eq!(snap.counter("space.rpc.proto_errors"), 0);
}

#[test]
fn tenant_bound_driver_leaves_shared_scheduler_open() {
    // A driver bound to a non-default tenant is one producer among
    // several on a shared staging service: finishing its run must not
    // close the scheduler (which would retire every other tenant's
    // workers), while the legacy untenanted driver keeps close-on-exit.
    let _obs = sitra::obs::isolate();
    let addr: Addr = "inproc://remote-staging-tenant-close".parse().unwrap();
    let server = SpaceServer::start(&addr, 1).expect("start staging server");
    let endpoint = server.addr();
    let worker = {
        let ep = endpoint.clone();
        std::thread::spawn(move || {
            run_bucket_worker(&ep, &specs(), 0, &BucketWorkerOpts::default())
                .expect("bucket worker")
        })
    };
    let remote = run_pipeline(
        &mut sim(SEED),
        &config(BUCKETS)
            .with_staging_endpoint(endpoint.to_string())
            .with_tenant(sitra::dataspaces::TenantSpec::new("acme").with_weight(3)),
    )
    .expect("valid config");
    assert_eq!(remote.dropped_tasks, 0);
    assert!(
        !server.scheduler().is_closed(),
        "a tenant-bound driver must leave the shared scheduler open"
    );
    // The tenanted run evicted only its own namespace — and since it
    // was the only producer, that is everything it staged.
    assert_eq!(server.space().stats().resident_bytes, 0);
    // The service's operator retires the worker, not the driver.
    server.scheduler().close();
    worker.join().unwrap();

    // Outputs still byte-identical to the in-process reference: the
    // tenant namespace changes where pieces live, not what they say.
    let local = run_pipeline(&mut sim(SEED), &config(BUCKETS)).expect("valid config");
    assert_eq!(
        sorted_encoded_outputs(&local),
        sorted_encoded_outputs(&remote)
    );
    server.shutdown();
}

#[test]
fn inproc_remote_staging_roundtrip() {
    // Fresh registry; also keeps this test from racing the TCP test's
    // snapshot assertions on the global observability state.
    let _obs = sitra::obs::isolate();

    // Same deployment over the deterministic in-process transport: a
    // quick guard that the remote path works without OS sockets.
    let addr: Addr = "inproc://remote-staging-test".parse().unwrap();
    let server = SpaceServer::start(&addr, 1).expect("start staging server");
    let endpoint = server.addr();
    let worker = {
        let ep = endpoint.clone();
        std::thread::spawn(move || {
            run_bucket_worker(&ep, &specs(), 0, &BucketWorkerOpts::default())
                .expect("bucket worker")
        })
    };
    let remote = run_pipeline(
        &mut sim(SEED),
        &config(BUCKETS).with_staging_endpoint(endpoint.to_string()),
    )
    .expect("valid config");
    let completed = worker.join().unwrap();
    let local = run_pipeline(&mut sim(SEED), &config(BUCKETS)).expect("valid config");
    assert_eq!(
        sorted_encoded_outputs(&local),
        sorted_encoded_outputs(&remote)
    );
    assert_eq!(
        completed,
        local
            .outputs
            .iter()
            .filter(|(l, _, _)| l != "stats")
            .count()
    );
    server.shutdown();
}
