//! Shared setup for the staging-path integration tests.
//!
//! The canonical seeded-simulation fixture (dims, analysis roster,
//! config, journaled runs, replay assertions) lives in
//! [`sitra_testkit::fixture`] so the chaos harness drives the exact
//! same pipeline the integration tests assert on; this module just
//! re-exports it under the `common::` name each test binary includes.

#![allow(dead_code, unused_imports)] // each test binary uses a different subset

pub use sitra_testkit::fixture::{
    assert_replay_agrees, config, expected_hybrid_tasks, replay_violations, run_journaled, sim,
    sim_with, sorted_encoded_outputs, specs, DIMS, STEPS,
};
