//! Regression tests pinning `run_pipeline`'s config-rejection surface:
//! invalid configurations must be reported as structured
//! [`ConfigError`]s — with stable `Display` text, since `sitra-cli`
//! and operators match on it — before the run starts, never as a panic
//! mid-flight.

mod common;

use common::{config, sim, specs};
use sitra::core::{run_pipeline, ConfigError, PipelineConfig, StagingMode};

const SEED: u64 = 11;

#[test]
fn duplicate_analysis_labels_are_rejected_before_the_run() {
    let mut cfg = config(2);
    // Two specs built from the same analysis type default to the same
    // label.
    cfg.analyses.push(specs().swap_remove(0));
    let err = run_pipeline(&mut sim(SEED), &cfg).expect_err("duplicate labels must not run");
    assert_eq!(err, ConfigError::DuplicateLabel("viz-hybrid".to_string()));
    assert_eq!(
        err.to_string(),
        "duplicate analysis label `viz-hybrid`; use AnalysisSpec::with_label"
    );
}

#[test]
fn unparseable_staging_endpoints_are_rejected_before_the_run() {
    for endpoint in ["", "not-a-scheme", "udp://127.0.0.1:7788", "tcp://"] {
        let cfg = config(2).with_staging_endpoint(endpoint);
        let err = run_pipeline(&mut sim(SEED), &cfg)
            .expect_err(&format!("endpoint `{endpoint}` must be rejected"));
        match err {
            ConfigError::InvalidEndpoint { endpoint: e, .. } => assert_eq!(e, endpoint),
            other => panic!("endpoint `{endpoint}`: expected InvalidEndpoint, got {other:?}"),
        }
    }
}

#[test]
fn endpoint_error_carries_the_offending_string_and_reason() {
    let err = run_pipeline(
        &mut sim(SEED),
        &config(2).with_staging_endpoint("bogus://x"),
    )
    .expect_err("bogus scheme must not run");
    match &err {
        ConfigError::InvalidEndpoint { endpoint, reason } => {
            assert_eq!(endpoint, "bogus://x");
            assert!(!reason.is_empty(), "reason must explain the parse failure");
        }
        other => panic!("expected InvalidEndpoint, got {other:?}"),
    }
    let display = err.to_string();
    assert!(
        display.starts_with("invalid staging endpoint `bogus://x`: "),
        "pinned Display prefix changed: {display}"
    );
}

#[test]
fn empty_cluster_endpoint_list_is_rejected_before_the_run() {
    let cfg = config(2).with_staging_cluster(Vec::<String>::new());
    let err = run_pipeline(&mut sim(SEED), &cfg).expect_err("empty cluster must not run");
    assert_eq!(err, ConfigError::EmptyCluster);
    assert_eq!(
        err.to_string(),
        "cluster staging requires at least one member endpoint"
    );
}

#[test]
fn every_cluster_member_endpoint_is_validated_before_the_run() {
    // One bad member endpoint anywhere in the list rejects the whole
    // config, and the error names the offender, not the list.
    for bad in ["", "not-a-scheme", "udp://127.0.0.1:7788"] {
        let cfg =
            config(2).with_staging_cluster(["inproc://ok-member", bad, "tcp://127.0.0.1:7788"]);
        let err = run_pipeline(&mut sim(SEED), &cfg)
            .expect_err(&format!("member endpoint `{bad}` must be rejected"));
        match err {
            ConfigError::InvalidEndpoint { endpoint, reason } => {
                assert_eq!(endpoint, bad);
                assert!(!reason.is_empty());
            }
            other => panic!("member `{bad}`: expected InvalidEndpoint, got {other:?}"),
        }
    }
}

#[test]
fn steering_on_an_insitu_pipeline_is_rejected_before_the_run() {
    // A steering endpoint on a fully in-situ pipeline is a
    // contradiction — there is no staging service for a viewer to
    // steer — and must be rejected before any simulation step runs.
    let cfg = config(2)
        .with_staging_mode(StagingMode::InSitu)
        .with_steering_endpoint("inproc://steer-insitu");
    let err =
        run_pipeline(&mut sim(SEED), &cfg).expect_err("steering without staging must not run");
    assert_eq!(
        err,
        ConfigError::SteeringWithoutStaging {
            endpoint: "inproc://steer-insitu".to_string(),
        }
    );
    assert_eq!(
        err.to_string(),
        "steering endpoint `inproc://steer-insitu` requires a staging backend; \
         a fully in-situ pipeline has no staging service to steer"
    );

    // An unparseable steering endpoint is an endpoint error like any
    // other, carrying the offending string.
    let cfg = config(2).with_steering_endpoint("bogus://steer");
    let err = run_pipeline(&mut sim(SEED), &cfg).expect_err("bogus steer endpoint must not run");
    match err {
        ConfigError::InvalidEndpoint { endpoint, reason } => {
            assert_eq!(endpoint, "bogus://steer");
            assert!(!reason.is_empty());
        }
        other => panic!("expected InvalidEndpoint, got {other:?}"),
    }

    // Positive control: the same endpoint on the default local-staging
    // config binds and runs clean — the rejection is about the staging
    // mode, not the steering feature.
    let cfg = config(2).with_steering_endpoint("inproc://steer-config-ok");
    let result = run_pipeline(&mut sim(SEED), &cfg).expect("steering over local staging runs");
    assert_eq!(result.dropped_tasks, 0);
}

#[test]
fn zero_step_config_runs_and_produces_nothing() {
    let mut cfg: PipelineConfig = config(2);
    cfg.steps = 0;
    let result = run_pipeline(&mut sim(SEED), &cfg).expect("zero steps is a valid, empty run");
    assert!(result.outputs.is_empty());
    assert_eq!(result.staged_tasks, 0);
    assert_eq!(result.dropped_tasks, 0);
    assert_eq!(result.degraded_tasks, 0);
    assert!(result.metrics.steps.is_empty());
    assert!(result.metrics.analyses.is_empty());
}
