//! Graceful degradation end-to-end: the staging service is killed in
//! the middle of a remote-staged run, and the driver must finish every
//! step by re-running the lost aggregations in-situ — zero lost steps,
//! outputs byte-identical to a fully local run.
//!
//! The kill is injected deterministically through the driver's staging
//! output hook: after `KILL_AFTER` outputs have been collected from the
//! staging area, the server is shut down *from inside the driver's
//! collection path*, so the set of tasks that degrade is exactly
//! reproducible. The test then cross-checks three accountings of the
//! same story: the live `PipelineMetrics`, the observability counters,
//! and an `obs_report`-style journal replay.

mod common;

use common::{config, sim, sorted_encoded_outputs, specs, STEPS};
use sitra::core::remote::{run_bucket_worker, BucketWorkerOpts};
use sitra::core::run_pipeline;
use sitra::dataspaces::SpaceServer;
use sitra::net::Addr;
use sitra_bench::replay::replay;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const SEED: u64 = 97;
/// Remote outputs collected before the staging service is killed.
const KILL_AFTER: usize = 2;

#[test]
fn staging_killed_mid_run_degrades_to_insitu_with_zero_lost_steps() {
    let obs = sitra::obs::isolate();

    // Reference: the fully in-process pipeline, run before the journal
    // sink is installed so its events don't pollute the replay.
    let local = run_pipeline(&mut sim(SEED), &config(2)).expect("valid config");
    assert_eq!(local.dropped_tasks, 0);

    let sink = Arc::new(sitra::obs::VecSink::new());
    let previous = sitra::obs::install_sink(Some(sink.clone()));

    let addr: Addr = "inproc://degraded-fallback-test".parse().unwrap();
    let server = SpaceServer::start(&addr, 1).expect("start staging server");
    let endpoint = server.addr();
    let worker = {
        let ep = endpoint.clone();
        std::thread::spawn(move || {
            run_bucket_worker(&ep, &specs(), 0, &BucketWorkerOpts::default())
        })
    };

    // The kill switch: after KILL_AFTER collected outputs, shut the
    // staging service down from inside the driver's collection path.
    let server_slot = Arc::new(Mutex::new(Some(server)));
    let collected = Arc::new(AtomicUsize::new(0));
    let hook = {
        let server_slot = Arc::clone(&server_slot);
        let collected = Arc::clone(&collected);
        Arc::new(move |_label: &str, _step: u64| {
            if collected.fetch_add(1, Ordering::SeqCst) + 1 == KILL_AFTER {
                if let Some(s) = server_slot.lock().unwrap().take() {
                    s.shutdown();
                }
            }
        })
    };

    // max_inflight=1 makes the collection order deterministic: every
    // submission first collects the single pending task, so exactly
    // KILL_AFTER tasks complete remotely and the rest degrade.
    let remote = run_pipeline(
        &mut sim(SEED),
        &config(2)
            .with_staging_endpoint(endpoint.to_string())
            .with_staging_max_inflight(1)
            .with_staging_deadline(Duration::from_secs(10))
            .with_staging_output_hook(hook),
    )
    .expect("valid config");
    // The worker retires when the closed scheduler reports no more
    // tasks (or its link drops with the server); either way it must not
    // hang once the run is over.
    let _ = worker.join().expect("worker thread panicked");
    let events = sink.take();
    sitra::obs::install_sink(previous);

    // Zero lost steps: every (analysis, step) output of the local run
    // exists in the degraded run and is byte-identical.
    assert_eq!(
        sorted_encoded_outputs(&local),
        sorted_encoded_outputs(&remote)
    );

    // Task accounting. The roster stages 6 hybrid tasks over 4 steps
    // (viz every step, features on steps 2 and 4); KILL_AFTER complete
    // remotely, every other task must have degraded — none lost.
    let hybrid_tasks = local
        .outputs
        .iter()
        .filter(|(label, _, _)| label != "stats")
        .count();
    assert_eq!(hybrid_tasks, common::expected_hybrid_tasks());
    assert_eq!(collected.load(Ordering::SeqCst), KILL_AFTER);
    assert_eq!(remote.degraded_tasks, hybrid_tasks - KILL_AFTER);
    assert_eq!(remote.dropped_tasks, 0);

    // Step accounting: the kill lands while step 2 is staging, so steps
    // 2..=4 each carry at least one degraded task and step 1 none.
    let degraded_steps: Vec<u64> = remote
        .metrics
        .steps
        .iter()
        .filter(|s| s.degraded)
        .map(|s| s.step)
        .collect();
    assert_eq!(degraded_steps, vec![2, 3, 4]);
    assert_eq!(remote.metrics.degraded_steps(), 3);
    assert_eq!(
        remote.metrics.degraded_analyses().len(),
        remote.degraded_tasks
    );
    for row in remote.metrics.degraded_analyses() {
        assert!(
            !row.aggregated_in_transit,
            "{}@{} degraded but still marked in-transit",
            row.analysis, row.step
        );
    }

    // The observability counters tell the same story...
    let snap = obs.registry().snapshot();
    assert_eq!(
        snap.counter("driver.tasks.degraded") as usize,
        remote.degraded_tasks
    );
    assert_eq!(snap.counter("driver.steps.degraded"), 3);
    assert_eq!(snap.counter("sched.tasks.shed"), 0);
    assert_eq!(
        snap.counter("driver.staging.outputs_collected") as usize,
        KILL_AFTER
    );

    // ...and so does an `obs_report`-style journal replay,
    // bit-identically: the degraded rows' timings round-trip exactly
    // through the journal's Display-encoded f64s.
    let r = replay(&events);
    assert_eq!(r.degraded_stages(), remote.degraded_tasks);
    assert_eq!(r.degraded_steps(), remote.metrics.degraded_steps());
    for want in remote.metrics.degraded_analyses() {
        let got = r
            .stages
            .iter()
            .find(|s| s.analysis == want.analysis && s.step == want.step)
            .unwrap_or_else(|| panic!("no replayed row for {}@{}", want.analysis, want.step));
        assert!(got.degraded);
        assert_eq!(got.aggregate_secs, want.aggregate_secs);
        assert_eq!(got.latency_secs, want.completion_latency_secs);
        assert_eq!(got.insitu_secs, want.insitu_secs);
    }
    for (got, want) in r.steps.iter().zip(&remote.metrics.steps) {
        assert_eq!(got.step, want.step);
        assert_eq!(got.degraded, want.degraded, "step {}", want.step);
    }
}

#[test]
fn unreachable_staging_endpoint_degrades_every_task() {
    let _obs = sitra::obs::isolate();

    // Nothing listens here: the driver must come up with the endpoint
    // marked lost, degrade every hybrid task, and still produce the
    // full output set.
    let local = run_pipeline(&mut sim(SEED), &config(2)).expect("valid config");
    let remote = run_pipeline(
        &mut sim(SEED),
        &config(2).with_staging_endpoint("inproc://nobody-listening-here"),
    )
    .expect("valid config");
    assert_eq!(
        sorted_encoded_outputs(&local),
        sorted_encoded_outputs(&remote)
    );
    let hybrid_tasks = local
        .outputs
        .iter()
        .filter(|(label, _, _)| label != "stats")
        .count();
    assert_eq!(remote.degraded_tasks, hybrid_tasks);
    assert_eq!(remote.metrics.degraded_steps(), STEPS);
}
