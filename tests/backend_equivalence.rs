//! Backend equivalence: the paper's core claim, asserted end to end.
//!
//! One analysis decomposition — an in-situ stage producing small
//! intermediates, then an aggregation — must run **unchanged** whether
//! the aggregation happens synchronously on the simulation cores
//! (`StagingMode::InSitu`), on in-process staging buckets
//! (`StagingMode::Local`), or on a remote staging service
//! (`StagingMode::Remote`), and even when the remote path fails and
//! every task degrades to the in-situ fallback. The same seeded
//! simulation is run through all four configurations; the outputs must
//! be byte-identical, and each run's journal replay must reproduce its
//! live metrics bit-identically — the shared retirement path is what
//! makes both hold.

mod common;

use common::{assert_replay_agrees, config, sorted_encoded_outputs, specs, STEPS};
use sitra::core::remote::{run_bucket_worker, BucketWorkerOpts};
use sitra::core::{PipelineConfig, PipelineResult, StagingMode};
use sitra::dataspaces::SpaceServer;
use sitra::net::Addr;
use sitra_testkit::matrix::{matrix_config, matrix_specs, FLOWMAP_LABEL, STEER_LABEL};

const SEED: u64 = 1234;

fn run(cfg: PipelineConfig) -> (PipelineResult, Vec<sitra::obs::ObsEvent>) {
    common::run_journaled(SEED, cfg)
}

#[test]
fn all_staging_backends_produce_identical_outputs_and_accounting() {
    let _obs = sitra::obs::isolate();

    // 1. Fully in-situ: hybrid analyses aggregate synchronously.
    let (insitu, insitu_events) = run(config(2).with_staging_mode(StagingMode::InSitu));

    // 2. Local staging buckets (the default).
    let (local, local_events) = run(config(2));

    // 3. Remote staging service with an external bucket worker.
    let addr: Addr = "inproc://backend-equivalence-test".parse().unwrap();
    let server = SpaceServer::start(&addr, 1).expect("start staging server");
    let endpoint = server.addr();
    let worker = {
        let ep = endpoint.clone();
        std::thread::spawn(move || {
            run_bucket_worker(&ep, &specs(), 0, &BucketWorkerOpts::default())
                .expect("bucket worker")
        })
    };
    let (remote, remote_events) = run(config(2).with_staging_endpoint(endpoint.to_string()));
    let completed = worker.join().unwrap();
    server.shutdown();

    // 4. Forced degradation: nothing listens, so every hybrid task must
    //    fall back to in-situ aggregation through the shared path.
    let (degraded, degraded_events) =
        run(config(2).with_staging_endpoint("inproc://backend-equivalence-nobody"));

    // Byte-identical outputs across all four placements — the claim.
    let reference = sorted_encoded_outputs(&insitu);
    assert_eq!(reference, sorted_encoded_outputs(&local), "local != insitu");
    assert_eq!(
        reference,
        sorted_encoded_outputs(&remote),
        "remote != insitu"
    );
    assert_eq!(
        reference,
        sorted_encoded_outputs(&degraded),
        "degraded != insitu"
    );

    // Task accounting: 6 hybrid tasks over 4 steps (viz every step,
    // features on 2 and 4); nothing dropped anywhere, degradation only
    // in the forced-failure run.
    let hybrid_tasks = reference.iter().filter(|(l, _, _)| l != "stats").count();
    assert_eq!(hybrid_tasks, common::expected_hybrid_tasks());
    assert_eq!(completed, hybrid_tasks);
    for (name, result) in [("insitu", &insitu), ("local", &local), ("remote", &remote)] {
        assert_eq!(result.dropped_tasks, 0, "{name}");
        assert_eq!(result.degraded_tasks, 0, "{name}");
        assert_eq!(result.metrics.degraded_steps(), 0, "{name}");
    }
    assert_eq!(degraded.dropped_tasks, 0);
    assert_eq!(degraded.degraded_tasks, hybrid_tasks);
    assert_eq!(degraded.metrics.degraded_steps(), STEPS);

    // The same (analysis, step) row set in every mode.
    let row_set = |r: &PipelineResult| {
        let mut v: Vec<(String, u64)> = r
            .metrics
            .analyses
            .iter()
            .map(|a| (a.analysis.clone(), a.step))
            .collect();
        v.sort();
        v
    };
    let reference_rows = row_set(&insitu);
    for (name, result) in [
        ("local", &local),
        ("remote", &remote),
        ("degraded", &degraded),
    ] {
        assert_eq!(reference_rows, row_set(result), "{name}");
    }

    // Placement flags per mode: in-situ mode never marks in-transit
    // rows; local and remote mark exactly the hybrid rows; forced
    // degradation clears the flag on every row it touches.
    assert!(insitu
        .metrics
        .analyses
        .iter()
        .all(|a| !a.aggregated_in_transit));
    for (name, result) in [("local", &local), ("remote", &remote)] {
        for a in &result.metrics.analyses {
            assert_eq!(
                a.aggregated_in_transit,
                a.analysis != "stats",
                "{name}: {}@{}",
                a.analysis,
                a.step
            );
        }
    }
    assert!(degraded
        .metrics
        .analyses
        .iter()
        .all(|a| !a.aggregated_in_transit));
    // Movement is charged only when intermediates actually shipped.
    assert!(insitu
        .metrics
        .analyses
        .iter()
        .all(|a| a.movement_bytes == 0));
    assert!(degraded
        .metrics
        .analyses
        .iter()
        .all(|a| a.movement_bytes == 0));
    for name in ["viz-hybrid", "feature-stats"] {
        assert!(local.metrics.mean_movement_bytes(name) > 0.0);
        assert!(remote.metrics.mean_movement_bytes(name) > 0.0);
    }

    // Each run's journal replay reproduces its live metrics
    // bit-identically (the remote run's aggregation half lives in the
    // worker's journal, so only its driver-owned fields are compared).
    assert_replay_agrees("insitu", &insitu, &insitu_events, "insitu", true);
    assert_replay_agrees("local", &local, &local_events, "hybrid", true);
    assert_replay_agrees("remote", &remote, &remote_events, "hybrid-remote", false);
    assert_replay_agrees(
        "degraded",
        &degraded,
        &degraded_events,
        "hybrid-remote",
        false,
    );
}

/// The two new workloads — the Lagrangian flow map (compute-heavy,
/// tiny intermediates) and the steerable-viz registration — hold the
/// same bar as the original roster: byte-identical outputs and
/// bit-identical journal replay across all three staging backends, on
/// the full five-analysis matrix roster.
#[test]
fn new_workloads_are_byte_identical_across_all_backends() {
    let _obs = sitra::obs::isolate();

    let (insitu, insitu_events) = common::run_journaled(
        SEED,
        matrix_config(2, matrix_specs()).with_staging_mode(StagingMode::InSitu),
    );
    let (local, local_events) = common::run_journaled(SEED, matrix_config(2, matrix_specs()));

    let addr: Addr = "inproc://matrix-equivalence-test".parse().unwrap();
    let server = SpaceServer::start(&addr, 1).expect("start staging server");
    let endpoint = server.addr();
    let worker = {
        let ep = endpoint.clone();
        std::thread::spawn(move || {
            run_bucket_worker(&ep, &matrix_specs(), 0, &BucketWorkerOpts::default())
                .expect("bucket worker")
        })
    };
    let (remote, remote_events) = common::run_journaled(
        SEED,
        matrix_config(2, matrix_specs()).with_staging_endpoint(endpoint.to_string()),
    );
    let completed = worker.join().unwrap();
    server.shutdown();

    let reference = sorted_encoded_outputs(&insitu);
    assert_eq!(reference, sorted_encoded_outputs(&local), "local != insitu");
    assert_eq!(
        reference,
        sorted_encoded_outputs(&remote),
        "remote != insitu"
    );
    // Both new workloads actually produced output on every backend:
    // flow-map on its every-other-step interval, viz-steer every step.
    let count = |label: &str| reference.iter().filter(|(l, _, _)| l == label).count();
    assert_eq!(count(FLOWMAP_LABEL), STEPS / 2);
    assert_eq!(count(STEER_LABEL), STEPS);
    let hybrid_tasks = reference.iter().filter(|(l, _, _)| l != "stats").count();
    assert_eq!(completed, hybrid_tasks, "worker saw every hybrid task");

    assert_replay_agrees("insitu", &insitu, &insitu_events, "insitu", true);
    assert_replay_agrees("local", &local, &local_events, "hybrid", true);
    assert_replay_agrees("remote", &remote, &remote_events, "hybrid-remote", false);
}

/// Degraded-never-lost for the compute-heavy/small-output cost shape:
/// with nothing listening on the staging endpoint, every flow-map task
/// must fall back to in-situ re-aggregation and still produce the
/// byte-identical golden records — degradation may cost time, never
/// data, regardless of the workload's cost shape.
#[test]
fn degraded_flow_map_runs_lose_nothing() {
    let _obs = sitra::obs::isolate();

    let golden = common::run_journaled(
        SEED,
        matrix_config(2, matrix_specs()).with_staging_mode(StagingMode::InSitu),
    )
    .0;
    let (degraded, degraded_events) = common::run_journaled(
        SEED,
        matrix_config(2, matrix_specs()).with_staging_endpoint("inproc://matrix-nobody-listens"),
    );

    assert_eq!(degraded.dropped_tasks, 0, "degradation must never drop");
    let hybrid_tasks = sorted_encoded_outputs(&golden)
        .iter()
        .filter(|(l, _, _)| l != "stats")
        .count();
    assert_eq!(degraded.degraded_tasks, hybrid_tasks);
    assert_eq!(
        sorted_encoded_outputs(&golden),
        sorted_encoded_outputs(&degraded),
        "degraded outputs diverge from golden"
    );
    // The flow-map records specifically: present on every due step and
    // decodable, not just byte-equal.
    let flow_steps: Vec<u64> = degraded
        .outputs
        .iter()
        .filter(|(l, _, _)| l == FLOWMAP_LABEL)
        .map(|(_, step, out)| {
            assert!(
                out.as_flow_map().is_some_and(|recs| !recs.is_empty()),
                "flow-map output at step {step} is empty or mistyped"
            );
            *step
        })
        .collect();
    assert_eq!(flow_steps, vec![2, 4]);
    assert_replay_agrees(
        "degraded-flowmap",
        &degraded,
        &degraded_events,
        "hybrid-remote",
        false,
    );
}
