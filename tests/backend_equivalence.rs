//! Backend equivalence: the paper's core claim, asserted end to end.
//!
//! One analysis decomposition — an in-situ stage producing small
//! intermediates, then an aggregation — must run **unchanged** whether
//! the aggregation happens synchronously on the simulation cores
//! (`StagingMode::InSitu`), on in-process staging buckets
//! (`StagingMode::Local`), or on a remote staging service
//! (`StagingMode::Remote`), and even when the remote path fails and
//! every task degrades to the in-situ fallback. The same seeded
//! simulation is run through all four configurations; the outputs must
//! be byte-identical, and each run's journal replay must reproduce its
//! live metrics bit-identically — the shared retirement path is what
//! makes both hold.

use sitra::core::remote::{run_bucket_worker, BucketWorkerOpts};
use sitra::core::wire::encode_analysis_output;
use sitra::core::{
    run_pipeline, AnalysisSpec, FeatureStats, HybridStats, HybridViz, PipelineConfig,
    PipelineResult, Placement, StagingMode,
};
use sitra::dataspaces::SpaceServer;
use sitra::mesh::BBox3;
use sitra::net::Addr;
use sitra::obs::{ObsEvent, VecSink};
use sitra::sim::{SimConfig, Simulation};
use sitra::topology::distributed::BoundaryPolicy;
use sitra::topology::Connectivity;
use sitra::viz::{TransferFunction, View, ViewAxis};
use sitra_bench::replay::replay;
use std::sync::Arc;

const DIMS: [usize; 3] = [16, 12, 8];
const SEED: u64 = 1234;
const STEPS: usize = 4;

fn sim() -> Simulation {
    Simulation::new(SimConfig::small(DIMS, SEED))
}

/// Two hybrid analyses (one every step, one every other step) plus an
/// in-situ one that must behave identically in every staging mode.
fn specs() -> Vec<AnalysisSpec> {
    vec![
        AnalysisSpec::new(
            Arc::new(HybridViz {
                stride: 2,
                view: View::full_res(BBox3::from_dims(DIMS), ViewAxis::Z, false),
                tf: TransferFunction::hot(250.0, 2500.0),
            }),
            Placement::Hybrid,
            1,
        ),
        AnalysisSpec::new(
            Arc::new(FeatureStats {
                threshold: 1500.0,
                conn: Connectivity::Six,
                policy: BoundaryPolicy::BoundaryMaxima,
            }),
            Placement::Hybrid,
            2,
        ),
        AnalysisSpec::new(Arc::new(HybridStats::default()), Placement::InSitu, 1),
    ]
}

fn config() -> PipelineConfig {
    let mut cfg = PipelineConfig::new([2, 2, 1], 2, STEPS);
    cfg.analyses = specs();
    cfg
}

fn sorted_encoded_outputs(result: &PipelineResult) -> Vec<(String, u64, Vec<u8>)> {
    let mut v: Vec<(String, u64, Vec<u8>)> = result
        .outputs
        .iter()
        .map(|(label, step, out)| (label.clone(), *step, encode_analysis_output(out).to_vec()))
        .collect();
    v.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
    v
}

/// Run one pipeline configuration with a private journal sink.
fn run_journaled(cfg: PipelineConfig) -> (PipelineResult, Vec<ObsEvent>) {
    let sink = Arc::new(VecSink::new());
    let previous = sitra::obs::install_sink(Some(sink.clone()));
    let result = run_pipeline(&mut sim(), &cfg).expect("valid config");
    let events = sink.take();
    sitra::obs::install_sink(previous);
    (result, events)
}

/// The journal replay must reproduce the live run's accounting: same
/// row set, bit-identical in-situ half, matching degradation flags.
/// When `driver_aggregates` (the aggregation half was journaled by this
/// process, not an external worker), the aggregation half must agree
/// bit-identically too.
fn assert_replay_agrees(
    name: &str,
    result: &PipelineResult,
    events: &[ObsEvent],
    hybrid_placement: &str,
    driver_aggregates: bool,
) {
    let r = replay(events);
    assert_eq!(
        r.stages.len(),
        result.metrics.analyses.len(),
        "{name}: replay row count"
    );
    for want in &result.metrics.analyses {
        let got = r
            .stages
            .iter()
            .find(|s| s.analysis == want.analysis && s.step == want.step)
            .unwrap_or_else(|| {
                panic!(
                    "{name}: no replayed row for {}@{}",
                    want.analysis, want.step
                )
            });
        let placement = if want.analysis == "stats" {
            "insitu"
        } else {
            hybrid_placement
        };
        assert_eq!(
            got.placement, placement,
            "{name}: {}@{}",
            want.analysis, want.step
        );
        assert_eq!(got.insitu_secs, want.insitu_secs, "{name}");
        assert_eq!(got.insitu_core_secs, want.insitu_core_secs, "{name}");
        assert_eq!(got.movement_bytes, want.movement_bytes, "{name}");
        assert_eq!(got.degraded, want.degraded, "{name}");
        if driver_aggregates || want.degraded {
            assert_eq!(got.aggregate_secs, want.aggregate_secs, "{name}");
            assert_eq!(got.latency_secs, want.completion_latency_secs, "{name}");
            assert_eq!(got.bucket, want.bucket, "{name}");
            assert_eq!(got.streamed, want.streamed, "{name}");
        }
    }
    assert_eq!(r.steps.len(), result.metrics.steps.len(), "{name}");
    for (got, want) in r.steps.iter().zip(&result.metrics.steps) {
        assert_eq!(got.step, want.step, "{name}");
        assert_eq!(got.degraded, want.degraded, "{name}: step {}", want.step);
    }
}

#[test]
fn all_staging_backends_produce_identical_outputs_and_accounting() {
    let _obs = sitra::obs::isolate();

    // 1. Fully in-situ: hybrid analyses aggregate synchronously.
    let (insitu, insitu_events) = run_journaled(config().with_staging_mode(StagingMode::InSitu));

    // 2. Local staging buckets (the default).
    let (local, local_events) = run_journaled(config());

    // 3. Remote staging service with an external bucket worker.
    let addr: Addr = "inproc://backend-equivalence-test".parse().unwrap();
    let server = SpaceServer::start(&addr, 1).expect("start staging server");
    let endpoint = server.addr();
    let worker = {
        let ep = endpoint.clone();
        std::thread::spawn(move || {
            run_bucket_worker(&ep, &specs(), 0, &BucketWorkerOpts::default())
                .expect("bucket worker")
        })
    };
    let (remote, remote_events) =
        run_journaled(config().with_staging_endpoint(endpoint.to_string()));
    let completed = worker.join().unwrap();
    server.shutdown();

    // 4. Forced degradation: nothing listens, so every hybrid task must
    //    fall back to in-situ aggregation through the shared path.
    let (degraded, degraded_events) =
        run_journaled(config().with_staging_endpoint("inproc://backend-equivalence-nobody"));

    // Byte-identical outputs across all four placements — the claim.
    let reference = sorted_encoded_outputs(&insitu);
    assert_eq!(reference, sorted_encoded_outputs(&local), "local != insitu");
    assert_eq!(
        reference,
        sorted_encoded_outputs(&remote),
        "remote != insitu"
    );
    assert_eq!(
        reference,
        sorted_encoded_outputs(&degraded),
        "degraded != insitu"
    );

    // Task accounting: 6 hybrid tasks over 4 steps (viz every step,
    // features on 2 and 4); nothing dropped anywhere, degradation only
    // in the forced-failure run.
    let hybrid_tasks = reference.iter().filter(|(l, _, _)| l != "stats").count();
    assert_eq!(hybrid_tasks, 6);
    assert_eq!(completed, hybrid_tasks);
    for (name, result) in [("insitu", &insitu), ("local", &local), ("remote", &remote)] {
        assert_eq!(result.dropped_tasks, 0, "{name}");
        assert_eq!(result.degraded_tasks, 0, "{name}");
        assert_eq!(result.metrics.degraded_steps(), 0, "{name}");
    }
    assert_eq!(degraded.dropped_tasks, 0);
    assert_eq!(degraded.degraded_tasks, hybrid_tasks);
    assert_eq!(degraded.metrics.degraded_steps(), STEPS);

    // The same (analysis, step) row set in every mode.
    let row_set = |r: &PipelineResult| {
        let mut v: Vec<(String, u64)> = r
            .metrics
            .analyses
            .iter()
            .map(|a| (a.analysis.clone(), a.step))
            .collect();
        v.sort();
        v
    };
    let reference_rows = row_set(&insitu);
    for (name, result) in [
        ("local", &local),
        ("remote", &remote),
        ("degraded", &degraded),
    ] {
        assert_eq!(reference_rows, row_set(result), "{name}");
    }

    // Placement flags per mode: in-situ mode never marks in-transit
    // rows; local and remote mark exactly the hybrid rows; forced
    // degradation clears the flag on every row it touches.
    assert!(insitu
        .metrics
        .analyses
        .iter()
        .all(|a| !a.aggregated_in_transit));
    for (name, result) in [("local", &local), ("remote", &remote)] {
        for a in &result.metrics.analyses {
            assert_eq!(
                a.aggregated_in_transit,
                a.analysis != "stats",
                "{name}: {}@{}",
                a.analysis,
                a.step
            );
        }
    }
    assert!(degraded
        .metrics
        .analyses
        .iter()
        .all(|a| !a.aggregated_in_transit));
    // Movement is charged only when intermediates actually shipped.
    assert!(insitu
        .metrics
        .analyses
        .iter()
        .all(|a| a.movement_bytes == 0));
    assert!(degraded
        .metrics
        .analyses
        .iter()
        .all(|a| a.movement_bytes == 0));
    for name in ["viz-hybrid", "feature-stats"] {
        assert!(local.metrics.mean_movement_bytes(name) > 0.0);
        assert!(remote.metrics.mean_movement_bytes(name) > 0.0);
    }

    // Each run's journal replay reproduces its live metrics
    // bit-identically (the remote run's aggregation half lives in the
    // worker's journal, so only its driver-owned fields are compared).
    assert_replay_agrees("insitu", &insitu, &insitu_events, "insitu", true);
    assert_replay_agrees("local", &local, &local_events, "hybrid", true);
    assert_replay_agrees("remote", &remote, &remote_events, "hybrid-remote", false);
    assert_replay_agrees(
        "degraded",
        &degraded,
        &degraded_events,
        "hybrid-remote",
        false,
    );
}
