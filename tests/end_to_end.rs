//! Workspace-level integration tests through the `sitra` facade: the
//! public API a downstream user sees, exercised across crates.

mod common;

use common::sim_with;
use sitra::core::{
    run_pipeline, AnalysisSpec, HybridStats, HybridTopology, HybridViz, InSituViz, PipelineConfig,
    Placement,
};
use sitra::mesh::{BBox3, Decomposition, ScalarField};
use sitra::sim::Variable;
use sitra::topology::distributed::{distributed_merge_tree, serial_merge_tree, BoundaryPolicy};
use sitra::topology::Connectivity;
use sitra::viz::{render_serial, TransferFunction, View, ViewAxis};
use std::sync::Arc;

#[test]
fn facade_reexports_compose() {
    // Build a field with mesh, analyze with stats/topology/viz — all
    // through the umbrella crate paths.
    let b = BBox3::from_dims([8, 8, 8]);
    let f = ScalarField::from_fn(b, |p| (p[0] + p[1] + p[2]) as f64);
    let m = sitra::stats::Moments::from_slice(f.as_slice());
    assert_eq!(m.n as usize, f.len());
    let tree = serial_merge_tree(&f, Connectivity::Six);
    assert_eq!(tree.maxima().len(), 1);
    let img = render_serial(
        &f,
        &View::full_res(b, ViewAxis::Z, false),
        &TransferFunction::hot(0.0, 21.0),
    );
    assert_eq!(img.width(), 8);
}

#[test]
fn simulation_feeds_all_analytics_consistently() {
    // One proxy state; every analytic path sees the same data.
    let mut sim = sim_with([16, 12, 10], 5);
    sim.advance();
    let g = sim.global();
    let whole = sim.block_field(Variable::Temperature, &g);
    let d = Decomposition::new(g, [2, 2, 1]);
    let blocks: Vec<ScalarField> = (0..4).map(|r| whole.extract(&d.block(r))).collect();

    // Topology: distributed == serial.
    let (dist, _) = distributed_merge_tree(
        &d,
        &blocks,
        Connectivity::Six,
        BoundaryPolicy::BoundaryMaxima,
    );
    assert_eq!(
        dist.canonical(),
        serial_merge_tree(&whole, Connectivity::Six).canonical()
    );

    // Stats: merged partials == whole.
    let mut merged = sitra::stats::Moments::new();
    for blk in &blocks {
        merged.merge(&sitra::stats::Moments::from_slice(blk.as_slice()));
    }
    let serial = sitra::stats::Moments::from_slice(whole.as_slice());
    assert_eq!(merged.n, serial.n);
    assert!((merged.mean - serial.mean).abs() < 1e-9);

    // DataSpaces round-trip of the same blocks.
    let ds = sitra::dataspaces::DataSpaces::new(3);
    for blk in &blocks {
        ds.put_field("T", 1, blk);
    }
    assert_eq!(ds.get_assembled("T", 1, &g, f64::NAN), whole);
}

#[test]
fn pipeline_smoke_through_facade() {
    let dims = [16, 12, 10];
    let view = View::full_res(BBox3::from_dims(dims), ViewAxis::Z, false);
    let tf = TransferFunction::hot(250.0, 2500.0);
    let mut cfg = PipelineConfig::new([2, 1, 1], 2, 3);
    cfg.analyses = vec![
        AnalysisSpec::new(
            Arc::new(InSituViz {
                view: view.clone(),
                tf: tf.clone(),
            }),
            Placement::InSitu,
            1,
        ),
        AnalysisSpec::new(
            Arc::new(HybridViz {
                stride: 2,
                view,
                tf,
            }),
            Placement::Hybrid,
            1,
        ),
        AnalysisSpec::new(Arc::new(HybridStats::default()), Placement::Hybrid, 1),
        AnalysisSpec::new(Arc::new(HybridTopology::default()), Placement::Hybrid, 3),
    ];
    let mut sim = sim_with(dims, 8);
    let result = run_pipeline(&mut sim, &cfg).expect("valid config");
    assert_eq!(result.dropped_tasks, 0);
    assert_eq!(
        result
            .outputs
            .iter()
            .filter(|(n, _, _)| n == "viz-insitu")
            .count(),
        3
    );
    assert_eq!(
        result
            .outputs
            .iter()
            .filter(|(n, _, _)| n == "topology")
            .count(),
        1
    );
    // Machine model is reachable and sane.
    let spec = sitra::machine::ClusterSpec::jaguar_4896();
    assert_eq!(spec.total_cores(), 4896);
}

#[test]
fn dart_and_scheduler_compose_standalone() {
    use bytes::Bytes;
    let fabric = sitra::dart::Fabric::new(sitra::dart::NetworkModel::gemini());
    let producer = fabric.register();
    let consumer = fabric.register();
    producer.export(1, Bytes::from_static(b"block"));

    let sched: sitra::dataspaces::Scheduler<(u64, u64)> = sitra::dataspaces::Scheduler::new();
    let bucket = sched.register_bucket(0);
    sched.submit((producer.id(), 1));
    let (_, (peer, key)) = bucket.request_task().unwrap();
    consumer.rdma_get(peer, key).unwrap();
    match consumer.poll_event(std::time::Duration::from_secs(5)) {
        Some(sitra::dart::Event::GetComplete { data, .. }) => assert_eq!(&data[..], b"block"),
        other => panic!("unexpected {other:?}"),
    }
    fabric.shutdown();
}
