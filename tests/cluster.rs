//! Cluster acceptance: a three-member `sitra-cluster` behind
//! `StagingMode::Cluster` must satisfy the four testkit oracles
//! (conservation, no-loss, golden-output, replay-identity) through a
//! fault-free run, a clean join/leave rebalance, and a whole-instance
//! crash — and the single-space remote path must keep its pre-cluster
//! behavior byte-for-byte.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sitra_cluster::{Bootstrap, ClusterNode, ClusterNodeOpts};
use sitra_core::{run_cluster_bucket_worker, run_pipeline, BucketWorkerOpts, StagingMode};
use sitra_net::{Addr, Backoff};
use sitra_obs::VecSink;
use sitra_testkit::{fixture, run_scenario, Backend, FaultPlan, InstanceLoss};

fn addr(tag: &str, i: usize) -> Addr {
    format!("inproc://cluster-it-{tag}-{i}")
        .parse()
        .expect("addr")
}

fn opts() -> ClusterNodeOpts {
    ClusterNodeOpts {
        heartbeat_every: Duration::from_millis(10),
        suspect_after: 3,
        ..ClusterNodeOpts::default()
    }
}

/// Fault-free: the full scenario harness (golden run, live cluster,
/// external worker, all four oracles) passes on a healthy trio.
#[test]
fn fault_free_cluster_run_passes_every_oracle() {
    let outcome = run_scenario(0x11, &FaultPlan::fault_free(0x11), Backend::Cluster);
    assert!(
        outcome.passed(),
        "fault-free cluster violations:\n{}",
        outcome.violations.join("\n")
    );
    assert!(outcome.staged_tasks > 0, "fixture staged nothing");
    assert_eq!(outcome.dropped_tasks, 0);
    assert_eq!(outcome.degraded_tasks, 0, "healthy trio must not degrade");
}

/// Killing a member mid-run (abrupt: queued tasks dropped on the
/// member's floor) may degrade tasks to in-situ re-aggregation but
/// must never lose one or change an output byte.
#[test]
fn whole_instance_crash_degrades_but_never_loses() {
    let plan = FaultPlan {
        instance_loss: Some(InstanceLoss {
            member: 2,
            at_tick: 40,
        }),
        ..FaultPlan::fault_free(0x7)
    };
    let outcome = run_scenario(0x7, &plan, Backend::Cluster);
    assert!(
        outcome.passed(),
        "instance-crash violations:\n{}",
        outcome.violations.join("\n")
    );
}

/// A clean membership churn mid-run: two founders, a third member
/// joins (receiving its shards via handoff) after the first staged
/// output, and one founder gracefully leaves (handing its shards and
/// queued tasks off) a few outputs later. All four oracles must hold
/// across both rebalances, and handoff must actually have moved data.
#[test]
fn clean_join_and_leave_rebalance_holds_every_oracle() {
    let obs = sitra_obs::isolate();
    let seed = 0x5EED;

    // Golden: fault-free, fully in-situ.
    let golden = run_pipeline(
        &mut fixture::sim(seed),
        &fixture::config(2).with_staging_mode(StagingMode::InSitu),
    )
    .expect("golden config");
    let golden_outputs = fixture::sorted_encoded_outputs(&golden);

    let endpoints: Vec<String> = (0..3).map(|i| addr("joinleave", i).to_string()).collect();
    let seeds = vec![endpoints[0].clone(), endpoints[1].clone()];
    let founders: Vec<Option<ClusterNode>> = (0..2)
        .map(|i| {
            Some(
                ClusterNode::start(
                    &addr("joinleave", i),
                    Bootstrap::Seeds(seeds.clone()),
                    opts(),
                )
                .expect("start founder"),
            )
        })
        .collect();
    let slots = Arc::new(Mutex::new(founders));
    // Slot for the joiner so teardown can reach it.
    slots.lock().unwrap().push(None);

    let worker = {
        let eps = endpoints.clone();
        let specs = fixture::specs();
        std::thread::spawn(move || {
            let opts = BucketWorkerOpts {
                backoff: Backoff {
                    initial: Duration::from_millis(5),
                    max: Duration::from_millis(40),
                    attempts: 4,
                },
                request_timeout: Duration::from_millis(100),
                drop_connection_after: None,
                location: None,
            };
            run_cluster_bucket_worker(&eps, &specs, 0, &opts)
        })
    };

    // Membership choreography, driven off the driver's own collection
    // path: join the third member after the first staged output, leave
    // the second founder after the third.
    let collected = Arc::new(AtomicUsize::new(0));
    let churn = {
        let slots = Arc::clone(&slots);
        let join_addr = addr("joinleave", 2);
        let join_via = endpoints[0].clone();
        let collected = Arc::clone(&collected);
        Arc::new(move |_label: &str, _step: u64| {
            match collected.fetch_add(1, Ordering::SeqCst) + 1 {
                1 => {
                    let joiner =
                        ClusterNode::start(&join_addr, Bootstrap::Join(join_via.clone()), opts())
                            .expect("join third member");
                    slots.lock().unwrap()[2] = Some(joiner);
                }
                3 => {
                    if let Some(n) = slots.lock().unwrap()[1].take() {
                        n.leave();
                    }
                }
                _ => {}
            }
        })
    };

    let cfg = fixture::config(2)
        .with_staging_cluster(endpoints.clone())
        .with_staging_deadline(Duration::from_millis(700))
        .with_staging_max_inflight(2)
        .with_staging_output_hook(churn);

    let sink = Arc::new(VecSink::new());
    let prev_sink = sitra_obs::install_sink(Some(sink.clone()));
    let result = run_pipeline(&mut fixture::sim(seed), &cfg).expect("cluster config");
    let events = sink.take();
    sitra_obs::install_sink(prev_sink);

    for slot in slots.lock().unwrap().iter_mut() {
        if let Some(n) = slot.take() {
            n.shutdown();
        }
    }
    worker.join().expect("worker thread").expect("worker run");

    assert!(
        collected.load(Ordering::SeqCst) >= 3,
        "fixture produced too few staged outputs to exercise the churn"
    );

    // Oracle 1 — conservation.
    assert_eq!(result.staged_tasks, fixture::expected_hybrid_tasks());
    // Oracle 2 — no-loss.
    assert_eq!(result.dropped_tasks, 0, "join/leave churn lost a task");
    // Oracle 3 — golden output.
    assert_eq!(
        fixture::sorted_encoded_outputs(&result),
        golden_outputs,
        "outputs diverged from the fault-free golden run"
    );
    // Oracle 4 — replay identity.
    let violations = fixture::replay_violations(
        "cluster-joinleave",
        &result,
        &events,
        "hybrid-remote",
        false,
    );
    assert!(violations.is_empty(), "replay: {}", violations.join("\n"));

    // And the churn must have been real: the join (and possibly the
    // leave) moved shards between members.
    let handed_off = obs.registry().snapshot().counter("cluster.handoff.pieces");
    assert!(
        handed_off > 0,
        "no shard handoff despite a join and a leave"
    );
}

/// The pre-cluster single-space remote path is untouched: the same
/// scenario harness still passes on `Backend::Remote`, golden outputs
/// included.
#[test]
fn single_space_remote_path_is_unchanged() {
    let outcome = run_scenario(0x22, &FaultPlan::fault_free(0x22), Backend::Remote);
    assert!(
        outcome.passed(),
        "remote regression:\n{}",
        outcome.violations.join("\n")
    );
}
